"""Evaluation of the abbreviated-XPath subset over documents.

Node-set semantics: every path evaluates to a duplicate-free list of nodes
in document order.
"""

from __future__ import annotations

from repro.errors import QueryEvaluationError
from repro.xquery import ast
from repro.xdm.navigation import document_position


def evaluate_path(path, document=None, context=None, labeling=None):
    """Evaluate ``path`` and return the selected nodes in document order.

    ``context`` is the list of context nodes for relative paths; absolute
    paths require ``document``. When ``labeling`` is given the final
    sort orders by label start code (see :func:`document_order`).
    """
    if path.absolute:
        if document is None or document.root is None:
            raise QueryEvaluationError(
                "absolute path requires a document with a root")
        current = [_Root(document.root)]
    else:
        if context is None:
            if document is None or document.root is None:
                raise QueryEvaluationError(
                    "relative path requires context nodes")
            current = [_Root(document.root)]
        else:
            current = list(context)
    for step in path.steps:
        current = _evaluate_step(step, current)
        if not current:
            return []
    return document_order(current, labeling)


class _Root:
    """A virtual document node above the root element, so that the leading
    ``/`` step can match the root element by name."""

    __slots__ = ("element",)
    is_element = True
    is_attribute = False
    is_text = False

    def __init__(self, element):
        self.element = element

    @property
    def children(self):
        return [self.element]

    @property
    def attributes(self):
        return []


def _evaluate_step(step, context):
    results = []
    seen = set()
    for node in context:
        for candidate in _axis_nodes(step, node):
            if _test_matches(step, candidate) and id(candidate) not in seen:
                seen.add(id(candidate))
                results.append(candidate)
    if not step.predicates:
        return results
    # positional predicates apply per context node in XPath; this subset
    # applies them to the whole step result per context node
    filtered = results
    for predicate in step.predicates:
        filtered = _apply_predicate(predicate, filtered)
    return filtered


def _axis_nodes(step, node):
    if step.axis == ast.ATTRIBUTE:
        if getattr(node, "is_element", False):
            yield from node.attributes
        return
    if step.axis == ast.CHILD:
        yield from node.children
        return
    # the `//` abbreviation: descendant-or-self then child
    stack = list(node.children)
    while stack:
        current = stack.pop(0)
        yield current
        if current.is_element:
            stack = list(current.children) + stack
            for attr in current.attributes:
                yield attr


def _test_matches(step, node):
    if isinstance(node, _Root):
        return False
    if step.axis in (ast.ATTRIBUTE, ast.DESCENDANT_ATTRIBUTE):
        if not node.is_attribute:
            return False
        return step.name is None or node.name == step.name
    if step.test == ast.TEXT_TEST:
        return node.is_text
    if node.is_attribute:
        return False
    if not node.is_element:
        return False
    return step.name is None or node.name == step.name


def _apply_predicate(predicate, nodes):
    if isinstance(predicate, ast.PositionPredicate):
        if predicate.last:
            return nodes[-1:]
        index = predicate.index
        if index is None or index < 1 or index > len(nodes):
            return []
        return [nodes[index - 1]]
    if isinstance(predicate, ast.ExistsPredicate):
        return [node for node in nodes
                if evaluate_path(predicate.path, context=[node])]
    if isinstance(predicate, ast.ComparePredicate):
        kept = []
        for node in nodes:
            selected = evaluate_path(predicate.path, context=[node])
            if any(item.string_value() == predicate.literal
                   for item in selected):
                kept.append(node)
        return kept
    raise QueryEvaluationError(
        "unknown predicate: {!r}".format(predicate))


def document_order(nodes, labeling=None):
    """Sort ``nodes`` into document order.

    With a ``labeling``, order by label *start code* — the paper's
    order: start codes are unique, compare lexicographically, and
    enumerate the document — which is O(1) per comparison and the
    primitive the index engine's bucket order shares. Without one (or
    when a node is unlabeled, e.g. the compiler's source fragments),
    fall back to re-deriving tree positions.
    """
    if labeling is not None:
        keys = {}
        for node in nodes:
            label = labeling.find(getattr(node, "node_id", None))
            if label is None:
                keys = None
                break
            keys[id(node)] = label.start
        if keys is not None:
            return sorted(nodes, key=lambda node: keys[id(node)])
    return sorted(nodes, key=document_position)
