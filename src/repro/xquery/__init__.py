"""XQuery Update front end — the PUL *producer*.

The paper modifies the Qizx XQuery processor so that evaluating an XQuery
Update expression yields a PUL instead of updating the document in place
(contribution (i)). This package provides the equivalent from scratch: a
lexer/parser for the XQuery Update Facility's updating expressions over an
abbreviated-XPath subset, and a compiler that evaluates the target paths
against a document and emits the corresponding PUL.

Supported expression forms::

    insert node <author>X</author> as last into /doc/paper[2]/authors
    insert nodes (<a/>, <b/>) before //paper[@id = "p7"]/title
    insert node attribute version {"2"} into /doc
    delete nodes //paper[status = "retracted"]
    replace value of node /doc/paper[1]/title/text() with "New title"
    replace node //paper[3] with <paper/>
    replace children of node //abstract with "wiped"      (repC)
    rename node /doc/paper[1] as "article"

Multiple expressions separated by commas compile into one PUL.
"""

from repro.xquery.compiler import compile_pul
from repro.xquery.parser import parse_path, parse_program
from repro.xquery.xpath import evaluate_path

__all__ = ["compile_pul", "parse_path", "parse_program", "evaluate_path"]
