"""Compile updating expressions into PULs.

This is the producer side of the architecture: evaluate the target path of
each updating expression against the (local copy of the) document, create
the corresponding update primitives, and package them — together with the
targets' labels when a labeling is available — into a PUL ready to be
shipped to the executor.
"""

from __future__ import annotations

from repro.errors import QueryEvaluationError
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.xdm.node import Node
from repro.xquery import ast
from repro.xquery.parser import parse_program
from repro.xquery.xpath import evaluate_path

_INSERT_OPS = {
    ast.INTO: InsertInto,
    ast.INTO_FIRST: InsertIntoAsFirst,
    ast.INTO_LAST: InsertIntoAsLast,
    ast.BEFORE: InsertBefore,
    ast.AFTER: InsertAfter,
}


def _materialize_source(source):
    """Build the parameter trees of an insert/replace: (attribute trees,
    non-attribute trees) — the XQUF splits the source sequence this way."""
    attributes = []
    others = []
    for item in source.items:
        if isinstance(item, ast.AttributeConstructor):
            attributes.append(Node.attribute(item.name, item.value))
        elif isinstance(item, Node):
            others.append(item.deep_copy())
        elif isinstance(item, str):
            others.append(Node.text(item))
        else:
            raise QueryEvaluationError(
                "unsupported source item: {!r}".format(item))
    return attributes, others


def _single_target(expression_name, nodes):
    if len(nodes) != 1:
        raise QueryEvaluationError(
            "{} requires exactly one target node, path selected {}"
            .format(expression_name, len(nodes)))
    return nodes[0]


def compile_expression(expression, document, labeling=None):
    """Compile one updating expression into a list of update operations.

    ``labeling`` (when available) lets target resolution order result
    sets by label start code instead of re-deriving tree positions —
    the same ordering primitive the index engine uses.
    """
    operations = []
    if isinstance(expression, ast.InsertExpr):
        targets = evaluate_path(expression.target, document=document,
                                 labeling=labeling)
        target = _single_target("insert", targets)
        attributes, others = _materialize_source(expression.source)
        if attributes:
            if expression.position not in (ast.INTO, ast.INTO_FIRST,
                                           ast.INTO_LAST):
                raise QueryEvaluationError(
                    "attribute content requires an 'into' insert")
            operations.append(InsertAttributes(
                target.node_id, [a.deep_copy() for a in attributes]))
        if others:
            op_class = _INSERT_OPS[expression.position]
            operations.append(op_class(
                target.node_id, [t.deep_copy() for t in others]))
        if not attributes and not others:
            raise QueryEvaluationError("insert with an empty source")
    elif isinstance(expression, ast.DeleteExpr):
        targets = evaluate_path(expression.target, document=document,
                                 labeling=labeling)
        operations.extend(Delete(node.node_id) for node in targets)
    elif isinstance(expression, ast.ReplaceValueExpr):
        target = _single_target(
            "replace value of",
            evaluate_path(expression.target, document=document,
                          labeling=labeling))
        operations.append(ReplaceValue(target.node_id, expression.value))
    elif isinstance(expression, ast.ReplaceChildrenExpr):
        target = _single_target(
            "replace children of",
            evaluate_path(expression.target, document=document,
                          labeling=labeling))
        operations.append(ReplaceChildren(target.node_id,
                                          expression.value))
    elif isinstance(expression, ast.ReplaceNodeExpr):
        target = _single_target(
            "replace node",
            evaluate_path(expression.target, document=document,
                          labeling=labeling))
        attributes, others = _materialize_source(expression.source)
        if attributes and others:
            raise QueryEvaluationError(
                "replace node source must be all attributes or all "
                "non-attributes")
        trees = attributes or others
        operations.append(ReplaceNode(
            target.node_id, [t.deep_copy() for t in trees]))
    elif isinstance(expression, ast.RenameExpr):
        target = _single_target(
            "rename node",
            evaluate_path(expression.target, document=document,
                          labeling=labeling))
        operations.append(Rename(target.node_id, expression.name))
    else:
        raise QueryEvaluationError(
            "unknown expression: {!r}".format(expression))
    return operations


def compile_pul(query, document, labeling=None, origin=None):
    """Evaluate the updating ``query`` (text or parsed expression list)
    against ``document`` and return the resulting PUL.

    The PUL production of the paper's modified Qizx: no update is applied;
    targets are resolved and shipped as operations. When ``labeling`` is
    given, the targets' extended labels travel with the PUL (Section 4.1).
    """
    expressions = parse_program(query) if isinstance(query, str) else query
    operations = []
    for expression in expressions:
        operations.extend(
            compile_expression(expression, document, labeling=labeling))
    pul = PUL(operations, origin=origin)
    if labeling is not None:
        pul.attach_labels(labeling)
    return pul
