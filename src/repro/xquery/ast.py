"""Abstract syntax of the XQuery Update subset."""

from __future__ import annotations


class Path:
    """An abbreviated-XPath path expression.

    ``absolute`` paths start at the document root; ``steps`` is a list of
    :class:`Step`.
    """

    __slots__ = ("steps", "absolute")

    def __init__(self, steps, absolute):
        self.steps = list(steps)
        self.absolute = absolute

    def __repr__(self):
        return "Path({}{})".format(
            "/" if self.absolute else "",
            "/".join(repr(s) for s in self.steps))


#: step axes
CHILD = "child"
DESCENDANT = "descendant-or-self-child"  # the `//` abbreviation
ATTRIBUTE = "attribute"
DESCENDANT_ATTRIBUTE = "descendant-attribute"  # the `//@name` abbreviation

#: node tests
ELEMENT_TEST = "element"    # by name or wildcard
TEXT_TEST = "text"
NODE_TEST = "node"


class Step:
    """One path step: axis, node test and predicates."""

    __slots__ = ("axis", "test", "name", "predicates")

    def __init__(self, axis, test, name=None, predicates=()):
        self.axis = axis
        self.test = test
        self.name = name  # None = wildcard
        self.predicates = list(predicates)

    def __repr__(self):
        rendered = {CHILD: "", DESCENDANT: "//", ATTRIBUTE: "@",
                    DESCENDANT_ATTRIBUTE: "//@"}[self.axis]
        rendered += self.name or "*"
        if self.test == TEXT_TEST:
            rendered = "text()"
        return rendered + "".join(repr(p) for p in self.predicates)


class PositionPredicate:
    """``[n]`` (1-based) or ``[last()]``."""

    __slots__ = ("index", "last")

    def __init__(self, index=None, last=False):
        self.index = index
        self.last = last

    def __repr__(self):
        return "[last()]" if self.last else "[{}]".format(self.index)


class ExistsPredicate:
    """``[path]`` — the relative path selects at least one node."""

    __slots__ = ("path",)

    def __init__(self, path):
        self.path = path

    def __repr__(self):
        return "[{!r}]".format(self.path)


class ComparePredicate:
    """``[path = "literal"]`` — some selected node's string value equals
    the literal."""

    __slots__ = ("path", "literal")

    def __init__(self, path, literal):
        self.path = path
        self.literal = literal

    def __repr__(self):
        return "[{!r} = {!r}]".format(self.path, self.literal)


# -- source expressions --------------------------------------------------------


class XMLSource:
    """A sequence of XML constructors / attribute constructors / string
    literals (string literals build text nodes)."""

    __slots__ = ("items",)

    def __init__(self, items):
        self.items = list(items)


class AttributeConstructor:
    """``attribute name {"value"}``."""

    __slots__ = ("name", "value")

    def __init__(self, name, value):
        self.name = name
        self.value = value


# -- updating expressions --------------------------------------------------------

#: insert positions
INTO = "into"
INTO_FIRST = "into-first"
INTO_LAST = "into-last"
BEFORE = "before"
AFTER = "after"


class InsertExpr:
    __slots__ = ("source", "position", "target")

    def __init__(self, source, position, target):
        self.source = source
        self.position = position
        self.target = target


class DeleteExpr:
    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target


class ReplaceValueExpr:
    __slots__ = ("target", "value")

    def __init__(self, target, value):
        self.target = target
        self.value = value


class ReplaceNodeExpr:
    __slots__ = ("target", "source")

    def __init__(self, target, source):
        self.target = target
        self.source = source


class ReplaceChildrenExpr:
    """``replace children of node target with "text"`` — the repC
    primitive (library extension of the surface syntax; the XQUF reaches
    repC through typed replace-value-of on elements)."""

    __slots__ = ("target", "value")

    def __init__(self, target, value):
        self.target = target
        self.value = value


class RenameExpr:
    __slots__ = ("target", "name")

    def __init__(self, target, name):
        self.target = target
        self.name = name
