"""Recursive-descent parser for the XQuery Update subset.

XQuery keywords are contextual (``insert`` is a valid element name), so
the parser matches keyword *sequences* at expression starts and treats
names as path steps elsewhere.
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.xquery import ast
from repro.xquery.lexer import (
    EOF,
    INTEGER,
    NAME,
    STRING,
    SYMBOL,
    XML,
    tokenize,
)


class _Cursor:
    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    @property
    def current(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        if token.kind is not EOF and token.kind != EOF:
            self.index += 1
        return token

    def at_name(self, *values):
        token = self.current
        return token.kind == NAME and token.value in values

    def at_symbol(self, *values):
        token = self.current
        return token.kind == SYMBOL and token.value in values

    def expect_name(self, *values):
        if not self.at_name(*values):
            self.fail("expected {!r}".format("/".join(values)))
        return self.advance()

    def expect_symbol(self, value):
        if not self.at_symbol(value):
            self.fail("expected {!r}".format(value))
        return self.advance()

    def fail(self, message):
        token = self.current
        raise QuerySyntaxError(
            "{} (got {!r})".format(message, token.value),
            position=token.position)


def parse_program(text):
    """Parse a comma-separated sequence of updating expressions."""
    cursor = _Cursor(tokenize(text))
    expressions = [_parse_expression(cursor)]
    while cursor.at_symbol(","):
        cursor.advance()
        expressions.append(_parse_expression(cursor))
    if cursor.current.kind != EOF:
        cursor.fail("trailing input after expression")
    return expressions


def parse_path(text):
    """Parse a bare path expression (the read-only query surface —
    no updating keywords, just the abbreviated-XPath subset)."""
    cursor = _Cursor(tokenize(text))
    path = _parse_path(cursor)
    if cursor.current.kind != EOF:
        cursor.fail("trailing input after path")
    return path


def _parse_expression(cursor):
    if cursor.at_name("insert"):
        return _parse_insert(cursor)
    if cursor.at_name("delete"):
        return _parse_delete(cursor)
    if cursor.at_name("replace"):
        return _parse_replace(cursor)
    if cursor.at_name("rename"):
        return _parse_rename(cursor)
    cursor.fail("expected an updating expression "
                "(insert/delete/replace/rename)")


def _parse_insert(cursor):
    cursor.expect_name("insert")
    cursor.expect_name("node", "nodes")
    source = _parse_source(cursor)
    if cursor.at_name("before"):
        cursor.advance()
        position = ast.BEFORE
    elif cursor.at_name("after"):
        cursor.advance()
        position = ast.AFTER
    else:
        position = ast.INTO
        if cursor.at_name("as"):
            cursor.advance()
            which = cursor.expect_name("first", "last").value
            position = ast.INTO_FIRST if which == "first" else ast.INTO_LAST
        cursor.expect_name("into")
    target = _parse_path(cursor)
    return ast.InsertExpr(source, position, target)


def _parse_delete(cursor):
    cursor.expect_name("delete")
    cursor.expect_name("node", "nodes")
    return ast.DeleteExpr(_parse_path(cursor))


def _parse_replace(cursor):
    cursor.expect_name("replace")
    if cursor.at_name("value"):
        cursor.advance()
        cursor.expect_name("of")
        cursor.expect_name("node")
        target = _parse_path(cursor)
        cursor.expect_name("with")
        if cursor.current.kind != STRING:
            cursor.fail("replace value of expects a string literal")
        value = cursor.advance().value
        return ast.ReplaceValueExpr(target, value)
    if cursor.at_name("children"):
        cursor.advance()
        cursor.expect_name("of")
        cursor.expect_name("node")
        target = _parse_path(cursor)
        cursor.expect_name("with")
        if cursor.current.kind != STRING:
            cursor.fail("replace children of expects a string literal")
        value = cursor.advance().value
        return ast.ReplaceChildrenExpr(target, value)
    cursor.expect_name("node")
    target = _parse_path(cursor)
    cursor.expect_name("with")
    source = _parse_source(cursor)
    return ast.ReplaceNodeExpr(target, source)


def _parse_rename(cursor):
    cursor.expect_name("rename")
    cursor.expect_name("node")
    target = _parse_path(cursor)
    cursor.expect_name("as")
    token = cursor.current
    if token.kind == STRING or token.kind == NAME:
        cursor.advance()
        return ast.RenameExpr(target, token.value)
    cursor.fail("rename expects a name or string literal")


def _parse_source(cursor):
    """An XML constructor, attribute constructor, string literal, or a
    parenthesized sequence of those."""
    items = []
    if cursor.at_symbol("("):
        cursor.advance()
        items.append(_parse_source_item(cursor))
        while cursor.at_symbol(","):
            cursor.advance()
            items.append(_parse_source_item(cursor))
        cursor.expect_symbol(")")
    else:
        items.append(_parse_source_item(cursor))
    return ast.XMLSource(items)


def _parse_source_item(cursor):
    token = cursor.current
    if token.kind == XML:
        cursor.advance()
        return token.value  # a detached Node tree
    if token.kind == STRING:
        cursor.advance()
        return token.value  # a text node value
    if cursor.at_name("attribute"):
        cursor.advance()
        name = cursor.current
        if name.kind != NAME:
            cursor.fail("attribute constructor expects a name")
        cursor.advance()
        cursor.expect_symbol("{")
        if cursor.current.kind != STRING:
            cursor.fail("attribute constructor expects a string value")
        value = cursor.advance().value
        cursor.expect_symbol("}")
        return ast.AttributeConstructor(name.value, value)
    cursor.fail("expected an XML constructor, string, or attribute "
                "constructor")


def _parse_path(cursor):
    absolute = False
    steps = []
    if cursor.at_symbol("/", "//"):
        absolute = True
        leading = cursor.advance().value
        if leading == "//":
            steps.append(_parse_step(cursor, descendant=True))
        else:
            steps.append(_parse_step(cursor, descendant=False))
    else:
        steps.append(_parse_step(cursor, descendant=False))
    while cursor.at_symbol("/", "//"):
        separator = cursor.advance().value
        steps.append(_parse_step(cursor, descendant=(separator == "//")))
    return ast.Path(steps, absolute)


def _parse_step(cursor, descendant):
    axis = ast.DESCENDANT if descendant else ast.CHILD
    test = ast.ELEMENT_TEST
    name = None
    if cursor.at_symbol("@"):
        cursor.advance()
        axis = ast.DESCENDANT_ATTRIBUTE if descendant else ast.ATTRIBUTE
        if cursor.at_symbol("*"):
            cursor.advance()
        else:
            token = cursor.current
            if token.kind != NAME:
                cursor.fail("expected an attribute name")
            name = cursor.advance().value
    elif cursor.at_symbol("*"):
        cursor.advance()
    else:
        token = cursor.current
        if token.kind != NAME:
            cursor.fail("expected a step")
        name = cursor.advance().value
        if name == "text" and cursor.at_symbol("("):
            cursor.advance()
            cursor.expect_symbol(")")
            test = ast.TEXT_TEST
            name = None
    predicates = []
    while cursor.at_symbol("["):
        cursor.advance()
        predicates.append(_parse_predicate(cursor))
        cursor.expect_symbol("]")
    step = ast.Step(axis, test, name=name, predicates=predicates)
    return step


def _parse_predicate(cursor):
    token = cursor.current
    if token.kind == INTEGER:
        cursor.advance()
        return ast.PositionPredicate(index=token.value)
    if cursor.at_name("last") and \
            cursor.tokens[cursor.index + 1].kind == SYMBOL and \
            cursor.tokens[cursor.index + 1].value == "(":
        cursor.advance()
        cursor.expect_symbol("(")
        cursor.expect_symbol(")")
        return ast.PositionPredicate(last=True)
    path = _parse_path(cursor)
    if cursor.at_symbol("="):
        cursor.advance()
        literal = cursor.current
        if literal.kind not in (STRING, INTEGER):
            cursor.fail("comparison expects a literal")
        cursor.advance()
        return ast.ComparePredicate(path, str(literal.value))
    return ast.ExistsPredicate(path)
