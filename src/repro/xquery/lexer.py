"""Tokenizer for the XQuery Update subset.

XML constructors embedded in expressions (``insert node <a>x</a> ...``)
are tokenized as single ``XML`` tokens by delegating to the XML parser, so
the updating-expression grammar never needs to understand markup.
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.xdm.parser import _Parser

#: token kinds
NAME = "name"
STRING = "string"
INTEGER = "integer"
SYMBOL = "symbol"
XML = "xml"
EOF = "eof"

#: multi-character symbols first (longest match wins)
_SYMBOLS = ("//", "/", "@", "[", "]", "(", ")", ",", "=", "*", "{", "}")

_NAME_EXTRA = "_-."


class Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind, value, position):
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self):
        return "Token({}, {!r})".format(self.kind, self.value)


def _is_name_start(ch):
    return ch.isalpha() or ch == "_"


def _is_name_char(ch):
    return ch.isalnum() or ch in _NAME_EXTRA


def tokenize(text):
    """Tokenize ``text`` into a list of :class:`Token` (ending with EOF)."""
    tokens = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        if ch == "<":
            # an XML constructor: delegate to the XML fragment parser,
            # which tells us how much input it consumed
            parser = _Parser(text)
            parser.pos = pos
            try:
                node = parser.parse_element()
            except Exception as exc:
                raise QuerySyntaxError(
                    "bad XML constructor: {}".format(exc),
                    position=pos) from exc
            tokens.append(Token(XML, node, pos))
            pos = parser.pos
            continue
        if ch in "'\"":
            end = text.find(ch, pos + 1)
            if end < 0:
                raise QuerySyntaxError("unterminated string literal",
                                       position=pos)
            tokens.append(Token(STRING, text[pos + 1:end], pos))
            pos = end + 1
            continue
        if ch.isdigit():
            start = pos
            while pos < length and text[pos].isdigit():
                pos += 1
            tokens.append(Token(INTEGER, int(text[start:pos]), start))
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, pos):
                tokens.append(Token(SYMBOL, symbol, pos))
                pos += len(symbol)
                break
        else:
            if _is_name_start(ch):
                start = pos
                while pos < length and _is_name_char(text[pos]):
                    pos += 1
                name = text[start:pos]
                # function-like tests keep their parentheses as symbols;
                # names are reported verbatim (keywords resolved by the
                # parser, since XQuery keywords are contextual)
                tokens.append(Token(NAME, name, start))
            else:
                raise QuerySyntaxError(
                    "unexpected character {!r}".format(ch), position=pos)
    tokens.append(Token(EOF, None, length))
    return tokens
