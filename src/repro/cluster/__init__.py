"""Replication cluster: WAL-shipping leaders, read replicas, routing.

The first multi-node layer of the serving system. One *leader* per
shard accepts writes exactly like a single-node durable store; its
write-ahead log doubles as the replication stream
(:class:`~repro.cluster.feed.ReplicationSource` numbers every synced
record and serves bounded backlog reads). *Replicas*
(:class:`~repro.cluster.replica.ReplicaStore` fed by
:class:`~repro.cluster.sync.ReplicaSync`) bootstrap from a snapshot
transfer, apply the streamed records through the PR 3 replay machinery
and serve reads; writes bounce with the typed ``not-leader`` error.
:class:`~repro.cluster.client.ClusterClient` consistent-hashes
documents across shards, follows redirects and fans reads out across
replicas. Manual failover is ``promote``: a caught-up replica becomes
a leader (its own WAL already holds everything it acknowledged) and
starts a fresh stream epoch its followers re-bootstrap from.

Protocol surface: ``replicate-subscribe`` / ``wal-segment`` /
``snapshot-transfer`` / ``promote`` ops plus the replication block in
extended ``stats`` (see ``src/repro/api/README.md``).
"""

from repro.cluster.client import ClusterClient, HashRing
from repro.cluster.feed import DEFAULT_BACKLOG, ReplicationSource
from repro.cluster.replica import ReplicaStore
from repro.cluster.sync import ReplicaSync, parse_address

__all__ = [
    "DEFAULT_BACKLOG",
    "ClusterClient",
    "HashRing",
    "ReplicaStore",
    "ReplicaSync",
    "ReplicationSource",
    "parse_address",
]
