"""The follower side of WAL shipping: :class:`ReplicaStore`.

A replica is a :class:`~repro.store.store.DocumentStore` that gets its
batches from a leader's record stream instead of from clients: it
bootstraps from a snapshot transfer (the leader's full resident state
paired with the stream position it describes), then applies streamed
WAL records through the exact replay machinery PR 3 recovery uses — so
replica state is, by construction, what the leader would recover to at
the same log position (store-README invariant 8).

Reads (``text`` / ``stats`` / ``docs`` / read-only ``query``) are
served locally; every write is rejected with a typed
:class:`~repro.errors.NotLeaderError` carrying the leader's address, so
routing clients follow the redirect instead of failing.

A replica may itself be durable (its own ``wal_dir``): applied records
are write-ahead logged *locally* before application, and a ``repl-pos``
cursor record after every applied segment remembers how far the stream
got — a SIGKILLed replica replays its own WAL tail on restart and
resumes streaming from the recovered position. That same local WAL is
what :meth:`ReplicaStore.promote` turns into leadership: the promoted
node's log already holds everything it acknowledged applying, so it
attaches a :class:`~repro.cluster.feed.ReplicationSource` and starts
serving followers of its own.
"""

from __future__ import annotations

import threading

from repro.errors import ClusterError, NotLeaderError, RecoveryError
from repro.store.durability.snapshot import restore_document
from repro.store.store import DocumentStore


class ReplicaStore(DocumentStore):
    """A read-only :class:`DocumentStore` fed by a leader's WAL stream.

    Parameters are those of :class:`DocumentStore` plus
    ``leader_address`` (the ``host:port`` carried inside ``not-leader``
    rejections). A durable replica (``wal_dir=``) recovers both its
    documents and its replication cursor (:attr:`applied_seq`) on
    construction.
    """

    def __init__(self, leader_address=None, **kwargs):
        #: next leader sequence number to apply (everything below it is
        #: applied) and the stream epoch it belongs to; set before
        #: super().__init__ because recovery may replay repl-pos
        #: records into them
        self.applied_seq = 0
        self.stream_id = None
        super().__init__(**kwargs)
        self.role = "replica"
        self.leader_address = leader_address
        self._apply_lock = threading.Lock()
        self._sync = None

    # -- write rejection ------------------------------------------------------

    def _reject_write(self, operation):
        if self.role == "replica":
            raise NotLeaderError(self.leader_address, operation=operation)

    def open(self, doc_id, source):
        self._reject_write("open")
        return super().open(doc_id, source)

    def close_document(self, doc_id):
        self._reject_write("close")
        return super().close_document(doc_id)

    def bulk_load(self, docs):
        self._reject_write("bulk-import")
        return super().bulk_load(docs)

    def submit(self, doc_id, pul, client=None):
        self._reject_write("submit")
        return super().submit(doc_id, pul, client=client)

    def submit_xquery(self, doc_id, expression, client=None):
        self._reject_write("submit-xquery")
        return super().submit_xquery(doc_id, expression, client=client)

    def submit_message(self, message):
        self._reject_write("submit")
        return super().submit_message(message)

    def discard_pending(self, doc_id):
        self._reject_write("discard")
        return super().discard_pending(doc_id)

    def flush(self, doc_id, num_shards=None):
        self._reject_write("flush")
        return super().flush(doc_id, num_shards=num_shards)

    def flush_all(self, num_shards=None):
        self._reject_write("flush")
        return super().flush_all(num_shards=num_shards)

    # -- the streaming apply path ---------------------------------------------

    def _replay_position(self, record):
        # repl-pos records in the replica's own WAL restore the cursor
        seq = record.get("seq", 0)
        if seq >= self.applied_seq:
            self.applied_seq = seq
            self.stream_id = record.get("stream", self.stream_id)

    def attach_sync(self, sync):
        """Register the :class:`~repro.cluster.sync.ReplicaSync` pulling
        for this store, so :meth:`promote` can stop it."""
        self._sync = sync

    def bootstrap(self, payloads, seq, stream=None):
        """Install a snapshot transfer: full leader state at position
        ``seq`` of stream epoch ``stream``.

        Replaces whatever was resident (the re-bootstrap path after a
        :class:`~repro.errors.ReplicationResetError` or a stream-epoch
        change). A durable replica seals the transfer into its own
        snapshot generation immediately — its WAL must describe the
        *new* timeline, not prepend stale opens to it — and logs the
        cursor.
        """
        with self._apply_lock:
            fresh = {}
            for payload in payloads:
                entry = self._restored_entry(restore_document(payload))
                if entry.doc_id in fresh:
                    raise ClusterError(
                        "snapshot transfer names {!r} twice".format(
                            entry.doc_id))
                fresh[entry.doc_id] = entry
            with self._lock:
                # swapped in as one assignment: a concurrent read sees
                # the old timeline or the new one, never a half-empty
                # store mid-rebootstrap
                self._entries = fresh
            self.applied_seq = seq
            self.stream_id = stream
            if self._durability is not None:
                generation = self.snapshot()
                if generation is None:
                    raise ClusterError(
                        "bootstrap could not seal its snapshot (another "
                        "compaction in flight?)")
                self._durability.log_position(seq, stream=stream)
        return {"docs": sorted(fresh), "seq": seq}

    def apply_records(self, records, next_seq):
        """Apply one ``wal-segment`` response: ``records`` is the
        ``[{"seq", "record"}, ...]`` list, ``next_seq`` the cursor the
        leader handed back for the follow-up request.

        Applied strictly in sequence through the same switch recovery
        replays: already-applied sequences are skipped (idempotent
        redelivery), a gap is a stream bug and raises. A durable
        replica write-ahead logs each record into its own WAL before
        applying it, then records the advanced cursor.
        """
        with self._apply_lock:
            for item in records:
                seq = item.get("seq")
                if not isinstance(seq, int) or isinstance(seq, bool):
                    raise ClusterError(
                        "replicated record carries no integer seq: "
                        "{!r}".format(item))
                if seq < self.applied_seq:
                    continue
                if seq > self.applied_seq:
                    raise ClusterError(
                        "replication stream gap: expected seq {}, got "
                        "{}".format(self.applied_seq, seq))
                self._apply_one(item.get("record") or {})
                self.applied_seq = seq + 1
            if next_seq > self.applied_seq:
                raise ClusterError(
                    "leader advanced the cursor to {} but only seq {} "
                    "was shipped".format(next_seq, self.applied_seq))
            if records and self._durability is not None:
                self._durability.log_position(self.applied_seq,
                                              stream=self.stream_id)
        return self.applied_seq

    def _apply_one(self, record):
        """Apply one streamed record, *idempotently* and under the
        entry's flush lock.

        Idempotence: a crash between applying a record and advancing
        the durable cursor (the per-segment ``repl-pos``) makes the
        leader re-ship it after restart — so re-applying any record at
        the cursor must be a no-op, never an error, and must not write
        a duplicate into the replica's own WAL (a second ``open``
        would poison its next recovery with "log opens twice").

        Locking: the apply path is the replica's only mutator, and
        reads never block on it — ``text`` / ``stats`` / read-only
        ``query`` pin the entry's published version (store-README
        invariant 9), so a replica serves reads at full speed while
        the sync thread streams. ``entry.flush_lock`` is still taken
        around each mutation for writer-side serialization (promotion
        can hand the same entry to live flushes).
        """
        kind = record.get("kind")
        durability = self._durability
        if kind == "open":
            restored = restore_document(record["doc"])
            with self._lock:
                if restored.doc_id in self._entries:
                    return   # redelivered after a crash-before-cursor
            if durability is not None:
                durability.log_open(record["doc"])
            self._install_restored(restored)
        elif kind == "close":
            with self._lock:
                entry = self._entries.get(record["doc_id"])
            if entry is None:
                return   # redelivered: already evicted
            # same order as the leader's close_document: wait out an
            # in-flight apply of this entry before evicting it (pinned
            # readers keep their version; eviction never tears a read)
            with entry.flush_lock:
                if durability is not None:
                    durability.log_close(record["doc_id"])
                with self._lock:
                    self._entries.pop(record["doc_id"], None)
        elif kind == "relabel":
            entry = self._replay_entry(record["doc_id"])
            with entry.flush_lock:
                # republish first, log second: a concurrent capture of
                # this replica's own WAL may then *lead* the record
                # (idempotent rebuild at replay), never lag it
                entry.rebuild_labeling()
                if durability is not None:
                    durability.log_relabel(entry.doc_id)
        elif kind == "repl-pos":
            pass  # the upstream was itself once a replica; its cursor
        elif kind == "batch":
            entry = self._replay_entry(record["doc_id"])
            with entry.flush_lock:
                # the shared replay switch (invariant 8): version
                # checks, application through the incremental-relabel
                # machinery, failed-batch skip + labeling rebuild —
                # and, because we are not ``_replaying``, _run_batch
                # write-ahead logs into the replica's own WAL first
                self._replay_batch_record(entry, record)
        else:
            raise RecoveryError(
                "unknown replicated record kind {!r}".format(kind))

    # -- failover -------------------------------------------------------------

    def promote(self, backlog=None, allow_non_durable=False):
        """Convert this replica into a leader (manual failover).

        Stops the streaming sync first — joining it applies every
        record already fetched, and a *restarted* replica has already
        replayed its local WAL tail on construction — so promotion
        never discards an acknowledged batch. The promoted node
        immediately attaches a replication source, ready to serve
        followers of its own (which must re-bootstrap: the new leader's
        stream is renumbered). Idempotent.

        A replica without a WAL is refused by default: promoting it
        would mint a leader whose acked batches die with the process
        and that cannot feed followers — the exact guarantees a
        failover exists to keep. ``allow_non_durable=True`` overrides
        for a last-resort salvage when no durable node survived.
        """
        if self._durability is None and not allow_non_durable:
            raise ClusterError(
                "refusing to promote a replica with no write-ahead "
                "log: the promoted leader could not make batches "
                "durable or feed followers (pass allow_non_durable "
                "/ --allow-non-durable to salvage anyway)")
        sync = self._sync
        if sync is not None:
            sync.stop(join=True)
            self._sync = None
        with self._apply_lock:
            already = self.role == "leader"
            self.role = "leader"
            self.leader_address = None
            if self._durability is not None:
                self.enable_replication(backlog=backlog)
        return {"role": "leader", "promoted": not already,
                "applied_seq": self.applied_seq}
