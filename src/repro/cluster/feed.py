"""The leader side of WAL shipping: :class:`ReplicationSource`.

A source attaches to a store's :class:`DurabilityManager` and turns the
write-ahead log into a *numbered record stream*: every record appended
after the source starts gets a monotonically increasing sequence number
(``seq``), and followers pull contiguous ranges with
``read_from(seq)``. Ingestion goes through the
:class:`~repro.store.durability.wal.WalTailReader` — records are read
back from the segment files, never forked off the in-memory write path
— bounded by the writer's synced offset, so the feed can never ship a
record that a failed append might still roll back. An fsynced record is
on the wire-visible stream; an unsynced one never is.

Compaction safety: when the manager rotates the active segment, its
``on_rotate`` hook drains the sealed file into the feed *before* the
superseded files are deleted (the hook runs under the manager lock,
ahead of the unlink). The feed itself retains a bounded backlog
(:attr:`backlog` records); a follower that falls further behind than
that gets :class:`~repro.errors.ReplicationResetError` and must
re-bootstrap from a full snapshot transfer
(:meth:`~repro.store.store.DocumentStore.capture_state`), exactly like
a fresh replica.

Snapshot-transfer pairing: ``capture_state`` reads :attr:`next_seq`
*first* and captures published document versions *after*. That order is
leading-safe — ingestion is lazy, so the seq read can only under-count
what the payloads already reflect, and a follower streaming from it
re-receives at most records the replica apply path absorbs idempotently.
The reverse order (capture, then seq) could pair payloads with a seq
*past* what they contain, silently losing the gap.

Lock order (deadlock discipline): flush/store locks -> manager lock ->
feed lock. The manager's hooks hold the manager lock and only ever take
the feed lock; the feed only calls :meth:`DurabilityManager
.wal_position` *before* taking its own lock.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import deque

from repro.errors import ClusterError, ProtocolError, ReplicationResetError
from repro.obs import StoreObs
from repro.store.durability.recovery import decode_payload
from repro.store.durability.wal import WalTailReader

#: default bound on retained records; a follower behind by more than
#: this re-bootstraps from a snapshot transfer
DEFAULT_BACKLOG = 4096

#: server-side cap on one long-poll wait (seconds) — a follower asking
#: for more parks an executor thread for that long
MAX_WAIT_S = 30.0

#: default records per wal-segment response
DEFAULT_SEGMENT_RECORDS = 256

#: a subscriber that has not polled for this long is presumed gone and
#: dropped from the lag stats (replica restarts mint fresh ids, so dead
#: entries would otherwise accumulate forever and skew the numbers an
#: operator reads before picking a promote target)
SUBSCRIBER_TTL_S = 600.0


class ReplicationSource:
    """Numbered, bounded record stream over one store's write-ahead log.

    Construct via :meth:`DocumentStore.enable_replication` (the store
    wires the manager hooks up); followers are served through the
    ``replicate-subscribe`` / ``wal-segment`` / ``snapshot-transfer``
    protocol ops, which delegate here.
    """

    def __init__(self, manager, backlog=DEFAULT_BACKLOG):
        if backlog < 1:
            raise ClusterError(
                "replication backlog must be >= 1, got {}".format(backlog))
        self.manager = manager
        self.backlog = backlog
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._records = deque()     # (seq, decoded record dict)
        self._next_seq = 0
        self._first_seq = 0         # seq of _records[0] when non-empty
        self.subscribers = {}       # replica id -> {"acked_seq", "at"}
        #: stream epoch: sequence numbers are meaningless across leader
        #: restarts and promotions (each renumbers from zero), so every
        #: source mints a fresh identity and followers re-bootstrap on
        #: a mismatch instead of silently splicing two timelines
        self.stream_id = uuid.uuid4().hex
        # metrics ride the owning store's registry (the manager holds
        # its StoreObs); a bare manager gets null instruments
        obs = getattr(manager, "_obs", None)
        self._obs = obs if obs is not None else StoreObs(enabled=False)
        self._m_subscribers = self._obs.gauge(
            "repro_replication_subscribers",
            help_text="Followers currently tracked in the lag stats")
        self._m_retained = self._obs.gauge(
            "repro_replication_retained_records",
            help_text="Records currently held in the feed backlog")
        self._m_shipped = self._obs.counter(
            "repro_replication_records_shipped_total",
            help_text="WAL records served to followers via wal-segment")
        self._m_max_lag = self._obs.gauge(
            "repro_replication_max_lag_records",
            help_text="Largest follower lag in records (0 when every "
                      "acked follower is caught up)")
        # anchor at the current durable end of the log: history before
        # the source existed is served via snapshot transfer, never as
        # records. Anchoring and hook attachment are one atomic step
        # (manager lock) — a rotation slipping between them would
        # advance the generation with no on_rotate ever delivered,
        # freezing the feed forever.
        generation, path, synced = manager.attach_feed(self)
        self._generation = generation
        self._reader = WalTailReader(path, offset=synced)

    # -- manager hooks (called under the manager lock) ------------------------

    def on_append(self):
        """A record was appended and synced; wake pollers.

        Decoding happens lazily in :meth:`_ingest` on the next read —
        the hook must stay cheap, it runs inside the manager's append
        path.
        """
        with self._wakeup:
            self._wakeup.notify_all()

    def on_rotate(self, sealed_generation, sealed_path, new_generation,
                  new_path):
        """Compaction sealed a segment: drain it before it is deleted."""
        with self._lock:
            if sealed_generation != self._generation:
                # the feed is already past the sealed segment (promoted
                # mid-rotation or re-anchored); nothing to drain
                self._generation = new_generation
                self._reader = WalTailReader(new_path, offset=0)
                self._wakeup.notify_all()
                return
            # the sealed file is closed and fully synced: read to EOF
            self._absorb(self._reader.read())
            self._generation = new_generation
            self._reader = WalTailReader(new_path, offset=0)
            self._wakeup.notify_all()

    # -- ingestion -----------------------------------------------------------

    def _absorb(self, raw_records):
        # records that cannot survive the backlog trim are counted but
        # never decoded — a rotation drain of a long-lived segment must
        # not pay O(segment) JSON decoding under the compaction locks
        survivors_from = max(0, len(raw_records) - self.backlog)
        for index, (__, payload) in enumerate(raw_records):
            if index >= survivors_from:
                self._records.append(
                    (self._next_seq, decode_payload(payload)))
            self._next_seq += 1
        while len(self._records) > self.backlog:
            self._records.popleft()
        if self._records:
            self._first_seq = self._records[0][0]
        else:
            self._first_seq = self._next_seq
        self._m_retained.set(len(self._records))

    def _ingest(self):
        """Pull newly synced records off the active segment."""
        # position read *before* the feed lock (manager -> feed order);
        # a rotation between the two is caught by the generation check
        generation, __, synced = self.manager.wal_position()
        with self._lock:
            if generation != self._generation:
                # a rotation happened after our position read; since
                # the listener was attached atomically with the anchor,
                # on_rotate has (or will have) drained the sealed
                # segment and advanced the reader — nothing to do here
                return
            self._absorb(self._reader.read(up_to=synced))

    # -- the follower surface -------------------------------------------------

    @property
    def next_seq(self):
        """Sequence number the next logged record will get.

        Ingestion is pull-based, so the returned value is a *lower
        bound* on what the log already holds — which is exactly the
        safe direction for ``capture_state``'s seq-before-payloads
        pairing (the payloads may lead the seq, never lag it)."""
        self._ingest()
        with self._lock:
            return self._next_seq

    @property
    def first_seq(self):
        """Oldest sequence number still retained."""
        with self._lock:
            return self._first_seq

    def _note_subscriber(self, replica, acked_seq):
        """Record a follower sighting and age out silent ones (call
        with the feed lock held)."""
        now = time.monotonic()
        if replica is not None:
            self.subscribers[str(replica)] = {"acked_seq": acked_seq,
                                              "at": now}
        for name in [name for name, state in self.subscribers.items()
                     if now - state["at"] > SUBSCRIBER_TTL_S]:
            del self.subscribers[name]
        self._m_subscribers.set(len(self.subscribers))
        lags = [self._next_seq - state["acked_seq"]
                for state in self.subscribers.values()
                if state["acked_seq"] is not None]
        self._m_max_lag.set(max(lags) if lags else 0)

    def subscribe(self, replica=None):
        """Register (or refresh) a follower; returns the stream shape."""
        self._ingest()
        with self._lock:
            self._note_subscriber(replica, None)
            return {"seq": self._next_seq, "first_seq": self._first_seq,
                    "backlog": self.backlog, "stream": self.stream_id}

    def forget_subscriber(self, replica):
        """Drop a named subscriber from the lag stats.

        Backs the ``unsubscribe`` protocol op: a CDC consumer that is
        done should not linger in :attr:`subscribers` for
        :data:`SUBSCRIBER_TTL_S` and skew the lag numbers an operator
        reads. Returns whether the name was present.
        """
        with self._lock:
            forgotten = self.subscribers.pop(str(replica), None) is not None
            self._m_subscribers.set(len(self.subscribers))
            return forgotten

    def read_from(self, from_seq, limit=DEFAULT_SEGMENT_RECORDS,
                  wait_s=0.0, replica=None):
        """Records ``from_seq ..`` (at most ``limit``), long-polling up
        to ``wait_s`` seconds when the follower is already caught up.

        Returns ``(records, next_seq, end_seq)`` where ``records`` is a
        list of ``{"seq": n, "record": {...}}`` objects, ``next_seq``
        is the cursor for the follower's next call and ``end_seq`` the
        stream end at response time. ``from_seq`` acknowledges that
        everything below it is applied (feeds the leader's lag stats).
        Raises :class:`ReplicationResetError` when ``from_seq`` is
        older than the retained backlog.
        """
        if not isinstance(from_seq, int) or isinstance(from_seq, bool) \
                or from_seq < 0:
            raise ProtocolError(
                "wal-segment needs a non-negative integer from_seq, "
                "got {!r}".format(from_seq))
        limit = max(1, int(limit))
        deadline = time.monotonic() + min(max(0.0, float(wait_s)),
                                          MAX_WAIT_S)
        while True:
            self._ingest()
            with self._lock:
                self._note_subscriber(replica, from_seq)
                if from_seq > self._next_seq:
                    raise ProtocolError(
                        "wal-segment from_seq {} is past the stream end "
                        "{}".format(from_seq, self._next_seq))
                if from_seq < self._first_seq:
                    raise ReplicationResetError(from_seq, self._first_seq)
                if from_seq < self._next_seq:
                    start = from_seq - self._first_seq
                    records = [{"seq": seq, "record": record}
                               for seq, record in itertools.islice(
                                   self._records, start, start + limit)]
                    next_seq = from_seq + len(records)
                    self._m_shipped.inc(len(records))
                    return records, next_seq, self._next_seq
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], from_seq, self._next_seq
                self._wakeup.wait(remaining)

    def stats(self):
        """The leader's replication block for extended ``stats``."""
        self._ingest()
        generation, __, synced = self.manager.wal_position()
        with self._lock:
            subscribers = {
                name: {"acked_seq": state["acked_seq"],
                       "lag": (None if state["acked_seq"] is None
                               else self._next_seq - state["acked_seq"])}
                for name, state in self.subscribers.items()}
            return {"seq": self._next_seq,
                    "first_seq": self._first_seq,
                    "backlog": self.backlog,
                    "stream": self.stream_id,
                    "wal": {"generation": generation, "offset": synced},
                    "subscribers": subscribers}

    def __repr__(self):
        with self._lock:
            return ("ReplicationSource(seq={}, retained={}, "
                    "subscribers={})".format(
                        self._next_seq, len(self._records),
                        len(self.subscribers)))
