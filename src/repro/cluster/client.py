"""Partition-aware routing client: :class:`ClusterClient`.

The cluster's write surface is sharded by document: a consistent-hash
ring (:class:`HashRing`) maps every ``doc_id`` to one leader shard, so
a deployment of N leaders splits the document space N ways while each
document keeps the single-leader semantics the store's coalescing
depends on. Reads (``text`` / ``stats`` / ``docs`` / ``query``) can
fan out: with ``read_replicas=True`` the client round-robins each
shard's read traffic across its replicas and falls back to the leader
when none answers.

Redirects make the topology self-correcting: a write answered with the
typed ``not-leader`` error (a replica was dialed, or a promotion moved
leadership) is retried against the address the error carries, and the
shard table is updated in place — so a manual failover needs no client
restart, just the ``promote``.

Consistent hashing (not modulo) keeps resharding cheap: adding a shard
moves only the ring arcs it takes over, roughly ``1/N`` of the
documents, instead of reshuffling everything.
"""

from __future__ import annotations

import bisect
import hashlib
import time

from repro.api.client import StoreClient
from repro.cluster.sync import parse_address
from repro.errors import (
    ClusterError,
    ConnectionLostError,
    NotLeaderError,
    ProtocolError,
)

#: virtual nodes per shard on the ring — enough that the arc sizes even
#: out across shards without making lookups measurably slower
DEFAULT_VNODES = 64

#: after a failed dial, a replica address sits out of read fan-out for
#: this long — otherwise every Nth read pays the full connect-and-retry
#: bill against a node that is known to be down
REPLICA_COOLDOWN_S = 2.0


def _ring_hash(key):
    # sha1 for distribution quality, not security; int for bisect
    return int.from_bytes(hashlib.sha1(
        key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over named shards."""

    def __init__(self, names, vnodes=DEFAULT_VNODES):
        names = list(names)
        if not names:
            raise ClusterError("a hash ring needs at least one shard")
        if len(set(names)) != len(names):
            raise ClusterError(
                "shard names must be unique, got {!r}".format(names))
        self.names = names
        self.vnodes = vnodes
        points = []
        for name in names:
            for vnode in range(vnodes):
                points.append((_ring_hash("{}#{}".format(name, vnode)),
                               name))
        points.sort()
        self._points = [point for point, __ in points]
        self._owners = [name for __, name in points]

    def lookup(self, key):
        """The shard owning ``key`` (clockwise-next virtual node)."""
        index = bisect.bisect(self._points, _ring_hash(str(key)))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def __len__(self):
        return len(self.names)


class _Shard:
    """One partition: a leader address, optional replica addresses and
    the cached connections to them (keyed by address — after a
    failover, the old leader's connection must not masquerade as the
    new one's)."""

    __slots__ = ("name", "leader", "replicas", "_write_clients",
                 "_replica_clients", "_read_turn", "_down_until")

    def __init__(self, name, leader, replicas):
        self.name = name
        self.leader = leader
        self.replicas = list(replicas)
        self._write_clients = {}
        self._replica_clients = {}
        self._read_turn = 0
        self._down_until = {}    # address -> monotonic cooldown end

    def close(self):
        for cache in (self._write_clients, self._replica_clients):
            for client in cache.values():
                client.close()
            cache.clear()

    def invalidate(self, address, cooldown=0.0):
        for cache in (self._write_clients, self._replica_clients):
            stale = cache.pop(address, None)
            if stale is not None:
                stale.close()
        if cooldown > 0:
            self._down_until[address] = time.monotonic() + cooldown

    def cooling_down(self, address):
        until = self._down_until.get(address)
        if until is None:
            return False
        if time.monotonic() >= until:
            del self._down_until[address]
            return False
        return True


class ClusterClient:
    """Route store operations across a sharded, replicated deployment.

    ``shards`` is a list of ``{"leader": "host:port", "replicas":
    ["host:port", ...], "name": ...}`` dicts (``replicas`` and ``name``
    optional; the name defaults to the initial leader address and is
    the stable ring identity, so leadership moves never re-partition
    the document space). Not thread-safe — one router per thread, like
    the underlying :class:`StoreClient`.
    """

    #: ops served by replicas when read fan-out is on
    READ_OPS = frozenset({"text", "stats", "docs", "query"})

    def __init__(self, shards, client=None, read_replicas=True,
                 retries=2, backoff=0.1, max_backoff=2.0, timeout=30.0):
        if not shards:
            raise ClusterError("ClusterClient needs at least one shard")
        self.client = client
        self.read_replicas = read_replicas
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.timeout = timeout
        self._closed = False
        self._shards = {}
        names = []
        for spec in shards:
            if isinstance(spec, str):
                spec = {"leader": spec}
            leader = spec["leader"]
            name = str(spec.get("name", leader))
            names.append(name)
            self._shards[name] = _Shard(name, leader,
                                        spec.get("replicas", ()))
        self.ring = HashRing(names)

    # -- connections ---------------------------------------------------------

    def _dial(self, address):
        host, port = parse_address(address)
        return StoreClient.connect(
            host=host, port=port, client=self.client,
            timeout=self.timeout, retries=self.retries,
            backoff=self.backoff, max_backoff=self.max_backoff)

    def _write_client(self, shard, address):
        client = shard._write_clients.get(address)
        if client is None:
            client = self._dial(address)
            shard._write_clients[address] = client
        return client

    def _shard_for(self, doc_id):
        return self._shards[self.ring.lookup(doc_id)]

    # -- routed calls --------------------------------------------------------

    def _check_open(self):
        if self._closed:
            raise ProtocolError("client is closed")

    def _call_leader(self, shard, op, **args):
        """Run one op against a shard's leader.

        Follows ``not-leader`` redirects (each hop updates the shard
        table in place) and, when the recorded leader is unreachable,
        *discovers* the new one through the shard's replicas: a replica
        answering the op outright was promoted, a replica answering
        ``not-leader`` names its current upstream. Every address is
        tried at most once per call; transport deaths
        (:class:`ConnectionLostError` / ``OSError``) move on to the
        next candidate, real command failures propagate immediately.
        """
        self._check_open()
        candidates = [shard.leader]
        probed_replicas = False
        tried = set()
        redialed = set()
        last_error = None
        while candidates:
            address = candidates.pop(0)
            if address in tried:
                continue
            tried.add(address)
            cached = address in shard._write_clients
            try:
                client = self._write_client(shard, address)
                result = getattr(client, op)(**args)
            except NotLeaderError as exc:
                last_error = exc
                if exc.leader and str(exc.leader) not in tried:
                    candidates.insert(0, str(exc.leader))
            except (ConnectionError, ConnectionLostError, OSError) as exc:
                last_error = exc
                shard.invalidate(address)
                if cached and address not in redialed:
                    # the *pooled* connection died (leader restarted,
                    # idle socket reaped) — the node itself may be
                    # fine: one fresh dial before writing it off
                    redialed.add(address)
                    tried.discard(address)
                    candidates.insert(0, address)
            else:
                shard.leader = address   # confirmed by the answer
                return result
            if not candidates and not probed_replicas:
                probed_replicas = True
                candidates.extend(a for a in shard.replicas
                                  if a not in tried)
        if isinstance(last_error, NotLeaderError):
            raise last_error
        raise ClusterError(
            "no reachable leader for shard {!r} (tried {})".format(
                shard.name, ", ".join(sorted(tried)))) from last_error

    def _call_read(self, shard, op, **args):
        """Run a read: round-robin across the shard's replicas, leader
        as the fallback (and the only target when fan-out is off)."""
        self._check_open()
        if not (self.read_replicas and shard.replicas):
            return self._call_leader(shard, op, **args)
        turn = shard._read_turn % len(shard.replicas)
        order = shard.replicas[turn:] + shard.replicas[:turn]
        shard._read_turn += 1
        for address in order:
            if shard.cooling_down(address):
                continue
            client = shard._replica_clients.get(address)
            try:
                if client is None:
                    client = self._dial(address)
                    shard._replica_clients[address] = client
                return getattr(client, op)(**args)
            except (ConnectionError, ConnectionLostError, OSError):
                # only a dead node moves the read on (and sits out a
                # cooldown, so steady-state reads stop paying its
                # connect-and-retry bill); a command failure (unknown
                # document, bad path) is the answer and propagates — a
                # lagging replica raising it is exactly the staleness
                # read fan-out trades away
                shard.invalidate(address, cooldown=REPLICA_COOLDOWN_S)
        return self._call_leader(shard, op, **args)

    # -- the client surface ---------------------------------------------------

    def shard_of(self, doc_id):
        """Name of the shard ``doc_id`` hashes to (introspection)."""
        return self.ring.lookup(doc_id)

    def open(self, doc_id, xml):
        return self._call_leader(self._shard_for(doc_id), "open",
                                 doc_id=doc_id, xml=xml)

    def submit(self, doc_id, pul, client=None):
        return self._call_leader(self._shard_for(doc_id), "submit",
                                 doc_id=doc_id, pul=pul, client=client)

    def submit_xquery(self, doc_id, query, client=None):
        return self._call_leader(self._shard_for(doc_id),
                                 "submit_xquery", doc_id=doc_id,
                                 query=query, client=client)

    def flush(self, doc_id):
        return self._call_leader(self._shard_for(doc_id), "flush",
                                 doc_id=doc_id)

    def discard(self, doc_id):
        return self._call_leader(self._shard_for(doc_id), "discard",
                                 doc_id=doc_id)

    def text(self, doc_id):
        return self._call_read(self._shard_for(doc_id), "text",
                               doc_id=doc_id)

    def query(self, doc_id, path):
        return self._call_read(self._shard_for(doc_id), "query",
                               doc_id=doc_id, path=path)

    def stats(self, doc_id=None):
        if doc_id is not None:
            return self._call_read(self._shard_for(doc_id), "stats",
                                   doc_id=doc_id)
        merged = []
        for shard in self._shards.values():
            merged.extend(self._call_read(shard, "stats")["stats"])
        return {"stats": merged}

    def docs(self):
        """Union of every shard's resident documents."""
        seen = set()
        for shard in self._shards.values():
            seen.update(self._call_read(shard, "docs")["docs"])
        return {"docs": sorted(seen)}

    def flush_all(self):
        """Flush every shard; merges the per-shard summaries."""
        batches = 0
        ops = 0
        results = []
        for shard in self._shards.values():
            outcome = self._call_leader(shard, "flush_all")
            batches += outcome["batches"]
            ops += outcome["ops"]
            results.extend(outcome["results"])
        return {"batches": batches, "ops": ops, "results": results}

    # -- CDC & bulk ETL (see repro.cdc / repro.etl) ---------------------------

    def _shard_for_all(self, doc_ids, op):
        """The single shard owning every id in ``doc_ids`` (document
        subscriptions are per-shard streams; spanning two leaders
        would interleave two unrelated epochs)."""
        names = {self.ring.lookup(doc_id) for doc_id in doc_ids}
        if len(names) != 1:
            raise ClusterError(
                "{} spans shards {} — open one subscription per "
                "shard".format(op, ", ".join(sorted(names))))
        return self._shards[names.pop()]

    def subscribe(self, doc_ids, from_token=None, decode=True,
                  subscriber=None, wait_s=5.0, max_events=None):
        """Stream change events for ``doc_ids`` (all on one shard) as
        a generator — the routed counterpart of
        :meth:`StoreClient.subscribe`, following leader redirects
        between polls."""
        doc_ids = ([doc_ids] if isinstance(doc_ids, str)
                   else list(doc_ids))
        shard = self._shard_for_all(doc_ids, "subscribe")
        token = from_token
        while True:
            page = self._call_leader(
                shard, "subscribe_once", from_token=token,
                doc_ids=doc_ids, decode=decode, max_events=max_events,
                wait_s=wait_s, subscriber=subscriber)
            token = page["token"]
            for event in page["events"]:
                yield event

    def unsubscribe(self, subscriber, doc_ids):
        """Drop a named subscriber on the shard serving ``doc_ids``."""
        doc_ids = ([doc_ids] if isinstance(doc_ids, str)
                   else list(doc_ids))
        return self._call_leader(
            self._shard_for_all(doc_ids, "unsubscribe"),
            "unsubscribe", subscriber=subscriber)

    def bulk_import(self, docs):
        """Route one ETL chunk across the ring: documents are grouped
        by owning shard and each group loads atomically on its leader
        (per-shard atomicity — the cross-shard chunk is not)."""
        groups = {}
        for doc in docs:
            doc_id = doc["doc_id"] if isinstance(doc, dict) else doc[0]
            groups.setdefault(self.ring.lookup(doc_id),
                              []).append(doc)
        loaded, nodes, doc_ids = 0, 0, []
        for name, group in groups.items():
            result = self._call_leader(self._shards[name],
                                       "bulk_import", docs=group)
            loaded += result["loaded"]
            nodes += result["nodes"]
            doc_ids.extend(result["doc_ids"])
        return {"loaded": loaded, "nodes": nodes, "doc_ids": doc_ids,
                "shards": len(groups)}

    @property
    def closed(self):
        return self._closed

    def close(self):
        """Close every pooled connection (idempotent). Calls after
        this raise ``ProtocolError("client is closed")``."""
        self._closed = True
        for shard in self._shards.values():
            shard.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        return "ClusterClient({} shards, read_replicas={})".format(
            len(self._shards), self.read_replicas)
