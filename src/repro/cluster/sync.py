"""The replica's pull loop: :class:`ReplicaSync`.

One daemon thread per replica that dials the leader (with
reconnect-and-backoff, so cluster bootstrap races never surface as raw
``ConnectionRefusedError``), subscribes, bootstraps from a snapshot
transfer when the stream cannot be joined in place, then long-polls
``wal-segment`` and applies each batch of records through
:meth:`~repro.cluster.replica.ReplicaStore.apply_records`.

Bootstrap decision (the only subtle part): a replica joins the stream
in place only when its recorded position belongs to the leader's
current *stream epoch* and still falls inside the retained window —
anything else (fresh replica, epoch change after a leader restart or
promotion, fell behind the backlog) installs a full snapshot transfer
first. The leader also answers
:class:`~repro.errors.ReplicationResetError` mid-stream when the
window slides past the cursor; the loop re-bootstraps and carries on.

Leader loss is survived, not fatal: the loop keeps retrying with capped
exponential backoff until it is stopped or the replica is promoted. A
``not-leader`` answer from the upstream (it was itself demoted or is a
replica) follows the advertised redirect when one is carried.
"""

from __future__ import annotations

import threading
import time

from repro.api.client import StoreClient
from repro.errors import (
    NotLeaderError,
    ProtocolError,
    ReplicationResetError,
    ReproError,
)
from repro.obs import StoreObs


def parse_address(address):
    """``host:port`` -> ``(host, port)`` (the cluster's address form)."""
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ReproError(
            "cluster addresses are host:port, got {!r}".format(address))
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(
            "cluster address port must be an integer, got "
            "{!r}".format(port)) from None


class ReplicaSync:
    """Stream a leader's WAL into one :class:`ReplicaStore`.

    Parameters
    ----------
    replica:
        The store to feed (also receives ``attach_sync`` so
        ``promote`` can stop the loop).
    leader:
        ``host:port`` of the leader to follow.
    replica_id:
        Name announced to the leader (feeds its lag stats) and used as
        the connection identity.
    wait_s / max_records:
        Long-poll window and batch size of each ``wal-segment`` pull.
    backoff / max_backoff:
        Reconnect schedule after a connection failure.
    """

    def __init__(self, replica, leader, replica_id,
                 wait_s=2.0, max_records=256,
                 backoff=0.2, max_backoff=5.0):
        self.replica = replica
        self.leader = str(leader)
        self.replica_id = str(replica_id)
        self.wait_s = wait_s
        self.max_records = max_records
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._stop = threading.Event()
        self._client = None
        self._client_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name="replica-sync-{}".format(self.replica_id))
        #: observability, surfaced through the replica's extended stats
        self.connected = False
        self.last_error = None
        self.last_end_seq = None
        self.lag_seconds = 0.0
        obs = getattr(replica, "obs", None)
        self._obs = obs if obs is not None else StoreObs(enabled=False)
        self._m_behind = self._obs.gauge(
            "repro_replication_behind_records",
            help_text="Records between the leader's stream end and "
                      "this replica's applied position")
        self._m_lag = self._obs.gauge(
            "repro_replication_lag_seconds",
            help_text="Seconds since this replica was last caught up "
                      "with the leader (0 while caught up)")
        self._m_applied = self._obs.counter(
            "repro_replication_records_applied_total",
            help_text="Leader WAL records applied by this replica")
        self._caught_up_at = time.monotonic()
        replica.attach_sync(self)

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        self._thread.start()
        return self

    def stop(self, join=True, timeout=30.0):
        """Stop the loop; ``join=True`` waits until the in-flight
        segment (if any) has been applied, so callers observe a settled
        replica."""
        self._stop.set()
        with self._client_lock:
            client = self._client
            self._client = None
        if client is not None:
            # closing the socket from here unblocks a long-poll recv
            client.close()
        if join and self._thread.is_alive() \
                and self._thread is not threading.current_thread():
            self._thread.join(timeout)

    @property
    def stopped(self):
        return self._stop.is_set()

    def status(self):
        return {"leader": self.leader, "connected": self.connected,
                "applied_seq": self.replica.applied_seq,
                "behind": (None if self.last_end_seq is None else
                           max(0, self.last_end_seq
                               - self.replica.applied_seq)),
                "lag_seconds": self.lag_seconds,
                "last_error": self.last_error}

    # -- the loop ------------------------------------------------------------

    def _run(self):
        delay = self.backoff
        while not self._stop.is_set():
            try:
                client = self._connect()
                if client is None:
                    return
                delay = self.backoff      # a successful dial resets it
                self._stream(client)
            except (ConnectionError, OSError, ProtocolError) as exc:
                self._note_error(exc)
            except NotLeaderError as exc:
                # the upstream is (now) a replica itself; follow its
                # advertised leader when it knows one
                self._note_error(exc)
                if exc.leader:
                    self.leader = str(exc.leader)
                    self.replica.leader_address = self.leader
            except ReproError as exc:
                self._note_error(exc)
            finally:
                self._drop_client()
            if self._stop.wait(delay):
                return
            delay = min(delay * 2, self.max_backoff)

    def _connect(self):
        host, port = parse_address(self.leader)
        client = StoreClient.connect(
            host=host, port=port, client=self.replica_id,
            timeout=max(self.wait_s * 4, 10.0),
            retries=2, backoff=self.backoff, max_backoff=self.max_backoff)
        with self._client_lock:
            if self._stop.is_set():
                client.close()
                return None
            self._client = client
        self.connected = True
        self.replica.leader_address = self.leader
        return client

    def _drop_client(self):
        self.connected = False
        with self._client_lock:
            client = self._client
            self._client = None
        if client is not None:
            client.close()

    def _stream(self, client):
        info = client.replicate_subscribe(replica=self.replica_id)
        if self._needs_bootstrap(info):
            transfer = client.snapshot_transfer()
            self.replica.bootstrap(transfer["docs"], transfer["seq"],
                                   stream=transfer.get("stream"))
        while not self._stop.is_set():
            try:
                segment = client.wal_segment(
                    from_seq=self.replica.applied_seq,
                    replica=self.replica_id,
                    max_records=self.max_records, wait_s=self.wait_s)
            except ReplicationResetError:
                # the retained window slid past our cursor: start over
                # from a fresh transfer on this same connection
                transfer = client.snapshot_transfer()
                self.replica.bootstrap(transfer["docs"], transfer["seq"],
                                       stream=transfer.get("stream"))
                continue
            self.replica.apply_records(segment["records"],
                                       segment["next_seq"])
            self.last_end_seq = segment["end_seq"]
            self.last_error = None
            self._note_progress(len(segment["records"]),
                                segment["end_seq"])

    def _note_progress(self, applied, end_seq):
        """Feed the replication gauges after one segment: how far
        behind the stream end we are (records) and for how long
        (seconds since we were last fully caught up)."""
        if applied:
            self._m_applied.inc(applied)
        behind = max(0, end_seq - self.replica.applied_seq)
        now = time.monotonic()
        if behind == 0:
            self._caught_up_at = now
        self.lag_seconds = (0.0 if behind == 0
                            else round(now - self._caught_up_at, 3))
        self._m_behind.set(behind)
        self._m_lag.set(self.lag_seconds)

    def _needs_bootstrap(self, info):
        replica = self.replica
        if replica.stream_id != info.get("stream"):
            return True               # different epoch: seqs don't mean
        if replica.applied_seq < info["first_seq"]:
            return True               # fell out of the retained window
        if replica.applied_seq > info["seq"]:
            return True               # ahead of the stream: impossible
        return False                  # join the stream in place

    def _note_error(self, exc):
        self.last_error = "{}: {}".format(type(exc).__name__, exc)

    def __repr__(self):
        return ("ReplicaSync({!r} <- {}, applied_seq={}, "
                "connected={})".format(
                    self.replica_id, self.leader,
                    self.replica.applied_seq, self.connected))
