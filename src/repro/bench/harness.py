"""Timing and table-formatting utilities for the figure benchmarks."""

from __future__ import annotations

import time


def time_call(function, *args, repeat=3, **kwargs):
    """Best-of-``repeat`` wall time of ``function(*args, **kwargs)``.

    Returns ``(seconds, last_result)``.
    """
    best = None
    result = None
    for __ in range(repeat):
        start = time.perf_counter()
        result = function(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


class Series:
    """One plotted series: a name and (x, y) points."""

    def __init__(self, name, points=()):
        self.name = name
        self.points = list(points)

    def add(self, x, y):
        self.points.append((x, y))
        return self

    def ys(self):
        return [y for __, y in self.points]

    def __iter__(self):
        return iter(self.points)

    def __repr__(self):
        return "Series({}, {} points)".format(self.name, len(self.points))


def format_table(title, x_label, series_list, x_format="{}",
                 y_format="{:10.4f}"):
    """Render aligned columns: one row per x, one column per series."""
    xs = [x for x, __ in series_list[0].points]
    lines = [title, ""]
    header = "{:>14}".format(x_label)
    for series in series_list:
        header += "{:>16}".format(series.name[:15])
    lines.append(header)
    lines.append("-" * len(header))
    for row_index, x in enumerate(xs):
        row = "{:>14}".format(x_format.format(x))
        for series in series_list:
            row += "{:>16}".format(y_format.format(
                series.points[row_index][1]))
        lines.append(row)
    return "\n".join(lines)
