"""Regeneration of every Figure 6 panel (and the in-text findings).

Each ``fig6x`` function builds the paper's workload (scaled down to this
container — we reproduce *shape*, not absolute numbers), measures, and
returns the plotted series; ``main`` prints them all as tables. See
EXPERIMENTS.md for the recorded outputs and the paper-vs-measured
comparison.
"""

from __future__ import annotations

from repro.aggregation import aggregate
from repro.apply.events import events_to_xml, parse_events
from repro.apply.inmemory import apply_in_memory
from repro.apply.streaming import apply_streaming
from repro.bench.harness import Series, format_table, time_call
from repro.integration import integrate, reconcile
from repro.labeling import CDQSEncoder, ContainmentLabeling
from repro.pul.serialize import pul_from_xml, pul_to_xml
from repro.reasoning import DocumentOracle
from repro.reduction import reduce_deterministic, reduce_naive
from repro.workloads import (
    generate_conflicting_puls,
    generate_pul,
    generate_reducible_pul,
    generate_sequential_puls,
    generate_xmark,
    xmark_text,
)

#: document scales for Figure 6a (paper: 1MB..256MB; here ~0.06..2MB,
#: the same x2 progression)
FIG6A_SCALES = (0.0625, 0.125, 0.25, 0.5, 1.0, 2.0)
#: PUL sizes for Figure 6b (paper: 5k..100k ops; scaled /10)
FIG6B_SIZES = (500, 1000, 2000, 4000, 8000)
#: PUL counts for Figure 6c/6d (paper: up to 15 PULs x 1000 ops)
FIG6C_COUNTS = (1, 3, 5, 9, 12, 15)
#: per-PUL op counts for Figure 6e (paper: 4k..80k over 10 PULs; /10)
FIG6E_SIZES = (400, 800, 1600, 3200, 8000)


def fig6a(scales=FIG6A_SCALES, pul_ops=1000, seed=7, repeat=3,
          measure_memory=True):
    """Figure 6a: streaming vs in-memory evaluation of a 1000-op PUL over
    growing documents.

    Returns (sizes_mb, streaming, inmemory, mem_streaming, mem_inmemory)
    series; the memory series (peak tracemalloc MB) witness the streaming
    evaluator's headline property — memory independent of document size.
    """
    import tracemalloc

    streaming = Series("streaming")
    inmemory = Series("in-memory")
    mem_streaming = Series("stream-MB")
    mem_inmemory = Series("memory-MB")
    sizes = Series("size-mb")
    for scale in scales:
        document = generate_xmark(scale=scale, seed=seed)
        doc_size = len(document)
        text = xmark_text(scale=scale, seed=seed)
        pul = generate_pul(document, pul_ops, seed=seed)
        mb = len(text) / 1e6
        del document

        def run_streaming():
            return events_to_xml(apply_streaming(
                parse_events(text), pul, fresh_start=doc_size))

        def run_inmemory():
            return apply_in_memory(text, pul)

        t_stream, out_s = time_call(run_streaming, repeat=repeat)
        t_memory, out_m = time_call(run_inmemory, repeat=repeat)
        assert out_s == out_m or len(out_s) == len(out_m)
        sizes.add(scale, mb)
        streaming.add(mb, t_stream)
        inmemory.add(mb, t_memory)
        if measure_memory:
            # for the memory property, serialize to disk (the paper's
            # mode): the streaming path then never holds the document
            import io
            import os
            from repro.apply.events import events_to_file

            def stream_to_disk():
                with open(os.devnull, "w") as sink:
                    events_to_file(apply_streaming(
                        parse_events(text), pul, fresh_start=doc_size),
                        sink)

            def memory_to_disk():
                output = apply_in_memory(text, pul)
                with open(os.devnull, "w") as sink:
                    sink.write(output)

            for runner, series in ((stream_to_disk, mem_streaming),
                                   (memory_to_disk, mem_inmemory)):
                tracemalloc.start()
                runner()
                __, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
                series.add(mb, peak / 1e6)
    return sizes, streaming, inmemory, mem_streaming, mem_inmemory


def fig6b(sizes=FIG6B_SIZES, scale=0.5, hit_ratio=0.1, seed=11, repeat=1):
    """Figure 6b: deserialize + reduce + reserialize time vs PUL size
    (~1 successful rule application per 10 ops)."""
    total = Series("total")
    reduce_only = Series("reduce-only")
    serialization = Series("ser/deser")
    document = generate_xmark(scale=scale, seed=seed)
    oracle = DocumentOracle(document)
    for size in sizes:
        pul = generate_reducible_pul(document, size, hit_ratio=hit_ratio,
                                     seed=seed)
        labeling = ContainmentLabeling().build(document)
        pul.attach_labels(labeling)
        wire = pul_to_xml(pul)

        def run_total():
            received = pul_from_xml(wire)
            reduced = reduce_deterministic(received, oracle)
            return pul_to_xml(reduced)

        def run_reduce():
            return reduce_deterministic(pul, oracle)

        t_total, __ = time_call(run_total, repeat=repeat)
        t_reduce, __ = time_call(run_reduce, repeat=repeat)
        total.add(size, t_total)
        reduce_only.add(size, t_reduce)
        serialization.add(size, t_total - t_reduce)
    return total, reduce_only, serialization


def fig6c(counts=FIG6C_COUNTS, ops_per_pul=1000, scale=0.5,
          new_node_ratio=0.5, seed=13, repeat=1):
    """Figure 6c: deserialize + aggregate + reserialize a growing list of
    PULs (1000 ops each, half targeting new nodes)."""
    total = Series("total")
    aggregate_only = Series("aggregate-only")
    document = generate_xmark(scale=scale, seed=seed)
    for count in counts:
        puls, __ = generate_sequential_puls(
            document, count, ops_per_pul,
            new_node_ratio=new_node_ratio, seed=seed)
        wires = [pul_to_xml(pul) for pul in puls]

        def run_total():
            received = [pul_from_xml(wire) for wire in wires]
            return pul_to_xml(aggregate(received))

        def run_aggregate():
            return aggregate(puls)

        t_total, __unused = time_call(run_total, repeat=repeat)
        t_agg, __unused = time_call(run_aggregate, repeat=repeat)
        total.add(count, t_total)
        aggregate_only.add(count, t_agg)
    return total, aggregate_only


def fig6d(counts=FIG6C_COUNTS, ops_per_pul=200, scale=0.25,
          seed=17, repeat=1):
    """Figure 6d: aggregate-then-evaluate (one streamed pass) vs the
    sequential streamed evaluation of every PUL in the list."""
    aggregated = Series("aggregate+apply")
    sequential = Series("sequential")
    document = generate_xmark(scale=scale, seed=seed)
    text = xmark_text(scale=scale, seed=seed)
    for count in counts:
        puls, __ = generate_sequential_puls(document, count, ops_per_pul,
                                            seed=seed)

        def run_aggregated():
            combined = aggregate(puls)
            return events_to_xml(apply_streaming(
                parse_events(text), combined, check=False))

        def run_sequential():
            current = text
            for pul in puls:
                current = events_to_xml(apply_streaming(
                    parse_events(current), pul, check=False))
            return current

        t_agg, out_a = time_call(run_aggregated, repeat=repeat)
        t_seq, out_s = time_call(run_sequential, repeat=repeat)
        aggregated.add(count, t_agg)
        sequential.add(count, t_seq)
    return aggregated, sequential


def fig6e(sizes=FIG6E_SIZES, pul_count=10, scale=1.0, seed=19, repeat=1):
    """Figure 6e: integration + conflict resolution of 10 PULs with half
    the operations in conflicts (avg 5 ops per conflict, 1/5 cascades)."""
    integration = Series("integrate")
    resolution = Series("reconcile")
    document = generate_xmark(scale=scale, seed=seed)
    oracle = DocumentOracle(document)
    for size in sizes:
        puls, __ = generate_conflicting_puls(
            document, pul_count=pul_count, ops_per_pul=size,
            conflict_fraction=0.5, ops_per_conflict=5,
            cascade_fraction=0.2, seed=seed)

        def run_integrate():
            return integrate(puls, structure=oracle)

        def run_reconcile():
            return reconcile(puls, policies={}, structure=oracle)

        t_int, __unused = time_call(run_integrate, repeat=repeat)
        t_rec, __unused = time_call(run_reconcile, repeat=repeat)
        integration.add(size * pul_count, t_int)
        resolution.add(size * pul_count, t_rec)
    return integration, resolution


def e6_pulsize_effect(sizes=(125, 250, 500, 1000, 2000, 4000), scale=0.5,
                      seed=23, repeat=1):
    """In-text finding: the number of operations in a PUL has a negligible
    effect on (streamed) evaluation time."""
    evaluation = Series("streamed-eval")
    document = generate_xmark(scale=scale, seed=seed)
    text = xmark_text(scale=scale, seed=seed)
    for size in sizes:
        pul = generate_pul(document, size, seed=seed)

        def run():
            return events_to_xml(apply_streaming(
                parse_events(text), pul, fresh_start=len(document)))

        elapsed, __unused = time_call(run, repeat=repeat)
        evaluation.add(size, elapsed)
    return (evaluation,)


def ablation_codes(scale=0.5, seed=29):
    """Ablation: CDBS vs CDQS encoders — label build time and total code
    length over one document."""
    rows = []
    document = generate_xmark(scale=scale, seed=seed)
    for name, encoder in (("CDBS", None), ("CDQS", CDQSEncoder())):
        labeling = ContainmentLabeling(encoder=encoder) if encoder \
            else ContainmentLabeling()
        elapsed, __ = time_call(labeling.build, document, repeat=1)
        total_length = sum(
            len(label.start) + len(label.end)
            for label in labeling.as_mapping().values())
        rows.append((name, elapsed, total_length))
    return rows


def ablation_reduction(sizes=(50, 100, 200, 400), scale=0.25, seed=31):
    """Ablation: optimized staged engine vs the naive pairwise engine."""
    optimized = Series("optimized")
    naive = Series("naive")
    document = generate_xmark(scale=scale, seed=seed)
    oracle = DocumentOracle(document)
    for size in sizes:
        pul = generate_reducible_pul(document, size, hit_ratio=0.1,
                                     seed=seed)
        t_opt, __ = time_call(reduce_deterministic, pul, oracle, repeat=1)
        t_naive, __ = time_call(
            reduce_naive, pul, oracle, True, repeat=1)
        optimized.add(size, t_opt)
        naive.add(size, t_naive)
    return optimized, naive


def main():
    """Run all figure benchmarks and print their tables."""
    sizes, streaming, inmemory, mem_s, mem_m = fig6a()
    print(format_table("Figure 6a — streaming vs in-memory evaluation "
                       "(time s, peak memory MB)",
                       "doc MB", [streaming, inmemory, mem_s, mem_m],
                       x_format="{:.2f}"))
    ratio = sum(m / s for (__, s), (___, m)
                in zip(streaming, inmemory)) / len(streaming.points)
    print("\nmean time speedup streaming vs in-memory: {:.2f}x "
          "(paper: ~3x, growing with size)".format(ratio))
    print("peak-memory ratio at the largest document: {:.1f}x "
          "(streaming memory is ~flat in document size)\n".format(
              mem_m.ys()[-1] / mem_s.ys()[-1]))

    total, reduce_only, ser = fig6b()
    print(format_table("Figure 6b — reduction (s)", "PUL ops",
                       [total, reduce_only, ser]))
    print()

    total_c, agg_only = fig6c()
    print(format_table("Figure 6c — aggregation of N x 1000-op PULs (s)",
                       "N PULs", [total_c, agg_only]))
    print()

    agg, seq = fig6d()
    print(format_table("Figure 6d — aggregate+apply vs sequential (s)",
                       "N PULs", [agg, seq]))
    print()

    integration, resolution = fig6e()
    print(format_table("Figure 6e — integration (s)", "total ops",
                       [integration, resolution]))
    print()

    (evaluation,) = e6_pulsize_effect()
    print(format_table("E6 — PUL size effect on streamed evaluation (s)",
                       "PUL ops", [evaluation]))
    print()

    print("Ablation — labeling encoders (build time s, total code chars):")
    for name, elapsed, total_length in ablation_codes():
        print("  {:>5}: {:8.4f}s  {:>12} chars".format(
            name, elapsed, total_length))
    print()

    optimized, naive = ablation_reduction()
    print(format_table("Ablation — reduction engines (s)", "PUL ops",
                       [optimized, naive]))


if __name__ == "__main__":
    main()
