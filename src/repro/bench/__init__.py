"""Benchmark harness (Section 4.3 / Figure 6).

:mod:`repro.bench.figures` regenerates every panel of Figure 6 as a
printed series; ``python -m repro.bench`` runs them all and prints the
tables recorded in EXPERIMENTS.md. The ``benchmarks/`` directory wraps the
same workloads with pytest-benchmark for statistically robust timings.
"""

from repro.bench.harness import Series, format_table, time_call

__all__ = ["Series", "format_table", "time_call"]
