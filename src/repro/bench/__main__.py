"""``python -m repro.bench`` — run every figure benchmark."""

from repro.bench.figures import main

if __name__ == "__main__":
    main()
