"""Resident multi-document update store (serving layer).

The store keeps parsed documents and their containment labelings warm
between update batches, coalesces concurrent-client PUL streams, routes
batches through the sharded reduction pipeline and maintains labels
incrementally (full-relabel fallback on code-headroom exhaustion). See
``store.py`` for the machinery, ``baseline.py`` for the stateless
differential oracle, ``service.py`` for the line protocol,
``durability/`` for the write-ahead log, snapshot compaction and crash
recovery, and this package's README for the invariants.
"""

from repro.store.baseline import StatelessBaseline
from repro.store.durability import (
    DurabilityManager,
    DurabilityPolicy,
    RecoveryReport,
    replay_oracle,
)
from repro.store.service import StoreService
from repro.store.store import (
    DEFAULT_MAX_CODE_LENGTH,
    BatchResult,
    DocumentStore,
    StoredDocument,
    coalesce_batch,
)

__all__ = [
    "DEFAULT_MAX_CODE_LENGTH",
    "BatchResult",
    "DocumentStore",
    "DurabilityManager",
    "DurabilityPolicy",
    "RecoveryReport",
    "StatelessBaseline",
    "StoredDocument",
    "StoreService",
    "coalesce_batch",
    "replay_oracle",
]
