"""Snapshot serialization of resident document state.

A snapshot must reconstruct a :class:`~repro.store.store.StoredDocument`
*exactly* — not just the same bytes of XML, but the same node
identifiers, the same allocator position (burnt ids stay burnt), the
same containment labels digit for digit, and the same code-length
watermark — because the replayed WAL tail runs through the incremental
relabel machinery, whose output depends on all of them.

The document tree travels in the PUL exchange representation
(:func:`repro.pul.serialize.tree_to_xml`), which keeps identifiers on
every node kind; labels travel in their compact
:meth:`~repro.labeling.containment.ExtendedLabel.to_string` form. The
container is a plain JSON object so snapshots stay inspectable with
standard tooling.
"""

from __future__ import annotations

from repro.errors import RecoveryError
from repro.labeling.containment import ExtendedLabel
from repro.labeling.scheme import ContainmentLabeling
from repro.pul.serialize import tree_from_xml, tree_to_xml
from repro.xdm.document import Document, IdAllocator

#: counters carried verbatim between a StoredDocument and its payload
_COUNTERS = ("version", "batches", "incremental_relabels", "full_relabels")


def document_payload(entry):
    """Serialize one resident entry (a ``StoredDocument``) to a payload
    dict (JSON-compatible)."""
    payload = {
        "doc_id": entry.doc_id,
        "next_id": entry.document.allocator.next_value,
        "tree": tree_to_xml(entry.document.root),
        "labels": [label.to_string()
                   for label in entry.labeling.as_mapping().values()],
        "max_code_len": entry.labeling.max_code_length,
    }
    for counter in _COUNTERS:
        payload[counter] = getattr(entry, counter)
    return payload


class RestoredDocument:
    """The deserialized form of :func:`document_payload` — everything a
    store needs to rebuild its resident entry."""

    __slots__ = ("doc_id", "document", "labeling", "counters")

    def __init__(self, doc_id, document, labeling, counters):
        self.doc_id = doc_id
        self.document = document
        self.labeling = labeling
        self.counters = counters


def restore_document(payload):
    """Rebuild a :class:`RestoredDocument` from a payload dict."""
    try:
        doc_id = payload["doc_id"]
        root = tree_from_xml(payload["tree"])
        document = Document(root=root, allocator=IdAllocator())
        document.allocator.reserve_at_least(payload["next_id"])
        labeling = ContainmentLabeling()
        for text in payload["labels"]:
            labeling.import_label(ExtendedLabel.from_string(text))
        labeling.note_code_length(payload["max_code_len"])
        counters = {name: payload[name] for name in _COUNTERS}
    except (KeyError, TypeError, ValueError) as exc:
        raise RecoveryError(
            "malformed document payload for {!r}: {}".format(
                payload.get("doc_id") if isinstance(payload, dict)
                else None, exc)) from exc
    return RestoredDocument(doc_id, document, labeling, counters)
