"""Durability policies, the log/snapshot directory, and recovery.

Directory layout (one directory per store)::

    wal-00000000.log        record segments, one per generation
    snapshot-00000003.snap  state after every record of generations <= 3

The *generation* counter ties the two together: records append to the
segment of the current generation; compaction seals that segment,
writes a snapshot carrying the same generation number (atomic tmp +
rename), opens the next generation's segment and only then deletes the
files the snapshot made redundant. Every crash point in that sequence
leaves a directory that recovers to the same state.

Record payloads are JSON objects (framed by :mod:`.wal`):

``{"kind": "open", "doc": <document payload>}``
    a document became resident (the payload is the full snapshot-form
    state, so replay restores identifiers and labels exactly);
``{"kind": "batch", "doc_id": ..., "version": n, "clients": k,
"pul": <exchange XML>}``
    one coalesced batch, logged *before* application (write-ahead) —
    version ``n`` is the version the batch produces;
``{"kind": "relabel", "doc_id": ...}``
    the store rebuilt the document's labeling outside the headroom rule
    (the failed-flush recovery path); replayed so the label timeline
    stays digit-identical;
``{"kind": "close", "doc_id": ...}``
    the document was evicted;
``{"kind": "repl-pos", "seq": n}``
    written by a *replica* store: every leader record below sequence
    ``n`` has been applied (the replication cursor, recovered so a
    restarted replica resumes streaming where it left off — see
    :mod:`repro.cluster`).
"""

from __future__ import annotations

import json
import os
import re
import threading
import time

from repro.errors import DurabilityError, RecoveryError
from repro.obs import SIZE_BUCKETS, StoreObs
from repro.pul.serialize import pul_from_xml
from repro.pul.semantics import apply_pul
from repro.reduction import reduce_deterministic
from repro.store.durability.snapshot import restore_document
from repro.store.durability.wal import (
    WalWriter,
    read_single_record,
    scan_wal,
    truncate_torn_tail,
    write_file_atomically,
)
from repro.xdm.serializer import serialize

_WAL_PATTERN = re.compile(r"^wal-(\d{8})\.log$")
_SNAP_PATTERN = re.compile(r"^snapshot-(\d{8})\.snap$")

DEFAULT_SNAPSHOT_EVERY = 8


class DurabilityPolicy:
    """What the store promises to survive.

    ``off``
        nothing is written; a crash loses every batch (the PR-2
        behaviour).
    ``log``
        every flushed batch is appended to the write-ahead log and
        fsynced before the flush returns: an acknowledged batch is never
        lost, recovery replays the log.
    ``snapshot``
        ``log`` plus compaction: every ``snapshot_every`` batches the
        full store state is snapshotted and the log truncated, bounding
        recovery time by the snapshot interval instead of the session
        length.
    """

    MODES = ("off", "log", "snapshot")

    __slots__ = ("mode", "snapshot_every", "fsync")

    def __init__(self, mode="off", snapshot_every=DEFAULT_SNAPSHOT_EVERY,
                 fsync=True):
        if mode not in self.MODES:
            raise DurabilityError(
                "durability mode must be one of {}, got {!r}".format(
                    "/".join(self.MODES), mode))
        if mode == "snapshot" and snapshot_every < 1:
            raise DurabilityError(
                "snapshot_every must be >= 1, got {}".format(snapshot_every))
        self.mode = mode
        self.snapshot_every = snapshot_every
        self.fsync = fsync

    @property
    def durable(self):
        return self.mode != "off"

    @classmethod
    def parse(cls, spec, fsync=True):
        """Parse a CLI spec: ``off``, ``log``, ``log+snapshot`` or
        ``log+snapshot:N`` (``snapshot[:N]`` is accepted as an alias)."""
        text = (spec or "off").strip().lower()
        if text in ("off", "log"):
            return cls(mode=text, fsync=fsync)
        for prefix in ("log+snapshot", "snapshot"):
            if text == prefix:
                return cls(mode="snapshot", fsync=fsync)
            if text.startswith(prefix + ":"):
                try:
                    every = int(text[len(prefix) + 1:])
                except ValueError:
                    break
                return cls(mode="snapshot", snapshot_every=every,
                           fsync=fsync)
        raise DurabilityError(
            "unknown durability spec {!r} (use off, log, or "
            "log+snapshot[:N])".format(spec))

    def __repr__(self):
        if self.mode == "snapshot":
            return "DurabilityPolicy(log+snapshot:{})".format(
                self.snapshot_every)
        return "DurabilityPolicy({})".format(self.mode)


class LoadedState:
    """What :func:`load_durable_state` found on disk."""

    __slots__ = ("documents", "records", "generation",
                 "snapshot_generation", "clean", "truncated_bytes")

    def __init__(self, documents, records, generation,
                 snapshot_generation, clean, truncated_bytes):
        self.documents = documents      # snapshot document payloads
        self.records = records          # decoded tail records, in order
        self.generation = generation    # generation new appends go to
        self.snapshot_generation = snapshot_generation  # None = no snap
        self.clean = clean              # False = a torn tail was dropped
        self.truncated_bytes = truncated_bytes

    @property
    def empty(self):
        return not self.documents and not self.records


class RecoveryReport:
    """Human- and test-facing summary of one recovery."""

    __slots__ = ("documents", "replayed_batches", "skipped_records",
                 "snapshot_generation", "clean", "truncated_bytes")

    def __init__(self, documents, replayed_batches, skipped_records,
                 snapshot_generation, clean, truncated_bytes):
        self.documents = documents      # [(doc_id, version), ...]
        self.replayed_batches = replayed_batches
        self.skipped_records = skipped_records
        self.snapshot_generation = snapshot_generation
        self.clean = clean
        self.truncated_bytes = truncated_bytes

    def lines(self):
        yield ("recovered {} document(s): {}".format(
            len(self.documents),
            ", ".join("{}@v{}".format(doc_id, version)
                      for doc_id, version in self.documents) or "-"))
        yield ("snapshot generation: {}; replayed {} batch(es), "
               "skipped {} record(s)".format(
                   "none" if self.snapshot_generation is None
                   else self.snapshot_generation,
                   self.replayed_batches, self.skipped_records))
        if not self.clean:
            yield ("torn tail: dropped {} trailing byte(s) of the final "
                   "segment".format(self.truncated_bytes))


def encode_payload(record):
    """JSON-encode one record dict (canonical form, UTF-8)."""
    return json.dumps(record, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")


def decode_payload(payload):
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise RecoveryError(
            "undecodable log record: {}".format(exc)) from exc
    if not isinstance(record, dict) or "kind" not in record:
        raise RecoveryError(
            "log record is not a tagged object: {!r}".format(record))
    return record


def _scan_directory(directory):
    """Return ``(wal_generations, snapshot_generations)`` maps
    ``generation -> path`` for ``directory``."""
    wals, snaps = {}, {}
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return wals, snaps
    for name in names:
        match = _WAL_PATTERN.match(name)
        if match:
            wals[int(match.group(1))] = os.path.join(directory, name)
        match = _SNAP_PATTERN.match(name)
        if match:
            snaps[int(match.group(1))] = os.path.join(directory, name)
    return wals, snaps


def load_durable_state(directory, repair=True):
    """Read a durability directory back into a :class:`LoadedState`.

    Picks the newest validating snapshot, decodes the record tail of
    every later segment, and (with ``repair=True``) truncates a torn
    final segment to its valid prefix so appends can resume in place. A
    torn *non-final* segment means records were lost in the middle of
    the history and raises :class:`RecoveryError`.
    """
    wals, snaps = _scan_directory(directory)
    documents = []
    snapshot_generation = None
    for generation in sorted(snaps, reverse=True):
        payload = read_single_record(snaps[generation])
        if payload is None:
            continue
        snapshot = decode_payload(payload)
        if snapshot.get("kind") != "snapshot":
            continue
        documents = snapshot["docs"]
        snapshot_generation = generation
        break
    base = -1 if snapshot_generation is None else snapshot_generation
    replay_generations = sorted(g for g in wals if g > base)
    expected = list(range(base + 1, base + 1 + len(replay_generations)))
    if replay_generations != expected:
        raise RecoveryError(
            "segment chain has gaps: expected generations {}, found {} "
            "(a snapshot may have rotted after its segments were "
            "compacted away)".format(expected, replay_generations))
    records = []
    clean = True
    truncated = 0
    for index, generation in enumerate(replay_generations):
        path = wals[generation]
        payloads, valid_bytes, segment_clean = scan_wal(path)
        if not segment_clean:
            if index != len(replay_generations) - 1:
                raise RecoveryError(
                    "segment {} is corrupt before its tail; records of "
                    "later segments are unreachable".format(path))
            clean = False
            truncated = os.path.getsize(path) - valid_bytes
            if repair:
                truncate_torn_tail(path, valid_bytes)
        records.extend(decode_payload(p) for p in payloads)
    generation = max([base + 1] + replay_generations) if (
        wals or snaps) else 0
    return LoadedState(documents, records, generation,
                       snapshot_generation, clean, truncated)


class DurabilityManager:
    """Owns one durability directory on behalf of one store.

    Thread-safe: appends from concurrent per-document flushes are
    serialized on an internal lock; compaction swaps the active segment
    under the same lock.
    """

    def __init__(self, directory, policy, group_window=0.0, obs=None):
        if not policy.durable:
            raise DurabilityError(
                "a DurabilityManager needs a durable policy, got "
                "{!r}".format(policy))
        self.directory = directory
        self.policy = policy
        #: the owning store's observability facade; a standalone
        #: manager gets a disabled one (no-op metrics, spans still
        #: attach to any active trace)
        self._obs = obs if obs is not None else StoreObs(enabled=False)
        self._m_fsyncs = self._obs.counter(
            "repro_wal_fsyncs_total", "WAL fsyncs issued")
        self._m_records = self._obs.counter(
            "repro_wal_records_total", "WAL records appended")
        self._m_bytes = self._obs.counter(
            "repro_wal_bytes_total", "WAL record payload bytes appended")
        self._m_rotations = self._obs.counter(
            "repro_wal_rotations_total", "WAL segment rotations")
        self._m_train = self._obs.histogram(
            "repro_wal_train_records",
            "Records made durable by one group-commit fsync",
            buckets=SIZE_BUCKETS)
        #: records appended but not yet covered by a counted fsync —
        #: the occupancy the next train leader's fsync reports
        self._train_pending = 0
        #: extra seconds a commit-train leader waits before its fsync so
        #: more concurrent flushes can board (0 = fsync immediately; the
        #: train still forms naturally while a previous fsync is in
        #: flight, so the default adds no latency under low concurrency)
        self.group_window = group_window
        self._lock = threading.Lock()
        self._commit_cv = threading.Condition()
        self._sync_leader = False
        self._writer = None
        self.generation = 0
        self.batches_since_snapshot = 0
        #: optional replication hook (see :mod:`repro.cluster.feed`):
        #: ``on_append()`` after every synced record, ``on_rotate(sealed
        #: generation, sealed path, new generation, new path)`` when
        #: compaction rotates the active segment — called *before* the
        #: sealed files are deleted, so a feed can drain them first.
        #: Lock order is manager -> listener: the hooks run under the
        #: manager lock and must never call back into the manager.
        self.feed_listener = None
        os.makedirs(directory, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def _wal_path(self, generation):
        return os.path.join(self.directory,
                            "wal-{:08d}.log".format(generation))

    def _snap_path(self, generation):
        return os.path.join(self.directory,
                            "snapshot-{:08d}.snap".format(generation))

    # -- lifecycle -----------------------------------------------------------

    def load(self):
        """Read the directory's durable state (no writer is opened)."""
        state = load_durable_state(self.directory)
        self.generation = state.generation
        return state

    def start(self):
        """Open the active segment for appending (idempotent)."""
        with self._lock:
            if self._writer is None:
                self._writer = WalWriter(self._wal_path(self.generation),
                                         fsync=self.policy.fsync)

    def close(self):
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None

    # -- logging -------------------------------------------------------------

    def wal_position(self):
        """``(generation, segment path, synced byte offset)`` of the
        write-ahead log right now — the durable horizon a concurrent
        tail reader may safely read up to."""
        with self._lock:
            return self._position_locked()

    def _position_locked(self):
        synced = (self._writer.synced_size
                  if self._writer is not None else 0)
        return self.generation, self._wal_path(self.generation), synced

    def attach_feed(self, listener):
        """Register the replication listener and return its anchor
        position, atomically: no append or rotation can slip between
        the anchor read and the hook attachment, so from the returned
        position on, the listener sees *every* event — the property
        the feed's generation bookkeeping is built on."""
        with self._lock:
            self.feed_listener = listener
            return self._position_locked()

    def _append(self, record, sync=True):
        payload = encode_payload(record)
        with self._lock:
            if self._writer is None:
                raise DurabilityError(
                    "durability manager is not started (or already "
                    "closed)")
            self._writer.append(payload, sync=sync)
            if sync:
                train = self._train_pending + 1
                self._train_pending = 0
            else:
                train = 0
                self._train_pending += 1
            if self.feed_listener is not None:
                self.feed_listener.on_append()
        # metric updates happen outside the manager lock — each metric
        # has its own, and the append critical section is the group
        # commit's contention point
        self._m_records.inc()
        self._m_bytes.inc(len(payload))
        if sync:
            self._m_fsyncs.inc()
            self._m_train.observe(train)

    # -- group commit --------------------------------------------------------

    def _append_grouped(self, record):
        """Append ``record`` and ride the commit train.

        The append itself only buffers the frame (``sync=False``) under
        the manager lock; durability comes from one *leader* fsync that
        covers every record appended while the previous fsync was in
        flight. N concurrent flushes therefore pay ~1 fsync instead of
        N — the cross-client group commit — and no caller ever returns
        before its own record is behind the synced horizon (the
        replication feed and crash recovery read nothing past it).
        """
        payload = encode_payload(record)
        with self._obs.stage("wal-append"):
            with self._lock:
                if self._writer is None:
                    raise DurabilityError(
                        "durability manager is not started (or already "
                        "closed)")
                writer = self._writer
                end = writer.append(payload, sync=False)
                epoch = writer.rollback_epoch
                self._train_pending += 1
            # outside the manager lock: the append critical section is
            # the group commit's contention point
            self._m_records.inc()
            self._m_bytes.inc(len(payload))
        with self._obs.stage("fsync-wait"):
            while True:
                with self._commit_cv:
                    while True:
                        status = self._commit_status(writer, end, epoch)
                        if status is not None:
                            break
                        if not self._sync_leader:
                            self._sync_leader = True
                            status = "lead"
                            break
                        # the timeout is a safety net for horizons
                        # advanced outside the train (segment rotation
                        # seals and syncs the writer without notifying
                        # the cv)
                        self._commit_cv.wait(0.05)
                    if status == "durable":
                        return
                    if status == "lost":
                        raise DurabilityError(
                            "log record was destroyed by a failed-fsync "
                            "rollback before it reached disk")
                # leader: one fsync for every record appended so far
                try:
                    if self.group_window:
                        time.sleep(self.group_window)
                    with self._lock:
                        if self._writer is writer and not writer.closed:
                            train = self._train_pending
                            try:
                                writer.sync()
                            except DurabilityError:
                                # the epoch bump marks every destroyed
                                # record; each waiter (and this thread,
                                # via the re-check below) raises for its
                                # own
                                pass
                            else:
                                self._m_fsyncs.inc()
                                if train:
                                    self._m_train.observe(train)
                                self._train_pending = 0
                                if self.feed_listener is not None:
                                    self.feed_listener.on_append()
                finally:
                    with self._commit_cv:
                        self._sync_leader = False
                        self._commit_cv.notify_all()

    def _commit_status(self, writer, end, epoch):
        """``"durable"`` / ``"lost"`` / ``None`` (still in flight) for a
        record ending at ``end``, appended at rollback epoch ``epoch``."""
        if writer.rollback_epoch > epoch:
            # the first rollback after the append decides the record's
            # fate once and for all: behind the horizon then -> durable
            # (truncation never cuts below the synced horizon), past it
            # -> destroyed. The *current* horizon cannot be trusted in
            # this case — other records may have re-filled the destroyed
            # record's byte range and pushed it beyond ``end``.
            return ("durable" if writer.rollback_targets[epoch] >= end
                    else "lost")
        if writer.synced_size >= end:
            return "durable"
        if writer.closed or writer is not self._writer:
            # rotation sealed the segment: close() syncs every record,
            # and a failed seal would have bumped the epoch above
            return "durable"
        return None

    def log_open(self, document_payload_dict):
        self._append({"kind": "open", "doc": document_payload_dict})

    def log_open_many(self, document_payload_dicts):
        """Log a chunk of ``open`` records under **one** fsync.

        The bulk-load path: each payload is buffered unsynced and a
        single sync covers the whole chunk, so importing N documents
        pays ~1 fsync instead of N (the same economics as the batch
        commit train, but for residency). All-or-nothing durability is
        not promised — a crash mid-chunk recovers a prefix — which is
        fine because the caller installs residency only after this
        returns, and an import retry re-submits the chunk."""
        with self._lock:
            if self._writer is None:
                raise DurabilityError(
                    "durability manager is not started (or already "
                    "closed)")
            appended = 0
            for payload in document_payload_dicts:
                encoded = encode_payload({"kind": "open",
                                          "doc": payload})
                self._writer.append(encoded, sync=False)
                self._m_records.inc()
                self._m_bytes.inc(len(encoded))
                appended += 1
            self._writer.sync()
            self._m_fsyncs.inc()
            self._m_train.observe(self._train_pending + appended)
            self._train_pending = 0
            if self.feed_listener is not None:
                self.feed_listener.on_append()

    def log_batch(self, doc_id, version, clients, pul_xml):
        self._append_grouped({"kind": "batch", "doc_id": doc_id,
                              "version": version, "clients": clients,
                              "pul": pul_xml})
        self.batches_since_snapshot += 1

    def log_relabel(self, doc_id):
        self._append({"kind": "relabel", "doc_id": doc_id})

    def log_close(self, doc_id):
        self._append({"kind": "close", "doc_id": doc_id})

    def log_position(self, seq, stream=None):
        """A replica's replication cursor: every leader record below
        ``seq`` of stream ``stream`` is applied (and therefore in this
        log)."""
        record = {"kind": "repl-pos", "seq": seq}
        if stream is not None:
            record["stream"] = stream
        self._append(record)

    def snapshot_due(self):
        return (self.policy.mode == "snapshot"
                and self.batches_since_snapshot >= self.policy.snapshot_every)

    # -- compaction ----------------------------------------------------------

    def write_snapshot(self, document_payloads):
        """Snapshot ``document_payloads`` and truncate the log.

        The quiesced form — payloads are captured *before* the rotation
        (caller holds whatever locks make that sound) and the whole
        sequence runs back to back. The store's lock-free compaction
        uses the two halves directly: :meth:`begin_rotation`, then an
        unlocked capture, then :meth:`commit_snapshot`.
        """
        sealed = self.begin_rotation()
        return self.commit_snapshot(sealed, document_payloads)

    def begin_rotation(self):
        """Seal the active segment and open the next one; return the
        sealed generation.

        Every record appended before this call is in generations
        ``<= sealed``; every later append lands in ``sealed + 1``. No
        file is deleted — a crash between this call and
        :meth:`commit_snapshot` leaves a fully contiguous
        snapshot+segment chain, the rotation simply never happened as
        far as recovery is concerned. The feed listener is drained
        before the method returns so a lagging replication feed keeps
        the sealed tail.
        """
        with self._lock:
            sealed = self.generation
            if self._writer is not None:
                self._writer.close()   # syncs every buffered record
                self._writer = None
                self._m_fsyncs.inc()
                self._train_pending = 0
            self._m_rotations.inc()
            self.generation = sealed + 1
            self._writer = WalWriter(self._wal_path(self.generation),
                                     fsync=self.policy.fsync)
            self.batches_since_snapshot = 0
            if self.feed_listener is not None:
                # drained now, while every sealed file still exists
                self.feed_listener.on_rotate(
                    sealed, self._wal_path(sealed),
                    self.generation, self._wal_path(self.generation))
            return sealed

    def commit_snapshot(self, sealed, document_payloads):
        """Write ``snapshot-<sealed>.snap`` atomically and delete the
        files it supersedes.

        ``document_payloads`` must describe a state at or *past* the end
        of generation ``sealed`` (captured after :meth:`begin_rotation`
        returned): recovery loads the snapshot and replays generations
        ``> sealed``, absorbing any overlap idempotently. A state
        *behind* the seal would lose records — that ordering is the
        caller's contract.
        """
        with self._lock:
            payload = encode_payload({
                "kind": "snapshot", "generation": sealed,
                "docs": list(document_payloads)})
            write_file_atomically(self._snap_path(sealed), payload)
            wals, snaps = _scan_directory(self.directory)
            superseded = (
                [path for generation, path in wals.items()
                 if generation <= sealed]
                + [path for generation, path in snaps.items()
                   if generation < sealed])
            for path in superseded:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return sealed


# -- the stateless recovery oracle -------------------------------------------


def replay_oracle(directory):
    """Replay a durability directory the way :class:`StatelessBaseline`
    would process the batches: sequential deterministic reduction, the
    in-memory evaluator, producer identifiers preserved — none of the
    incremental machinery under test.

    Returns ``{doc_id: (serialized text, version)}`` for every document
    resident at the end of the log. Byte-equality of the recovered
    store against this oracle is the recovery correctness property: it
    holds because logged batches carry their labels, per-shard reduction
    merges to the sequential reduction, and the streaming and in-memory
    evaluators assign identical fresh identifiers.
    """
    state = load_durable_state(directory, repair=False)
    entries = {}
    versions = {}
    for payload in state.documents:
        restored = restore_document(payload)
        entries[restored.doc_id] = restored.document
        versions[restored.doc_id] = restored.counters["version"]
    for record in state.records:
        kind = record["kind"]
        if kind == "open":
            restored = restore_document(record["doc"])
            entries[restored.doc_id] = restored.document
            versions[restored.doc_id] = restored.counters["version"]
        elif kind == "close":
            entries.pop(record["doc_id"], None)
            versions.pop(record["doc_id"], None)
        elif kind == "relabel":
            continue  # labels never change document bytes
        elif kind == "repl-pos":
            continue  # a replica's replication cursor, not state
        elif kind == "batch":
            doc_id = record["doc_id"]
            document = entries.get(doc_id)
            if document is None:
                raise RecoveryError(
                    "batch record for unknown document {!r}".format(doc_id))
            if record["version"] <= versions[doc_id]:
                continue  # already covered (post-divergence duplicate)
            try:
                reduced = reduce_deterministic(
                    pul_from_xml(record["pul"]))
                reduced.check_compatible()
                working = document.copy()
                apply_pul(working, reduced, check=False, preserve_ids=True)
            except Exception:
                continue  # the store skipped this batch too
            entries[doc_id] = working
            versions[doc_id] = record["version"]
        else:
            raise RecoveryError(
                "unknown record kind {!r}".format(kind))
    return {doc_id: (serialize(document), versions[doc_id])
            for doc_id, document in entries.items()}
