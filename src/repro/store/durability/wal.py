"""CRC-framed record log — the framing layer of the durability subsystem.

A log file is a sequence of self-delimiting records::

    +----------+----------------+---------------+-----------------+
    | magic(4) | payload len(4) | crc32(4)      | payload (bytes) |
    +----------+----------------+---------------+-----------------+

All integers are big-endian; the CRC covers the payload only. The format
is torn-write tolerant by construction: a crash mid-append leaves a
truncated (or zero-filled) tail whose header or CRC cannot validate, and
:func:`scan_wal` recovers exactly the longest valid record prefix. A
corrupted record *before* the tail also stops the scan — every record
after it is unreachable (frame boundaries are lost) — which the scan
reports as a non-clean tail so callers can distinguish "torn final
record" from "log ends cleanly".

Writes are fsync-batched: :meth:`WalWriter.append` buffers records and
:meth:`WalWriter.sync` pushes them to disk in one ``fsync`` — the store
calls it once per flushed batch, not per client submission, which is
where the group-commit throughput comes from.
"""

from __future__ import annotations

import os
import struct
import zlib

from repro.errors import DurabilityError, WalPoisonedError

#: frame magic — also the format version; bump on incompatible changes
MAGIC = b"RWL1"

_HEADER = struct.Struct(">4sII")

#: sanity bound on a single payload (a coalesced batch or a snapshot)
MAX_PAYLOAD = 1 << 30


def encode_record(payload):
    """Frame ``payload`` (bytes) as one log record."""
    if len(payload) > MAX_PAYLOAD:
        raise DurabilityError(
            "record payload of {} bytes exceeds the {} byte frame bound"
            .format(len(payload), MAX_PAYLOAD))
    return _HEADER.pack(MAGIC, len(payload),
                        zlib.crc32(payload) & 0xFFFFFFFF) + payload


def scan_records(data):
    """Decode the longest valid record prefix of ``data``.

    Returns ``(payloads, valid_bytes, clean)``: the decoded payloads, how
    many leading bytes of ``data`` they occupy, and whether the scan
    consumed the input exactly (``clean=False`` means a torn or corrupt
    tail follows ``valid_bytes``).
    """
    payloads = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            return payloads, offset, False
        magic, length, crc = _HEADER.unpack_from(data, offset)
        if magic != MAGIC or length > MAX_PAYLOAD:
            return payloads, offset, False
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            return payloads, offset, False
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return payloads, offset, False
        payloads.append(payload)
        offset = end
    return payloads, offset, True


def scan_wal(path):
    """Decode a log file; missing files read as empty.

    Returns the ``(payloads, valid_bytes, clean)`` triple of
    :func:`scan_records`.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0, True
    return scan_records(data)


def truncate_torn_tail(path, valid_bytes):
    """Drop everything after the valid record prefix of ``path``."""
    with open(path, "r+b") as handle:
        handle.truncate(valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())


class WalTailReader:
    """Incremental reader over a (possibly still growing) log file.

    The reader remembers a byte position and, on every :meth:`read`,
    decodes the records that became *fully* valid since the previous
    call — so tailing a file chunk by chunk yields exactly the records
    one :func:`scan_records` pass over the final bytes would (the
    property the hypothesis suite proves). A torn or incomplete tail is
    indistinguishable from an append still in flight, so the reader
    never errors on it: the bytes stay buffered and are retried on the
    next call, once the writer has finished (or rolled back) the
    record.

    This is the feed side of WAL shipping: the replication source tails
    the active segment up to the writer's :attr:`~WalWriter.synced_size`
    (the durable horizon — unsynced bytes may yet be torn away by a
    failed append's rollback) and ships each record with its sequence
    position.
    """

    __slots__ = ("path", "position", "records_read")

    def __init__(self, path, offset=0):
        self.path = path
        #: byte offset of the next unread record (only ever advances
        #: past *complete, validated* records)
        self.position = offset
        #: records decoded over the reader's lifetime
        self.records_read = 0

    def read(self, limit=None, up_to=None):
        """Decode records that became valid since the last call.

        Returns a list of ``(offset, payload)`` pairs — ``offset`` is
        the record's byte position in the file (its stable address
        within the segment). ``limit`` bounds the record count;
        ``up_to`` bounds the bytes considered (pass the writer's
        ``synced_size`` to stay behind the durable horizon). A missing
        file reads as empty (the segment may not have been created
        yet).
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.position)
                if up_to is not None:
                    if up_to <= self.position:
                        return []
                    data = handle.read(up_to - self.position)
                else:
                    data = handle.read()
        except FileNotFoundError:
            return []
        records = []
        base = self.position
        offset = 0
        total = len(data)
        while offset < total:
            if limit is not None and len(records) >= limit:
                break
            if offset + _HEADER.size > total:
                break
            magic, length, crc = _HEADER.unpack_from(data, offset)
            if magic != MAGIC or length > MAX_PAYLOAD:
                # a torn record the writer may still roll back and
                # rewrite; never advance past it
                break
            end = offset + _HEADER.size + length
            if end > total:
                break
            payload = data[offset + _HEADER.size:end]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                break
            records.append((base + offset, payload))
            offset = end
        self.position = base + offset
        self.records_read += len(records)
        return records

    def __repr__(self):
        return "WalTailReader({!r}, position={}, records_read={})".format(
            self.path, self.position, self.records_read)


class WalWriter:
    """Append-only record writer with batched fsync.

    ``append(payload, sync=True)`` frames and writes one record;
    ``sync=False`` defers durability to the next :meth:`sync` call
    (group commit). The writer opens in append mode, so recovery can
    resume a truncated segment in place.
    """

    def __init__(self, path, fsync=True):
        self.path = path
        self.fsync = fsync
        existed = os.path.exists(path)
        # unbuffered on purpose: a userspace buffer could flush a
        # half-written record *after* a failed append rolled the file
        # back, re-tearing the segment behind the repair
        self._file = open(path, "ab", buffering=0)
        if fsync and not existed:
            # make the segment's directory entry durable now: fsyncing
            # record bytes into a file whose name never reached disk
            # leaves nothing to recover after power loss
            _fsync_directory(os.path.dirname(path) or ".")
        self._unsynced = 0
        self.appended = 0
        self._size = os.path.getsize(path)
        self._synced_size = self._size
        #: bumped whenever *complete* unsynced records are destroyed by
        #: a failed-fsync rollback; :attr:`rollback_targets` records the
        #: synced horizon each rollback truncated to. A group-commit
        #: waiter that appended at epoch ``e`` consults the target of
        #: bump ``e`` (the first one after its append): a record behind
        #: that horizon was durable then and stays durable forever (the
        #: horizon is monotone and truncation never cuts below it); one
        #: past it was destroyed — even if other records later re-fill
        #: its byte range and push the horizon past its old end offset
        self.rollback_epoch = 0
        self.rollback_targets = []
        self._broken = False

    def append(self, payload, sync=True):
        """Write one record; returns its end offset in the segment."""
        if self._file is None:
            raise WalPoisonedError(
                "append on a closed log writer ({})".format(self.path))
        if self._broken:
            raise WalPoisonedError(
                "log writer for {} is poisoned: an earlier I/O failure "
                "left a torn record that could not be rolled back, and "
                "a record framed after it would be unreachable to "
                "recovery".format(self.path))
        record = encode_record(payload)
        try:
            view = memoryview(record)
            while view:
                view = view[self._file.write(view):]
        except OSError as exc:
            # a torn append is cut back to the end of the last
            # *complete* record — which, under group commit, may lie
            # past the synced horizon: earlier appended-but-unsynced
            # records belong to other waiters and must survive
            self._repair(self._size, exc, "log append failed")
        self._size += len(record)
        self._unsynced += 1
        self.appended += 1
        if sync:
            self.sync()
        return self._size

    def sync(self):
        """``fsync`` the file (one syscall for every append since the
        previous sync)."""
        if self._file is None or self._broken or not self._unsynced:
            return
        target = self._size
        try:
            if self.fsync:
                os.fsync(self._file.fileno())
        except OSError as exc:
            # complete-but-unsynced records are destroyed with the torn
            # state: no reader was ever allowed past the synced horizon,
            # and waiters for those records observe the epoch bump
            self.rollback_targets.append(self._synced_size)
            self.rollback_epoch += 1
            self._unsynced = 0
            self._repair(self._synced_size, exc, "log fsync failed")
        self._unsynced = 0
        self._synced_size = target

    @property
    def synced_size(self):
        """Byte offset of the last *synced* record's end.

        Everything below this offset is durable and will never be
        rolled back — the safe horizon for a concurrent
        :class:`WalTailReader` (bytes past it may still be torn away by
        a failed append's repair).
        """
        return self._synced_size

    @property
    def size(self):
        """Byte offset of the last *complete* record's end (the tail a
        failed append rolls back to)."""
        return self._size

    @property
    def closed(self):
        return self._file is None

    def _repair(self, target, exc, what):
        """Cut the segment back to ``target``, dropping torn bytes.

        A failed write truncates to the last complete record; a failed
        fsync truncates to the last synced record (the caller bumps the
        epoch for the complete records that cut destroys). Without the
        repair, the next successful append would frame a record
        *behind* the torn bytes and recovery's prefix scan would
        silently truncate it away. When the repair itself fails the
        writer poisons itself instead of ever appending again.
        """
        try:
            self._file.truncate(target)
            if self.fsync:
                os.fsync(self._file.fileno())
        except OSError as repair_error:
            self._broken = True
            raise WalPoisonedError(
                "{} for {} and the segment could not be rolled back to "
                "a record boundary: {} (writer poisoned)".format(
                    what, self.path, repair_error)) from exc
        self._size = target
        raise DurabilityError(
            "{} for {}: {} (segment rolled back to offset {})".format(
                what, self.path, exc, target)) from exc

    def close(self):
        if self._file is None:
            return
        self.sync()
        self._file.close()
        self._file = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        return "WalWriter({!r}, appended={})".format(self.path,
                                                     self.appended)


def write_file_atomically(path, payload):
    """Write ``payload`` as a single-record file, atomically.

    The record is written to ``path + '.tmp'``, fsynced, and renamed over
    ``path``; readers therefore observe either the previous file or the
    complete new one, never a torn snapshot.
    """
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(encode_record(payload))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _fsync_directory(os.path.dirname(path) or ".")


def read_single_record(path):
    """Read a :func:`write_file_atomically` file; ``None`` when the file
    is missing, empty, or fails validation."""
    payloads, __, clean = scan_wal(path)
    if not clean or len(payloads) != 1:
        return None
    return payloads[0]


def _fsync_directory(path):
    """Make a rename durable (no-op on platforms without dir fds)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
