"""Durability for the document store: WAL, snapshots, recovery.

The paper's PULs are serializable, reducible update units, which makes
them the natural write-ahead-log granule: replaying a stream of reduced
batch PULs through the incremental-relabel machinery reconstructs the
resident state deterministically. The package splits into

* :mod:`.wal` — CRC-framed, fsync-batched record framing (torn-tail
  tolerant);
* :mod:`.snapshot` — exact serialization of resident document state
  (tree with identifiers, allocator position, labels, watermark);
* :mod:`.recovery` — policies, the generation-numbered directory with
  snapshot compaction, state loading, and the stateless replay oracle
  recovery is verified against.
"""

from repro.store.durability.recovery import (
    DEFAULT_SNAPSHOT_EVERY,
    DurabilityManager,
    DurabilityPolicy,
    LoadedState,
    RecoveryReport,
    load_durable_state,
    replay_oracle,
)
from repro.store.durability.snapshot import (
    RestoredDocument,
    document_payload,
    restore_document,
)
from repro.store.durability.wal import (
    WalTailReader,
    WalWriter,
    encode_record,
    read_single_record,
    scan_records,
    scan_wal,
    truncate_torn_tail,
    write_file_atomically,
)

__all__ = [
    "DEFAULT_SNAPSHOT_EVERY",
    "DurabilityManager",
    "DurabilityPolicy",
    "LoadedState",
    "RecoveryReport",
    "RestoredDocument",
    "WalTailReader",
    "WalWriter",
    "document_payload",
    "encode_record",
    "load_durable_state",
    "read_single_record",
    "replay_oracle",
    "restore_document",
    "scan_records",
    "scan_wal",
    "truncate_torn_tail",
    "write_file_atomically",
]
