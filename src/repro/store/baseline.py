"""The stateless per-batch baseline: parse → reduce → apply → full relabel.

:class:`StatelessBaseline` exposes the same ``open`` / ``submit`` /
``flush`` / ``text`` surface as :class:`~repro.store.store.DocumentStore`
but processes every batch the way a stateless service would: the whole
document is (re)labeled from scratch, the batch is reduced sequentially
(no sharding), and the PUL is made effective with the in-memory
evaluator. It is both

* the **differential oracle** — the store's resident-incremental output
  must be byte-identical to this path on every batch (the property the
  fuzz suite checks), and
* the **benchmark baseline** — ``benchmarks/bench_store_throughput.py``
  compares resident-incremental flushes against this per-batch
  parse + full-relabel cost.

One deliberate simulation: a genuinely stateless service would re-parse
the document text per batch (with identifiers stored inline, Section 6).
Our parser derives identifiers from document order instead of reading
them back, so re-parsing would renumber nodes and break the id-addressed
workload. The baseline therefore keeps the document resident for
*semantics* but still pays the parse bill per batch when
``measure_parse=True`` — parsing its own serialized text and discarding
the result — which models the stateless cost honestly without changing
the observable behaviour.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.labeling.scheme import ContainmentLabeling
from repro.pul.semantics import apply_pul
from repro.reduction import reduce_deterministic
from repro.store.store import coalesce_batch
from repro.xdm.document import Document
from repro.xdm.parser import parse_document
from repro.xdm.serializer import serialize


class _BaselineEntry:
    __slots__ = ("doc_id", "document", "labeling", "version", "pending")

    def __init__(self, doc_id, document, labeling):
        self.doc_id = doc_id
        self.document = document
        self.labeling = labeling
        self.version = 0
        self.pending = []


class StatelessBaseline:
    """Sequential parse → reduce → apply → full-relabel per batch."""

    def __init__(self, on_conflict="error", policies=None,
                 measure_parse=True):
        self.on_conflict = on_conflict
        self.policies = dict(policies) if policies else {}
        self.measure_parse = measure_parse
        self._entries = {}
        self._arrivals = 0

    def open(self, doc_id, source):
        if not isinstance(source, Document):
            source = parse_document(source)
        if doc_id in self._entries:
            raise ReproError(
                "document {!r} is already resident".format(doc_id))
        entry = _BaselineEntry(doc_id, source,
                               ContainmentLabeling().build(source))
        self._entries[doc_id] = entry
        return entry

    def _require(self, doc_id):
        entry = self._entries.get(doc_id)
        if entry is None:
            raise ReproError(
                "no document {!r} (open it first)".format(doc_id))
        return entry

    def submit(self, doc_id, pul, client=None):
        entry = self._require(doc_id)
        if client is None:
            client = pul.origin
        entry.pending.append((self._arrivals, client, pul))
        self._arrivals += 1
        return len(entry.pending)

    def flush(self, doc_id):
        """Process everything pending as one stateless batch; returns the
        number of applied operations, or ``None`` if nothing was pending.

        Mirrors the store's error contract: a failed batch restores the
        pending queue, so store and oracle stay comparable even in
        sessions that continue past a rejected flush.
        """
        entry = self._require(doc_id)
        if not entry.pending:
            return None
        pending, entry.pending = entry.pending, []
        try:
            if self.measure_parse:
                # the stateless bill: re-parse the document from its text
                parse_document(serialize(entry.document))
            # full relabel: a stateless service derives labels per request
            entry.labeling = ContainmentLabeling().build(entry.document)
            batch = coalesce_batch(pending, entry.labeling,
                                   on_conflict=self.on_conflict,
                                   policies=self.policies)
            reduced = reduce_deterministic(batch)
            reduced.check_compatible()
            # apply on a copy: apply_pul mutates in place *before* its
            # XQUF dynamic checks, and a failed batch must publish
            # nothing (the store's streaming path is atomic by
            # construction)
            working = entry.document.copy()
            apply_pul(working, reduced, check=False, preserve_ids=True)
        except Exception:
            entry.pending = pending + entry.pending
            raise
        entry.document = working
        entry.version += 1
        return len(reduced)

    def discard_pending(self, doc_id):
        """Withdraw everything queued (mirrors the store's API)."""
        entry = self._require(doc_id)
        dropped = len(entry.pending)
        entry.pending = []
        return dropped

    def version(self, doc_id):
        return self._require(doc_id).version

    def document(self, doc_id):
        return self._require(doc_id).document

    def text(self, doc_id):
        return serialize(self._require(doc_id).document)
