"""Immutable published document versions — the store's MVCC core.

The resident store serves reads and writes on the same documents at
millions-of-users volume; serializing every read behind the writer's
flush lock makes one slow XQuery stall the whole write path (and one
slow batch stall every reader). Multi-version concurrency control
decouples them:

* every resident document has exactly one *published*
  :class:`DocumentVersion` — an immutable ``(document, labeling)`` pair
  stamped with the version counter it represents;
* readers *pin* the published version (a refcount under the entry's
  publish lock), walk it freely with no further locking, and unpin;
* the single writer (serialized by the flush lock as before) builds
  version N+1 on a *private working copy* and publishes it with one
  atomic reference swap — readers mid-walk keep the version they
  pinned, new readers see N+1.

The working copy is not a per-flush deep copy: that would turn the
O(touched) in-place apply back into O(document) per batch. Instead the
version retired by a publish becomes the *spare*: it lags the new
published version by exactly one batch, and the entry remembers that
batch's reduced PUL as the spare's *catch-up*. The next flush steals
the spare — provided no reader still pins it — replays the batch's
structural effect (:func:`repro.apply.inplace.replay_batch`,
deterministic and therefore byte- and id-identical to the published
tree), copies the published version's immutable id-keyed label map
wholesale, and mutates on. A spare still pinned by a slow reader is
abandoned to its readers and the writer falls back to one deep copy;
the common case pays one extra structural apply plus a dict copy per
flush, never O(document) tree copying or label re-derivation. Entries are even *born* with a
seeded spare — a copy made at open/restore, where the store is already
doing O(document) work — so no flush in a document's life, not even
the first, pays an O(document) copy.

Durability-facing duck typing: a :class:`DocumentVersion` carries the
same ``doc_id`` / ``document`` / ``labeling`` / counter attribute names
as a resident entry, so
:func:`repro.store.durability.snapshot.document_payload` serializes a
pinned version directly — snapshot compaction and snapshot transfer
capture published versions without quiescing writers.
"""

from __future__ import annotations

from repro.apply.inplace import replay_batch
from repro.errors import ReproError


class DocumentVersion:
    """One immutable published version of a resident document.

    ``pins`` counts readers currently walking this version; it is
    guarded by the owning entry's publish lock, not by this object. A
    retired version with live pins is never recycled into a working
    copy — its tree stays frozen until the last reader unpins and the
    garbage collector takes it.
    """

    __slots__ = ("doc_id", "version", "document", "labeling", "batches",
                 "incremental_relabels", "full_relabels", "pins",
                 "index")

    def __init__(self, doc_id, version, document, labeling, batches=0,
                 incremental_relabels=0, full_relabels=0, index=None):
        self.doc_id = doc_id
        self.version = version
        self.document = document
        self.labeling = labeling
        self.batches = batches
        self.incremental_relabels = incremental_relabels
        self.full_relabels = full_relabels
        self.pins = 0
        #: the version's secondary index (:mod:`repro.index`), published
        #: with the pair so a pinned reader queries exactly its version;
        #: ``None`` only on working copies, which are never queried
        self.index = index

    def __repr__(self):
        return "DocumentVersion(doc={!r}, v{}, pins={})".format(
            self.doc_id, self.version, self.pins)


def replay_catchup(spare, published, catchup):
    """Catch the retired ``spare`` up to ``published``; returns the
    caught-up ``(document, labeling)`` working pair.

    Only the *tree* is replayed: ``catchup`` is what the publish that
    retired the spare recorded — ``("batch", reduced_pul)`` replays the
    flushed batch's structural effect
    (:func:`repro.apply.inplace.replay_batch`, deterministic and
    therefore byte- and id-identical to the published tree),
    ``("relabel",)`` and ``None`` change no structure. The labeling is
    never re-derived: labels are immutable and keyed by node id, and
    the caught-up tree carries exactly the published tree's ids, so the
    published label map is *copied* wholesale — one dict copy instead
    of per-site code generation, which keeps the catch-up strictly
    cheaper than the live apply it mirrors.
    """
    if catchup is not None:
        kind = catchup[0]
        if kind == "batch":
            replay_batch(spare.document, spare.labeling, catchup[1])
        elif kind != "relabel":
            raise ReproError(
                "unknown version catch-up kind {!r}".format(kind))
    return spare.document, published.labeling.copy()
