"""Store throughput measurement: resident-incremental vs stateless.

One session = one concurrent-client workload
(:func:`~repro.workloads.clientgen.generate_client_batches`) flushed
round by round through

* the resident :class:`~repro.store.store.DocumentStore` (documents and
  labelings stay warm; labels maintained incrementally, full relabel only
  on code-headroom exhaustion), and
* the :class:`~repro.store.baseline.StatelessBaseline` (per batch:
  re-parse + full relabel + sequential reduce + apply — the cost model of
  a service that keeps nothing resident).

Outputs are byte-compared after every round, so the benchmark doubles as
an end-to-end differential check; the returned report carries per-mode
wall times, batch counts and relabel telemetry.
"""

from __future__ import annotations

import time

from repro.store.baseline import StatelessBaseline
from repro.store.store import DEFAULT_MAX_CODE_LENGTH, DocumentStore
from repro.workloads.clientgen import generate_client_batches
from repro.workloads.xmark import generate_xmark
from repro.xdm.serializer import serialize


class BenchReport:
    """Timings and telemetry of one resident-vs-stateless comparison."""

    __slots__ = ("rounds", "clients", "ops_per_round", "nodes",
                 "resident_time", "stateless_time", "incremental_relabels",
                 "full_relabels", "max_code_length", "verified")

    def __init__(self, **fields):
        for slot in self.__slots__:
            setattr(self, slot, fields[slot])

    @property
    def speedup(self):
        if not self.resident_time:
            return float("inf")
        return self.stateless_time / self.resident_time

    def lines(self):
        yield ("workload: {} rounds x {} ops from {} clients on {} nodes"
               .format(self.rounds, self.ops_per_round, self.clients,
                       self.nodes))
        yield ("resident-incremental: {:8.4f}s  ({} incremental / {} full "
               "relabels, max code {} digits)".format(
                   self.resident_time, self.incremental_relabels,
                   self.full_relabels, self.max_code_length))
        yield "parse+full-relabel:   {:8.4f}s".format(self.stateless_time)
        yield ("speedup: {:.2f}x  ({})".format(
            self.speedup,
            "outputs byte-identical every round" if self.verified
            else "VERIFICATION FAILED"))


def run_store_benchmark(scale=0.05, clients=4, rounds=8, ops_per_round=50,
                        workers=2, backend="serial",
                        max_code_length=DEFAULT_MAX_CODE_LENGTH, seed=11,
                        min_depth=0):
    """Run one resident-vs-stateless session; returns a
    :class:`BenchReport`. Raises if any round's outputs diverge."""
    document = generate_xmark(scale=scale, seed=7)
    text = serialize(document)
    nodes = sum(1 for __ in document.nodes())
    batches, expected = generate_client_batches(
        document, clients=clients, rounds=rounds,
        ops_per_round=ops_per_round, seed=seed, min_depth=min_depth)

    store = DocumentStore(workers=workers, backend=backend,
                          max_code_length=max_code_length)
    baseline = StatelessBaseline(measure_parse=True)
    store.open("bench", text)
    baseline.open("bench", text)
    resident_time = 0.0
    stateless_time = 0.0
    verified = True
    try:
        for submissions in batches:
            for client, pul in submissions:
                store.submit("bench", pul.copy(), client=client)
                baseline.submit("bench", pul.copy(), client=client)
            start = time.perf_counter()
            store.flush("bench")
            resident_time += time.perf_counter() - start
            start = time.perf_counter()
            baseline.flush("bench")
            stateless_time += time.perf_counter() - start
            if store.text("bench") != baseline.text("bench"):
                verified = False
                break
        if verified and store.text("bench") != serialize(expected):
            verified = False
        stats = store.stats("bench")
    finally:
        store.close()
    if not verified:
        raise AssertionError(
            "resident and stateless outputs diverged — the incremental "
            "relabeling machinery is broken")
    return BenchReport(
        rounds=rounds, clients=clients, ops_per_round=ops_per_round,
        nodes=nodes, resident_time=resident_time,
        stateless_time=stateless_time,
        incremental_relabels=stats["incremental_relabels"],
        full_relabels=stats["full_relabels"],
        max_code_length=stats["max_code_length"], verified=verified)


def run_overhead_benchmark(scale=0.05, clients=4, rounds=8,
                           ops_per_round=50, workers=2, backend="serial",
                           seed=11, repeats=3):
    """Time the same resident workload with instrumentation on and with
    ``metrics=False``; returns ``(instrumented_s, plain_s)``, each the
    best of ``repeats`` sessions.

    The two modes alternate inside every repeat (on/off, then off/on)
    so slow drift on a shared runner cancels instead of biasing one
    side; best-of keeps scheduler noise out of the ratio the CI gate
    floors."""
    document = generate_xmark(scale=scale, seed=7)
    text = serialize(document)
    batches, __ = generate_client_batches(
        document, clients=clients, rounds=rounds,
        ops_per_round=ops_per_round, seed=seed)

    def session(metrics):
        store = DocumentStore(workers=workers, backend=backend,
                              metrics=metrics)
        store.open("bench", text)
        try:
            start = time.perf_counter()
            for submissions in batches:
                for client, pul in submissions:
                    store.submit("bench", pul.copy(), client=client)
                store.flush("bench")
            return time.perf_counter() - start
        finally:
            store.close()

    best = {True: None, False: None}
    for repeat in range(max(1, repeats)):
        order = (True, False) if repeat % 2 == 0 else (False, True)
        for metrics in order:
            elapsed = session(metrics)
            if best[metrics] is None or elapsed < best[metrics]:
                best[metrics] = elapsed
    return best[True], best[False]
