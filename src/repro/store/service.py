"""A line-oriented front end for the document store.

``repro store serve`` speaks a tiny text protocol on stdin/stdout so the
store can be driven by scripts, tests and interactive sessions without a
network stack (the prototype boundary the paper draws in Section 6 —
transport is pluggable, the store is the contract):

::

    open <doc-id> <xml-file>          make a document resident
    submit <doc-id> <pul-file> [client]   queue a PUL (exchange format)
    flush <doc-id>                    coalesce + execute pending PULs
    flush-all                         flush every resident document
    discard <doc-id>                  withdraw pending submissions
                                      (e.g. after a rejected flush)
    text <doc-id> [out-file]          serialized current document
    stats [doc-id]                    per-document counters
    docs                              list resident document ids
    snapshot                          force a durability snapshot
    quit                              shut the store down and exit

Every request yields exactly one response line starting with ``ok`` or
``error``, so callers can pipeline commands.

Shutdown is *drain-first*: when the input stream ends (EOF) or the
process receives ``SIGTERM``, every queued-but-unflushed submission is
flushed before the store closes — with a durable store the drained
batches reach the write-ahead log, so a supervisor stopping the service
never loses acknowledged-but-queued work. An explicit ``quit`` is the
deliberate discard path and keeps its drop-pending semantics.
"""

from __future__ import annotations

import signal
import threading

from repro.errors import ReproError
from repro.pul.serialize import pul_from_xml
from repro.store.store import DocumentStore


class _Shutdown(Exception):
    """Raised inside the serve loop by the SIGTERM handler."""


class StoreService:
    """Stateful command interpreter over one :class:`DocumentStore`."""

    def __init__(self, store=None):
        self.store = store or DocumentStore()
        self.closed = False

    # -- command handlers ----------------------------------------------------

    def _cmd_open(self, doc_id, path):
        with open(path, "r", encoding="utf-8") as handle:
            entry = self.store.open(doc_id, handle.read())
        return "ok opened {} nodes={} version={}".format(
            doc_id, len(entry.document), entry.version)

    def _cmd_submit(self, doc_id, path, client=None):
        with open(path, "r", encoding="utf-8") as handle:
            pul = pul_from_xml(handle.read())
        depth = self.store.submit(doc_id, pul, client=client)
        return "ok queued {} ops={} depth={}".format(
            doc_id, len(pul), depth)

    def _cmd_flush(self, doc_id):
        result = self.store.flush(doc_id)
        if result is None:
            return "ok flushed {} nothing-pending".format(doc_id)
        return ("ok flushed {} version={} clients={} ops={}->{} "
                "relabel={}".format(
                    result.doc_id, result.version, result.clients,
                    result.submitted_ops, result.reduced_ops,
                    result.relabel))

    def _cmd_flush_all(self):
        results = self.store.flush_all()
        return "ok flushed-all batches={} ops={}".format(
            len(results), sum(r.reduced_ops for r in results))

    def _cmd_text(self, doc_id, path=None):
        text = self.store.text(doc_id)
        if path is None:
            # the protocol promises one response line per request, but
            # text nodes may contain newlines; emit them as character
            # references (unambiguous: a literal "&#10;" in a value is
            # serialized as "&amp;#10;"), so the inline form parses back
            # to the same document. File output stays verbatim.
            inline = text.replace("\r", "&#13;").replace("\n", "&#10;")
            return "ok text {} {}".format(doc_id, inline)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return "ok wrote {} bytes={}".format(
            path, len(text.encode("utf-8")))

    def _cmd_stats(self, doc_id=None):
        if doc_id is not None:
            stats = [self.store.stats(doc_id)]
        else:
            stats = self.store.stats()
        rendered = " ".join(
            "{doc_id}:v{version}/nodes={nodes}/pending={pending}"
            "/batches={batches}/inc={incremental_relabels}"
            "/full={full_relabels}/maxcode={max_code_length}".format(**s)
            for s in stats)
        return "ok stats {}".format(rendered or "-")

    def _cmd_discard(self, doc_id):
        dropped = self.store.discard_pending(doc_id)
        return "ok discarded {} submissions={}".format(doc_id, dropped)

    def _cmd_docs(self):
        return "ok docs {}".format(
            " ".join(self.store.doc_ids()) or "-")

    def _cmd_snapshot(self):
        if not self.store.durability_policy.durable:
            return "error store is not durable (no snapshot written)"
        generation = self.store.snapshot()
        if generation is None:
            # snapshot() also returns None when it lost the
            # non-blocking race against an in-flight compaction — a
            # transient condition, not a configuration problem
            return ("error snapshot skipped: another compaction is in "
                    "flight (retry)")
        return "ok snapshot generation={}".format(generation)

    def _cmd_quit(self):
        self.store.close()
        self.closed = True
        return "ok bye"

    _COMMANDS = {
        "open": (_cmd_open, 2, 2),
        "submit": (_cmd_submit, 2, 3),
        "flush": (_cmd_flush, 1, 1),
        "flush-all": (_cmd_flush_all, 0, 0),
        "discard": (_cmd_discard, 1, 1),
        "text": (_cmd_text, 1, 2),
        "stats": (_cmd_stats, 0, 1),
        "docs": (_cmd_docs, 0, 0),
        "snapshot": (_cmd_snapshot, 0, 0),
        "quit": (_cmd_quit, 0, 0),
    }

    # -- dispatch ------------------------------------------------------------

    def handle_line(self, line):
        """Execute one command line; returns the one-line response, or
        ``None`` for blank/comment lines."""
        words = line.strip().split()
        if not words or words[0].startswith("#"):
            return None
        name, args = words[0], words[1:]
        spec = self._COMMANDS.get(name)
        if spec is None:
            return "error unknown command {!r}".format(name)
        handler, least, most = spec
        if not least <= len(args) <= most:
            return "error {} takes {}..{} arguments, got {}".format(
                name, least, most, len(args))
        try:
            return handler(self, *args)
        except (ReproError, OSError) as error:
            return "error {}".format(error)

    def drain(self):
        """Flush every queued submission before shutdown.

        Returns the number of drained batches. A failing document keeps
        its queue (per :meth:`DocumentStore.flush_all`) — the error is
        re-raised after every other document has been flushed.
        """
        return len(self.store.flush_all())

    def serve(self, in_stream, out_stream):
        """Drive the service from a line stream until ``quit``, EOF or
        SIGTERM; EOF and SIGTERM drain pending submissions first.

        The SIGTERM handler only *raises* while the loop is idle
        (blocked reading a line); a signal landing mid-command sets a
        flag and the loop exits at the next command boundary — so a
        flush (and its error-path cleanup and WAL records) is never
        torn in half by the shutdown path that is about to drain.
        """
        previous_handler = None
        stop = {"requested": False, "in_command": False}
        handles_sigterm = threading.current_thread() is \
            threading.main_thread()
        if handles_sigterm:
            def _on_sigterm(signum, frame):
                stop["requested"] = True
                if not stop["in_command"]:
                    raise _Shutdown()
            try:
                previous_handler = signal.signal(signal.SIGTERM,
                                                 _on_sigterm)
            except (ValueError, OSError):
                handles_sigterm = False
        try:
            for line in in_stream:
                stop["in_command"] = True
                try:
                    response = self.handle_line(line)
                finally:
                    stop["in_command"] = False
                if response is not None:
                    out_stream.write(response + "\n")
                    out_stream.flush()
                if self.closed or stop["requested"]:
                    break
        except _Shutdown:
            pass
        finally:
            if handles_sigterm:
                # a None previous handler means it was installed
                # outside Python and cannot be re-installed from here;
                # fall back to the default disposition rather than
                # leaking our _Shutdown-raiser into the host process
                signal.signal(signal.SIGTERM,
                              previous_handler if previous_handler
                              is not None else signal.SIG_DFL)
            if not self.closed:
                try:
                    try:
                        drained = self.drain()
                    except ReproError as error:
                        self._report(out_stream,
                                     "error drain-failed {}".format(error))
                    else:
                        if drained:
                            self._report(
                                out_stream,
                                "ok drained batches={}".format(drained))
                finally:
                    self.store.close()
                    self.closed = True
        return 0

    @staticmethod
    def _report(out_stream, line):
        """Best-effort shutdown report (the peer may be gone already)."""
        try:
            out_stream.write(line + "\n")
            out_stream.flush()
        except (OSError, ValueError):
            pass
