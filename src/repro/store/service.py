"""A line-oriented front end for the document store.

``repro store serve`` (without ``--listen``) speaks a tiny text
protocol on stdin/stdout so the store can be driven by scripts, tests
and interactive sessions without a network stack. This is the
**compatibility transport**: since PR 4 the real serving surface is the
versioned network protocol of :mod:`repro.api` (``--listen``), and this
service is a thin adapter that parses lines, routes every command
through the same :class:`~repro.api.dispatch.StoreDispatcher` the
network server uses, and formats the structured results as text — the
two transports cannot drift apart because neither owns any command
semantics (the prototype boundary the paper draws in Section 6 —
transport is pluggable, the store is the contract):

::

    open <doc-id> <xml-file>          make a document resident
    submit <doc-id> <pul-file> [client]   queue a PUL (exchange format)
    submit-xquery <doc-id> <query-file> [client]
                                      compile an XQuery Update
                                      expression server-side and queue
                                      the resulting PUL
    flush <doc-id>                    coalesce + execute pending PULs
    flush-all                         flush every resident document
    discard <doc-id>                  withdraw pending submissions
                                      (e.g. after a rejected flush)
    text <doc-id> [out-file]          serialized current document
    stats [--json] [doc-id]           per-document counters
    metrics [--json]                  observability snapshot (counter/
                                      gauge/histogram series + uptime;
                                      the summary line without --json)
    docs [--json]                     list resident document ids
    snapshot                          force a durability snapshot
    quit                              shut the store down and exit

Every request yields exactly one response line starting with ``ok`` or
``error``, so callers can pipeline commands. ``stats --json`` and
``docs --json`` answer with the same JSON object the network protocol
returns (one serializer, two transports), rendered on one line after
the ``ok stats-json`` / ``ok docs-json`` prefix. An error raised by the
library is reported as ``error <code> <message>`` where ``<code>`` is
the :class:`~repro.errors.ReproError` subclass's stable code (e.g. a
flush against a poisoned write-ahead log answers ``error wal-poisoned
...`` instead of surfacing a traceback), so scripted callers can grep
for specific failure modes.

Shutdown is *drain-first*: when the input stream ends (EOF) or the
process receives ``SIGTERM``, every queued-but-unflushed submission is
flushed before the store closes — with a durable store the drained
batches reach the write-ahead log, so a supervisor stopping the service
never loses acknowledged-but-queued work. An explicit ``quit`` is the
deliberate discard path and keeps its drop-pending semantics.
"""

from __future__ import annotations

import json
import signal
import threading

from repro.api.dispatch import StoreDispatcher
from repro.errors import DurabilityError, ReproError


class _Shutdown(Exception):
    """Raised inside the serve loop by the SIGTERM handler."""


class StoreService:
    """Stateful line-protocol adapter over one
    :class:`~repro.api.dispatch.StoreDispatcher` (and through it, one
    :class:`~repro.store.store.DocumentStore`)."""

    def __init__(self, store=None):
        self.dispatch = StoreDispatcher(store)
        self.store = self.dispatch.store
        self.closed = False

    # -- command handlers ----------------------------------------------------

    def _cmd_open(self, doc_id, path):
        with open(path, "r", encoding="utf-8") as handle:
            result = self.dispatch.open(doc_id, handle.read())
        return "ok opened {doc_id} nodes={nodes} version={version}" \
            .format(**result)

    def _cmd_submit(self, doc_id, path, client=None):
        with open(path, "r", encoding="utf-8") as handle:
            result = self.dispatch.submit(doc_id, handle.read(),
                                          client=client)
        return "ok queued {doc_id} ops={ops} depth={depth}".format(
            **result)

    def _cmd_submit_xquery(self, doc_id, path, client=None):
        with open(path, "r", encoding="utf-8") as handle:
            result = self.dispatch.submit_xquery(doc_id, handle.read(),
                                                 client=client)
        return "ok queued {doc_id} ops={ops} depth={depth}".format(
            **result)

    def _cmd_flush(self, doc_id):
        result = self.dispatch.flush(doc_id)
        if not result["flushed"]:
            return "ok flushed {} nothing-pending".format(doc_id)
        return ("ok flushed {doc_id} version={version} "
                "clients={clients} ops={submitted_ops}->{reduced_ops} "
                "relabel={relabel}".format(**result))

    def _cmd_flush_all(self):
        result = self.dispatch.flush_all()
        return "ok flushed-all batches={batches} ops={ops}".format(
            **result)

    def _cmd_text(self, doc_id, path=None):
        text = self.dispatch.text(doc_id)["text"]
        if path is None:
            # the protocol promises one response line per request, but
            # text nodes may contain newlines; emit them as character
            # references (unambiguous: a literal "&#10;" in a value is
            # serialized as "&amp;#10;"), so the inline form parses back
            # to the same document. File output stays verbatim.
            inline = text.replace("\r", "&#13;").replace("\n", "&#10;")
            return "ok text {} {}".format(doc_id, inline)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return "ok wrote {} bytes={}".format(
            path, len(text.encode("utf-8")))

    def _cmd_stats(self, doc_id=None, json_form=False):
        result = self.dispatch.stats(doc_id)
        if json_form:
            return "ok stats-json {}".format(_render_json(result))
        rendered = " ".join(
            "{doc_id}:v{version}/nodes={nodes}/pending={pending}"
            "/batches={batches}/inc={incremental_relabels}"
            "/full={full_relabels}/maxcode={max_code_length}".format(**s)
            for s in result["stats"])
        return "ok stats {}".format(rendered or "-")

    def _cmd_metrics(self, json_form=False):
        result = self.dispatch.metrics()
        if json_form:
            return "ok metrics-json {}".format(_render_json(result))
        # the full series set is a JSON payload; the plain form is a
        # one-line health summary (the protocol promises one line)
        return ("ok metrics enabled={} uptime={}s counters={} "
                "gauges={} histograms={}".format(
                    str(bool(result.get("metrics_enabled"))).lower(),
                    result.get("uptime_seconds"),
                    len(result.get("counters", {})),
                    len(result.get("gauges", {})),
                    len(result.get("histograms", {}))))

    def _cmd_discard(self, doc_id):
        result = self.dispatch.discard(doc_id)
        return "ok discarded {doc_id} submissions={discarded}".format(
            **result)

    def _cmd_docs(self, json_form=False):
        result = self.dispatch.docs()
        if json_form:
            return "ok docs-json {}".format(_render_json(result))
        return "ok docs {}".format(" ".join(result["docs"]) or "-")

    def _cmd_snapshot(self):
        try:
            result = self.dispatch.snapshot()
        except DurabilityError as error:
            # legacy phrasing predating the error codes; kept verbatim
            # for scripted callers of the compatibility transport
            if not self.store.durability_policy.durable:
                return "error store is not durable (no snapshot written)"
            return "error {}".format(error)
        return "ok snapshot generation={generation}".format(**result)

    def _cmd_quit(self):
        self.store.close()
        self.closed = True
        return "ok bye"

    #: ``command -> (handler, min args, max args, takes --json)``
    _COMMANDS = {
        "open": (_cmd_open, 2, 2, False),
        "submit": (_cmd_submit, 2, 3, False),
        "submit-xquery": (_cmd_submit_xquery, 2, 3, False),
        "flush": (_cmd_flush, 1, 1, False),
        "flush-all": (_cmd_flush_all, 0, 0, False),
        "discard": (_cmd_discard, 1, 1, False),
        "text": (_cmd_text, 1, 2, False),
        "stats": (_cmd_stats, 0, 1, True),
        "metrics": (_cmd_metrics, 0, 0, True),
        "docs": (_cmd_docs, 0, 0, True),
        "snapshot": (_cmd_snapshot, 0, 0, False),
        "quit": (_cmd_quit, 0, 0, False),
    }

    # -- dispatch ------------------------------------------------------------

    def handle_line(self, line):
        """Execute one command line; returns the one-line response, or
        ``None`` for blank/comment lines."""
        words = line.strip().split()
        if not words or words[0].startswith("#"):
            return None
        name, args = words[0], words[1:]
        spec = self._COMMANDS.get(name)
        if spec is None:
            return "error unknown command {!r}".format(name)
        handler, least, most, takes_json = spec
        json_form = "--json" in args
        if json_form:
            if not takes_json:
                return "error {} does not take --json".format(name)
            args = [a for a in args if a != "--json"]
        if not least <= len(args) <= most:
            return "error {} takes {}..{} arguments, got {}".format(
                name, least, most, len(args))
        kwargs = {"json_form": True} if json_form else {}
        try:
            return handler(self, *args, **kwargs)
        except ReproError as error:
            return "error {} {}".format(error.code, error)
        except OSError as error:
            return "error os {}".format(error)

    def drain(self):
        """Flush every queued submission before shutdown.

        Returns the number of drained batches. A failing document keeps
        its queue (per :meth:`DocumentStore.flush_all`) — the error is
        re-raised after every other document has been flushed.
        """
        return len(self.store.flush_all())

    def serve(self, in_stream, out_stream):
        """Drive the service from a line stream until ``quit``, EOF or
        SIGTERM; EOF and SIGTERM drain pending submissions first.

        The SIGTERM handler only *raises* while the loop is idle
        (blocked reading a line); a signal landing mid-command sets a
        flag and the loop exits at the next command boundary — so a
        flush (and its error-path cleanup and WAL records) is never
        torn in half by the shutdown path that is about to drain.
        """
        previous_handler = None
        stop = {"requested": False, "in_command": False}
        handles_sigterm = threading.current_thread() is \
            threading.main_thread()
        if handles_sigterm:
            def _on_sigterm(signum, frame):
                stop["requested"] = True
                if not stop["in_command"]:
                    raise _Shutdown()
            try:
                previous_handler = signal.signal(signal.SIGTERM,
                                                 _on_sigterm)
            except (ValueError, OSError):
                handles_sigterm = False
        try:
            for line in in_stream:
                stop["in_command"] = True
                try:
                    response = self.handle_line(line)
                finally:
                    stop["in_command"] = False
                if response is not None:
                    out_stream.write(response + "\n")
                    out_stream.flush()
                if self.closed or stop["requested"]:
                    break
        except _Shutdown:
            pass
        finally:
            if handles_sigterm:
                # a None previous handler means it was installed
                # outside Python and cannot be re-installed from here;
                # fall back to the default disposition rather than
                # leaking our _Shutdown-raiser into the host process
                signal.signal(signal.SIGTERM,
                              previous_handler if previous_handler
                              is not None else signal.SIG_DFL)
            if not self.closed:
                try:
                    try:
                        drained = self.drain()
                    except ReproError as error:
                        self._report(out_stream,
                                     "error drain-failed {}".format(error))
                    else:
                        if drained:
                            self._report(
                                out_stream,
                                "ok drained batches={}".format(drained))
                finally:
                    self.store.close()
                    self.closed = True
        return 0

    @staticmethod
    def _report(out_stream, line):
        """Best-effort shutdown report (the peer may be gone already)."""
        try:
            out_stream.write(line + "\n")
            out_stream.flush()
        except (OSError, ValueError):
            pass


def _render_json(payload):
    """The one-line JSON rendering shared with the network protocol's
    frame encoding (same separators, same key order)."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)
