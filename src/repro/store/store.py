"""The multi-document update store.

A :class:`DocumentStore` is the serving-system generalization of the
single-document :class:`~repro.distributed.executor.Executor`: it keeps
many parsed documents *and their containment labelings* resident between
update batches, accepts PUL submissions from concurrent clients, coalesces
them into per-document batches, routes every batch through the sharded
reduction pipeline (:mod:`repro.pipeline`) and makes it effective through
the streaming evaluator — which maintains the labeling *incrementally*:
only the nodes of touched subtrees gain or lose labels, existing
containment codes are never rewritten (the update-tolerance property of
Section 4.1).

Incremental maintenance is not free forever: every insertion between two
adjacent codes lengthens the fresh code by about one digit, so a hot spot
degrades code length linearly with the number of batches that hit it.
The store watches the labeling's :attr:`max_code_length` and, when it
crosses ``max_code_length`` (the headroom budget), falls back to a full
relabel — one :meth:`ContainmentLabeling.build` pass that rebalances every
code back to ``O(log n)`` digits. The differential test suite checks that
the resident-incremental path stays byte-identical to the stateless
parse → reduce → apply → full-relabel baseline
(:class:`~repro.store.baseline.StatelessBaseline`) on every batch.

Batch coalescing follows the paper's two intents: submissions from the
*same* client within a window are a sequential chain and are collapsed
with the aggregation engine (later PULs may target nodes inserted by
earlier ones — rule D6); the per-client aggregates are then parallel
intents and are merged as a union (Definition 5). An incompatible union
either fails the batch (``on_conflict="error"``, the default — no partial
state is published) or is reconciled under per-client policies
(``on_conflict="reconcile"``).
"""

from __future__ import annotations

import threading
import time

from repro.aggregation import aggregate
from repro.apply.inplace import apply_batch_in_place
from repro.index.structural import build_index
from repro.distributed.messages import ShardEnvelope
from repro.errors import (
    ClusterError,
    DurabilityError,
    QueryEvaluationError,
    RecoveryError,
    ReproError,
)
from repro.integration import reconcile
from repro.labeling.scheme import ContainmentLabeling
from repro.obs import SIZE_BUCKETS, StoreObs
from repro.pipeline.merge import merge_shards
from repro.pipeline.parallel import ParallelReducer
from repro.pipeline.shard import shard_pul
from repro.pul.pul import merge as merge_puls
from repro.pul.serialize import pul_from_xml, pul_to_xml
from repro.store.durability import (
    DurabilityManager,
    DurabilityPolicy,
    RecoveryReport,
    document_payload,
    restore_document,
)
from repro.store.versions import DocumentVersion, replay_catchup
from repro.xdm.document import Document
from repro.xdm.parser import parse_document
from repro.xdm.serializer import serialize, serialize_node

#: default headroom budget: containment codes may grow to this many digits
#: before the store schedules a full relabel of the document
DEFAULT_MAX_CODE_LENGTH = 64

#: how long a state capture waits for a logged batch to publish before
#: declaring the writer stalled — generous, the window it bridges is a
#: single batch application
CAPTURE_TIMEOUT = 60.0


def coalesce_batch(pending, labeling, on_conflict="error", policies=None):
    """Collapse pending submissions into one batch PUL.

    ``pending`` is a list of ``(arrival, client, pul)``. Same-client runs
    are sequential chains (collapsed with the aggregation engine, arrival
    order); distinct clients are parallel intents (merged as a union —
    Definition 5 — or reconciled under ``policies`` when
    ``on_conflict="reconcile"``). Labels for all targets are attached from
    ``labeling``. Shared by the resident store and the stateless baseline
    so the two differ only in the machinery under test.
    """
    by_client = {}
    order = []
    for arrival, client, pul in sorted(pending, key=lambda p: p[0]):
        if client not in by_client:
            by_client[client] = []
            order.append(client)
        by_client[client].append(pul)
    aggregates = []
    for client in order:
        chain = by_client[client]
        combined = chain[0].copy() if len(chain) == 1 else aggregate(chain)
        combined.attach_labels(labeling)
        aggregates.append(combined)
    if len(aggregates) == 1:
        return aggregates[0]
    if on_conflict == "reconcile":
        return reconcile(aggregates, policies=policies or {})
    merged = aggregates[0]
    for other in aggregates[1:]:
        merged = merge_puls(merged, other)
    return merged


class BatchResult:
    """Telemetry of one flushed batch."""

    __slots__ = ("doc_id", "version", "clients", "submitted_ops",
                 "reduced_ops", "shard_sizes", "relabel", "failures",
                 "max_code_length", "index_maintenance")

    def __init__(self, doc_id, version, clients, submitted_ops,
                 reduced_ops, shard_sizes, relabel, failures,
                 max_code_length, index_maintenance="rebuild"):
        self.doc_id = doc_id
        self.version = version
        self.clients = clients
        self.submitted_ops = submitted_ops
        self.reduced_ops = reduced_ops
        self.shard_sizes = shard_sizes
        self.relabel = relabel          # "incremental" | "full"
        self.failures = failures
        self.max_code_length = max_code_length
        # "incremental" (derived from the reduced PUL) or "rebuild"
        self.index_maintenance = index_maintenance

    def __repr__(self):
        return ("BatchResult(doc={!r}, v{}, {} clients, {} -> {} ops, "
                "relabel={})".format(
                    self.doc_id, self.version, self.clients,
                    self.submitted_ops, self.reduced_ops, self.relabel))


class StoredDocument:
    """One resident document: pending queue, writer state, published
    version chain (see :mod:`repro.store.versions`).

    The writer side (``version`` and the relabel counters, the working
    pair, ``checkout``/``publish``) is serialized by ``flush_lock``;
    the reader side pins :attr:`published` under the publish condition
    and never touches a lock a writer holds across a batch. ``pending``
    keeps its own small lock so submissions stay concurrent with both.
    """

    __slots__ = ("doc_id", "version", "lock", "flush_lock", "pending",
                 "batches", "incremental_relabels", "full_relabels",
                 "published", "logged_version", "_publish_cond",
                 "_working", "_spare", "_catchup")

    def __init__(self, doc_id, document, labeling, counters=None):
        self.doc_id = doc_id
        self.version = 0
        self.lock = threading.Lock()         # guards `pending`
        self.flush_lock = threading.Lock()   # serializes batch execution
        self.pending = []   # (arrival index, client, PUL) in arrival order
        self.batches = 0
        self.incremental_relabels = 0
        self.full_relabels = 0
        if counters:
            for counter, value in counters.items():
                setattr(self, counter, value)
        #: leaf lock of the whole store: publication swaps, pin counts
        #: and the logged-version fence live under it, and nothing is
        #: ever acquired while holding it
        self._publish_cond = threading.Condition()
        self._working = None    # the writer's private (document, labeling)
        self._catchup = None    # what the spare lags by (versions.replay_catchup)
        #: highest batch version write-ahead logged so far; a state
        #: capture must wait until the published version covers it, or
        #: the captured payload would *lag* the log/stream position it
        #: is paired with (leading is safe — replay is idempotent —
        #: lagging loses acknowledged records)
        self.logged_version = self.version
        self.published = DocumentVersion(
            doc_id, self.version, document, labeling, self.batches,
            self.incremental_relabels, self.full_relabels,
            index=build_index(document, labeling))
        #: pre-seeded working-copy donor. Spare recycling means every
        #: written document permanently holds two trees; the one
        #: O(document) copy that steady state requires is paid *here*,
        #: where open/restore is already doing O(document) work (parse,
        #: index, label build), so no flush — not even the first —
        #: ever pays it. ``catchup`` stays ``None``: the seed is
        #: content-identical to the published version it shadows.
        self._spare = DocumentVersion(
            doc_id, self.version, document.copy(), labeling.copy(),
            self.batches, self.incremental_relabels, self.full_relabels)

    # -- compatibility accessors (the latest published objects) -------------

    @property
    def document(self):
        return self.published.document

    @property
    def labeling(self):
        return self.published.labeling

    # -- the reader side -----------------------------------------------------

    def pin(self):
        """Pin and return the current published version.

        The pin count keeps the version's tree out of the writer's
        recycling (``checkout`` never steals a pinned spare), so the
        caller may walk ``version.document``/``version.labeling`` with
        no locks at all. Balance every pin with :meth:`unpin`.
        """
        with self._publish_cond:
            version = self.published
            version.pins += 1
            return version

    def unpin(self, version):
        with self._publish_cond:
            version.pins -= 1

    def wait_published(self, timeout):
        """Pin the published version once it covers every logged batch.

        The capture-side half of the logged-version fence: a batch
        record enters the WAL (and the replication stream) *before* its
        version is published, so a capture pairing payloads with a
        log/stream position must wait out that window — the pinned
        version may lead the position (idempotent replay absorbs the
        overlap) but never lag it.
        """
        deadline = time.monotonic() + timeout
        with self._publish_cond:
            while self.published.version < self.logged_version:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DurabilityError(
                        "document {!r} logged version {} but never "
                        "published it (writer stalled?)".format(
                            self.doc_id, self.logged_version))
                self._publish_cond.wait(remaining)
            version = self.published
            version.pins += 1
            return version

    # -- the writer side (callers hold flush_lock) ---------------------------

    def mark_logged(self, version):
        """Raise the logged-version fence *before* the WAL append — a
        group-commit train can expose the record to the replication
        feed before ``log_batch`` returns, and from that instant a
        capture must know a publish is owed."""
        with self._publish_cond:
            self.logged_version = version

    def checkout(self):
        """The writer's private ``(document, labeling)`` working pair.

        Steals the retired spare when no reader pins it — catching it
        up by the one batch it lags (O(touched), the common case) — and
        falls back to a deep copy of the published version when a slow
        reader still holds the spare or the catch-up replay fails.
        Idempotent until :meth:`publish`: a repeated checkout (the
        failed-flush recovery path) returns the same working pair.
        """
        if self._working is not None:
            return self._working
        with self._publish_cond:
            spare, catchup = self._spare, self._catchup
            self._spare = None
            self._catchup = None
            if spare is not None and spare.pins:
                spare = None    # abandoned to its readers
            published = self.published
        working = None
        if spare is not None:
            try:
                working = replay_catchup(spare, published, catchup)
            except Exception:
                # a catch-up that diverges from the published tree is a
                # bug, but never one worth corrupting the working copy
                # over — fall back to copying the published version
                working = None
        if working is None:
            working = (published.document.copy(),
                       published.labeling.copy())
        self._working = working
        return working

    def publish(self, document, labeling, catchup=None, index=None):
        """Atomically publish the working pair as version
        ``self.version``; the old published version retires into the
        spare with ``catchup`` describing what it lags by. ``index`` is
        the version's secondary index — derived incrementally from the
        retiring version's by the caller, or rebuilt here when the
        delta could not be localized."""
        if index is None:
            index = build_index(document, labeling)
        version = DocumentVersion(
            self.doc_id, self.version, document, labeling, self.batches,
            self.incremental_relabels, self.full_relabels, index=index)
        with self._publish_cond:
            retired = self.published
            self.published = version
            self._spare = retired
            self._catchup = catchup
            self._working = None
            if self.logged_version > self.version:
                # the logged batch failed to apply: release captures
                # waiting on a publish that will never come
                self.logged_version = self.version
            self._publish_cond.notify_all()
        return version

    def rebuild_labeling(self):
        """The failed-batch recovery publish: republish at the *same*
        version number with a labeling rebuilt from the (unchanged)
        document, mirroring what WAL replay reconstructs at this point
        so the label timeline of every later batch stays
        digit-identical."""
        document, labeling = self.checkout()
        labeling.build(document)
        return self.publish(document, labeling, catchup=("relabel",))

    def stats(self):
        version = self.pin()
        try:
            with self._publish_cond:
                logged = self.logged_version
            return {
                "doc_id": self.doc_id,
                "version": version.version,
                "nodes": len(version.document),
                "pending": len(self.pending),
                # batches already write-ahead logged whose publish is
                # still owed (nonzero only inside the log->publish
                # window of an in-flight flush)
                "pending_batches": max(0, logged - version.version),
                "batches": version.batches,
                "incremental_relabels": version.incremental_relabels,
                "full_relabels": version.full_relabels,
                "max_code_length": version.labeling.max_code_length,
            }
        finally:
            self.unpin(version)


class DocumentStore:
    """Resident multi-document server over the sharded pipeline.

    Parameters
    ----------
    workers / backend:
        Concurrency of the per-batch shard reduction (a single warm
        :class:`ParallelReducer` pool is shared by all documents).
    max_code_length:
        Headroom budget: when the labeling's longest containment code
        exceeds this many digits after a batch, the document is fully
        relabeled (codes rebalanced); below it, labels are maintained
        incrementally.
    on_conflict:
        ``"error"`` (reject the whole batch, pending queue preserved) or
        ``"reconcile"`` (resolve cross-client conflicts under
        ``policies`` through the integration layer).
    policies:
        ``client name -> ProducerPolicy`` used by ``"reconcile"``.
    durability / wal_dir:
        A :class:`DurabilityPolicy` (or its CLI spec string) and the
        directory holding the write-ahead log and snapshots. With a
        durable policy every flushed batch is logged (write-ahead,
        fsynced) before the flush returns, and — mode ``snapshot`` —
        the log is compacted into a full-state snapshot every
        ``snapshot_every`` batches. If ``wal_dir`` already holds durable
        state the store *recovers* it on construction: latest valid
        snapshot, then the logged batch tail replayed through the
        incremental-relabel machinery (a torn final record is dropped);
        the :class:`RecoveryReport` is left on :attr:`recovery`.
        Concurrent flushes *group-commit*: each batch record is
        buffered under the log lock and one leader fsync makes a whole
        train of them durable together, so N documents flushing at
        once pay ~1 fsync instead of N — no flush ever returns before
        its own record is behind the synced horizon.
    group_window:
        extra seconds a group-commit leader waits before the shared
        fsync so more concurrent flushes can board its train (0 — the
        default — fsyncs immediately; trains still form naturally
        while a previous fsync is in flight).
    metrics:
        ``False`` swaps the metrics registry for a no-op null registry
        (instrumentation sites stay in place and cost one no-op call;
        tracing and the slow log are unaffected).
    slow_query_s / slow_flush_s / slow_log_path:
        Thresholds (seconds; ``None`` disables) and optional JSONL
        path of the slow-query / slow-flush log (:attr:`obs`).
    """

    def __init__(self, workers=2, backend="thread",
                 max_code_length=DEFAULT_MAX_CODE_LENGTH,
                 on_conflict="error", policies=None,
                 durability=None, wal_dir=None, group_window=0.0,
                 metrics=True, slow_query_s=None, slow_flush_s=None,
                 slow_log_path=None):
        if on_conflict not in ("error", "reconcile"):
            raise ReproError(
                "on_conflict must be 'error' or 'reconcile', got {!r}"
                .format(on_conflict))
        if max_code_length < 1:
            raise ReproError("max_code_length must be >= 1, got {}"
                             .format(max_code_length))
        self.workers = workers
        self.max_code_length = max_code_length
        self.on_conflict = on_conflict
        self.policies = dict(policies) if policies else {}
        self._entries = {}
        self._lock = threading.Lock()
        self._arrivals = 0
        self._replaying = False
        self._compacting = threading.Lock()
        self.recovery = None
        #: a standalone store is trivially its own leader; the cluster
        #: subsystem's :class:`~repro.cluster.replica.ReplicaStore`
        #: overrides this (and flips it back on promotion)
        self.role = "leader"
        #: the :class:`~repro.cluster.feed.ReplicationSource` feeding
        #: followers, once :meth:`enable_replication` has run
        self.replication = None
        #: the observability facade (:class:`~repro.obs.StoreObs`)
        #: every subsystem serving this store shares — built before
        #: the durability manager so the fsync path is instrumented
        #: from the first record
        self.obs = StoreObs(enabled=metrics, slow_query_s=slow_query_s,
                            slow_flush_s=slow_flush_s,
                            slow_log_path=slow_log_path)
        obs = self.obs
        self._m_submits = obs.counter(
            "repro_store_submits_total", "PUL submissions accepted")
        self._m_pending = obs.gauge(
            "repro_store_pending_submissions",
            "Submissions queued and not yet flushed")
        self._m_flushes = obs.counter(
            "repro_store_flushes_total", "Batches flushed (published)")
        self._m_flush_failures = obs.counter(
            "repro_store_flush_failures_total",
            "Flushes that failed and restored their pending queue")
        self._op_latency = {
            op: obs.histogram("repro_store_op_latency_seconds",
                              "Store operation latency", op=op)
            for op in ("submit", "flush", "query", "text", "open")}
        self._route_counters = {
            mode: obs.counter("repro_planner_route_total",
                              "Query routes chosen by the planner",
                              mode=mode)
            for mode in ("indexed", "mixed", "walker")}
        self._m_bucket_rows = obs.histogram(
            "repro_planner_bucket_rows",
            "Index bucket sizes scanned by index-scan steps",
            buckets=SIZE_BUCKETS)
        if isinstance(durability, str):
            durability = DurabilityPolicy.parse(durability)
        if durability is None:
            durability = (DurabilityPolicy("log") if wal_dir is not None
                          else DurabilityPolicy("off"))
        self.durability_policy = durability
        self._durability = None
        if durability.durable:
            if wal_dir is None:
                raise ReproError(
                    "durability policy {!r} needs a wal_dir".format(
                        durability))
            self._durability = DurabilityManager(wal_dir, durability,
                                                 group_window=group_window,
                                                 obs=self.obs)
        self._reducer = ParallelReducer(workers=workers, backend=backend)
        if self._durability is not None:
            try:
                state = self._durability.load()
                if not state.empty:
                    self._recover_state(state)
                self._durability.start()
            except Exception:
                self._reducer.close()
                raise

    # -- document lifecycle --------------------------------------------------

    def open(self, doc_id, source):
        """Make ``source`` (XML text or a :class:`Document`) resident
        under ``doc_id``; parses and labels it once."""
        start = time.perf_counter()
        if not isinstance(source, Document):
            source = parse_document(source)
        labeling = ContainmentLabeling().build(source)
        entry = StoredDocument(doc_id, source, labeling)
        with self._lock:
            if doc_id in self._entries:
                raise ReproError(
                    "document {!r} is already resident".format(doc_id))
            self._entries[doc_id] = entry
            if self._durability is not None:
                # the open record carries the full snapshot-form state,
                # so recovery restores the same identifiers and labels
                # even when the caller's source text differs from our
                # serialization. Logged under the store lock so a
                # concurrent compaction cannot strand the record in a
                # segment its snapshot supersedes.
                self._durability.log_open(document_payload(entry))
        self._op_latency["open"].observe(time.perf_counter() - start)
        return entry

    def bulk_load(self, docs):
        """Make a chunk of documents resident in one durable step.

        ``docs`` is an iterable of ``{"doc_id", "xml"}`` objects (the
        ``bulk-import`` wire shape; ``xml`` may also be a parsed
        :class:`Document`). Parsing and labeling — the expensive part —
        run outside the store lock; residency is then installed
        atomically: either every document in the chunk becomes resident
        (and its ``open`` record is logged under **one** group fsync via
        :meth:`DurabilityManager.log_open_many`) or none does. A
        duplicate ``doc_id`` — against the store or within the chunk —
        fails the whole chunk, so an ETL retry can resubmit it
        verbatim.

        Returns ``{"loaded", "nodes", "doc_ids"}``.
        """
        prepared = []
        chunk_ids = set()
        nodes = 0
        for doc in docs:
            if isinstance(doc, dict):
                doc_id, source = doc.get("doc_id"), doc.get("xml")
            else:
                doc_id, source = doc
            if doc_id is None or source is None:
                raise ReproError(
                    "bulk-load documents need doc_id and xml")
            if doc_id in chunk_ids:
                raise ReproError(
                    "bulk-load chunk names {!r} twice".format(doc_id))
            chunk_ids.add(doc_id)
            if not isinstance(source, Document):
                source = parse_document(source)
            labeling = ContainmentLabeling().build(source)
            prepared.append(StoredDocument(doc_id, source, labeling))
            nodes += len(source)
        with self._lock:
            for entry in prepared:
                if entry.doc_id in self._entries:
                    raise ReproError(
                        "document {!r} is already resident".format(
                            entry.doc_id))
            for entry in prepared:
                self._entries[entry.doc_id] = entry
            if self._durability is not None and prepared:
                self._durability.log_open_many(
                    [document_payload(entry) for entry in prepared])
        return {"loaded": len(prepared), "nodes": nodes,
                "doc_ids": [entry.doc_id for entry in prepared]}

    def close_document(self, doc_id):
        """Evict a resident document (pending submissions are lost)."""
        with self._lock:
            entry = self._require(doc_id)
        # wait out any in-flight flush first: its batch record must
        # precede the close record in the log, or replay finds a batch
        # for a document the log already closed
        with entry.flush_lock:
            with self._lock:
                if self._entries.get(entry.doc_id) is not entry:
                    raise ReproError(
                        "document {!r} was closed concurrently".format(
                            entry.doc_id))
                self._entries.pop(entry.doc_id)
                if self._durability is not None:
                    self._durability.log_close(entry.doc_id)
        with entry.lock:
            self._m_pending.dec(len(entry.pending))

    def doc_ids(self):
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, doc_id):
        with self._lock:
            return doc_id in self._entries

    def _require(self, doc_id):
        entry = self._entries.get(doc_id)
        if entry is None:
            raise ReproError(
                "no resident document {!r} (open it first)".format(doc_id))
        return entry

    def document(self, doc_id):
        return self._require(doc_id).document

    def labeling(self, doc_id):
        return self._require(doc_id).labeling

    def version(self, doc_id):
        return self._require(doc_id).published.version

    def text(self, doc_id):
        """Serialized text of the latest published version."""
        return self.text_version(doc_id)[0]

    def text_version(self, doc_id):
        """``(serialized text, version)`` of one pinned published
        version — a consistent pair even while a flush applies: the
        reader pins the published version and serializes it with no
        flush lock, so a slow serialization never stalls the write
        path and a slow batch never stalls the reader."""
        start = time.perf_counter()
        entry = self._require(doc_id)
        version = entry.pin()
        try:
            return serialize(version.document), version.version
        finally:
            entry.unpin(version)
            self._op_latency["text"].observe(time.perf_counter() - start)

    def stats(self, doc_id=None):
        if doc_id is not None:
            return self._require(doc_id).stats()
        with self._lock:
            entries = list(self._entries.values())
        return [entry.stats() for entry in entries]

    def uptime_seconds(self):
        """Seconds since this store was constructed."""
        return self.obs.uptime_seconds()

    # -- observability reads -------------------------------------------------

    def metrics_snapshot(self, traces=None, slow=None):
        """The ``metrics`` op result: every metric series plus uptime;
        optionally the last ``traces`` span trees and ``slow`` log
        entries (see :meth:`repro.obs.StoreObs.snapshot`)."""
        return self.obs.snapshot(traces=traces, slow=slow)

    def metrics_text(self):
        """Prometheus text exposition of the metrics registry."""
        return self.obs.render_text()

    # -- submission ----------------------------------------------------------

    def submit(self, doc_id, pul, client=None):
        """Queue ``pul`` against ``doc_id``; returns the queue depth.

        Thread-safe: concurrent clients may submit against the same
        document. ``client`` defaults to the PUL's origin; submissions
        sharing a client name are treated as that client's sequential
        chain when the batch is coalesced.
        """
        start = time.perf_counter()
        entry = self._require(doc_id)
        if client is None:
            client = pul.origin
        with self._lock:
            arrival = self._arrivals
            self._arrivals += 1
        with entry.lock:
            entry.pending.append((arrival, client, pul))
            depth = len(entry.pending)
        self._m_submits.inc()
        self._m_pending.inc()
        self._op_latency["submit"].observe(time.perf_counter() - start)
        return depth

    def discard_pending(self, doc_id):
        """Withdraw everything queued against ``doc_id`` (e.g. after a
        rejected flush); returns the discarded submission count."""
        entry = self._require(doc_id)
        with entry.lock:
            dropped = len(entry.pending)
            entry.pending = []
        self._m_pending.dec(dropped)
        return dropped

    def submit_xquery(self, doc_id, expression, client=None):
        """Compile ``expression`` (XQuery Update text) against the
        resident document and queue the resulting PUL.

        This is the server-side producer of the paper's architecture:
        the client ships the update *expression*, target paths are
        evaluated against the latest *published* version (the
        labeling's labels travel with the PUL) and the compiled PUL
        joins the document's pending queue like any raw submission.
        Compilation pins the published version instead of taking the
        flush lock, so a concurrent in-place flush neither tears the
        paths nor blocks behind a slow compilation.

        Returns ``(depth, ops)``: the pending-queue depth after the
        submission and the compiled PUL's operation count.
        """
        # local import: repro.xquery pulls the parser/compiler stack in,
        # which the store core does not otherwise need
        from repro.xquery.compiler import compile_pul

        entry = self._require(doc_id)
        version = entry.pin()
        try:
            pul = compile_pul(expression, version.document,
                              labeling=version.labeling, origin=client)
        finally:
            entry.unpin(version)
        ops = len(pul)
        if not ops:
            raise QueryEvaluationError(
                "expression compiles to an empty PUL (no update "
                "expressions, or paths selecting nothing)")
        # submit re-validates residency: a document closed while the
        # compilation ran is rejected here, like any raw submission
        depth = self.submit(doc_id, pul, client=client)
        return depth, ops

    def query(self, doc_id, path, explain=False, engine="auto"):
        """Evaluate a read-only path expression against the resident
        document; returns the selected nodes serialized, in document
        order.

        This is the read surface replicas scale out: unlike
        :meth:`submit_xquery` it queues nothing and never mutates, so a
        read-only node serves it freely. Evaluation pins one published
        version — tree, labeling *and* secondary index travel together
        — and runs the planner (:mod:`repro.index.planner`) over it
        with no locks: a slow path expression never stalls the
        document's write path, and the reported ``version`` is exactly
        the version the paths ran against (never a concurrent flush's
        half-applied successor). ``engine`` forces ``"walk"`` or
        ``"index"`` execution (the differential harness's lever);
        every engine returns identical bytes. With ``explain=True``
        the response carries the recorded per-step plan.
        """
        # local import: the read path should not drag the query stack
        # into store-only deployments
        from repro.index.planner import run_query
        from repro.xquery import parse_path

        start = time.perf_counter()
        entry = self._require(doc_id)
        version = entry.pin()
        try:
            with self.obs.span("query"):
                nodes, plan = run_query(
                    parse_path(path), version.document,
                    labeling=version.labeling, index=version.index,
                    engine=engine)
                rendered = [serialize_node(node) for node in nodes]
        finally:
            entry.unpin(version)
        self._observe_query(doc_id, path,
                            time.perf_counter() - start, plan)
        result = {"doc_id": doc_id, "version": version.version,
                  "count": len(rendered), "nodes": rendered}
        if explain:
            result["plan"] = plan
        return result

    def _observe_query(self, doc_id, path, duration, plan):
        """Feed the read-path telemetry from one executed query: the
        op latency, the route counter for the plan's overall mode, the
        scanned-bucket-size histogram for every index-scan step, and —
        past the threshold — the slow-query log (plan embedded)."""
        self._op_latency["query"].observe(duration)
        mode = plan.get("mode") if isinstance(plan, dict) else None
        counter = self._route_counters.get(mode)
        if counter is not None:
            counter.inc()
        if isinstance(plan, dict):
            for step in plan.get("steps") or ():
                if (isinstance(step, dict)
                        and step.get("choice") == "index-scan"
                        and isinstance(step.get("bucket"), (int, float))):
                    self._m_bucket_rows.observe(step["bucket"])
        self.obs.slowlog.note_query(
            doc_id, path, duration, plan,
            trace_id=self.obs.tracer.current_trace_id())

    def explain(self, doc_id, path):
        """Run ``path`` like :meth:`query` and return the plan the
        cost model chose — per step: index-scan vs. walk, the bucket
        and estimate sizes — without the serialized nodes. The query
        *is* executed (plans depend on per-step context sizes), so
        ``count`` and ``version`` match what :meth:`query` would have
        returned for the same pinned version."""
        result = self.query(doc_id, path, explain=True)
        return {"doc_id": result["doc_id"],
                "version": result["version"], "path": path,
                "count": result["count"], "plan": result["plan"]}

    def submit_message(self, message):
        """Route a :class:`~repro.distributed.messages.PULMessage` to the
        resident document named by its ``doc_id``."""
        if message.doc_id is None:
            raise ReproError(
                "message {!r} carries no doc_id; the store cannot route "
                "it".format(message))
        pul = pul_from_xml(message.payload)
        if pul.origin is None:
            pul.origin = message.origin
        return self.submit(message.doc_id, pul,
                           client=message.origin or pul.origin)

    # -- batch execution -----------------------------------------------------

    def flush(self, doc_id, num_shards=None):
        """Coalesce and execute everything pending against ``doc_id``.

        Returns a :class:`BatchResult`, or ``None`` when nothing was
        pending. Concurrent flushes of the same document are serialized
        (submissions stay concurrent). On a coalescing or application
        error the pending queue is restored untouched and the labeling —
        which the streaming evaluator mutates in place — is rebuilt from
        the unchanged document, so no partial batch state is ever
        published.
        """
        start = time.perf_counter()
        entry = self._require(doc_id)
        with entry.flush_lock:
            with self._lock:
                if self._entries.get(doc_id) is not entry:
                    raise ReproError(
                        "document {!r} was closed while the flush "
                        "waited".format(doc_id))
            with entry.lock:
                pending = entry.pending
                entry.pending = []
            if not pending:
                return None
            self._m_pending.dec(len(pending))
            try:
                with self.obs.collect_stages() as stages:
                    result = self._execute_batch(entry, pending,
                                                 num_shards)
            except Exception:
                self._m_pending.inc(len(pending))
                self._m_flush_failures.inc()
                with entry.lock:
                    entry.pending = pending + entry.pending
                # a mid-stream failure may have left working labels for
                # nodes that were never published; republish the same
                # version with a labeling rebuilt from the (unchanged)
                # document — readers pinned mid-failure keep the old
                # published version, both have consistent labels
                entry.rebuild_labeling()
                if self._durability is not None:
                    # replay must rebuild at the same point, or the label
                    # timeline of every later batch diverges. Logged
                    # *after* the republish so a concurrent capture's
                    # payload never lags the record (leading is safe:
                    # replaying the rebuild is idempotent)
                    self._durability.log_relabel(entry.doc_id)
                raise
        duration = time.perf_counter() - start
        self._m_flushes.inc()
        self._op_latency["flush"].observe(duration)
        self.obs.slowlog.note_flush(
            doc_id, result.version, duration, stages,
            trace_id=self.obs.tracer.current_trace_id())
        return result

    def flush_all(self, num_shards=None):
        """Flush every resident document; returns its batch results.

        One document's failing batch must not starve the others: every
        document is attempted, each failing one keeps its pending queue
        (per :meth:`flush`), and a single :class:`ReproError` naming all
        failures is raised afterwards.
        """
        results = []
        errors = []
        for doc_id in self.doc_ids():
            try:
                result = self.flush(doc_id, num_shards=num_shards)
            except ReproError as error:
                if doc_id not in self:
                    # closed cleanly while flush_all iterated — nothing
                    # was lost and nothing failed, so reporting it as a
                    # batch failure would be spurious
                    continue
                errors.append((doc_id, error))
                continue
            if result is not None:
                results.append(result)
        if errors:
            raise ReproError(
                "flush failed for {}: {}".format(
                    ", ".join(repr(doc_id) for doc_id, __ in errors),
                    "; ".join(str(error) for __, error in errors)))
        return results

    def _execute_batch(self, entry, pending, num_shards):
        with self.obs.stage("coalesce"):
            batch = coalesce_batch(pending, entry.labeling,
                                   on_conflict=self.on_conflict,
                                   policies=self.policies)
        clients = len({client for __, client, __unused in pending})
        return self._run_batch(entry, batch, num_shards, clients)

    def _run_batch(self, entry, batch, num_shards, clients):
        """Make one coalesced ``batch`` effective on ``entry``.

        Shared by the live flush path and WAL replay: both shard the
        batch, reduce, merge, apply in place with per-site incremental
        label maintenance (:func:`apply_batch_in_place`) and run the
        headroom rule — so a replayed batch reproduces the original
        flush exactly. On the live path the batch is appended to the
        write-ahead log (and made durable) *before* application; a batch
        whose application then fails restores the tree untouched and is
        skipped identically at replay time.
        """
        obs = self.obs
        if self._durability is not None and not self._replaying:
            # fence first, then append: a group-commit train may expose
            # the record to the replication feed before log_batch
            # returns, and from that instant a state capture must wait
            # for the matching publish (entry.mark_logged docs). A
            # failed append is unwound by the caller's rebuild_labeling
            # publish, which clamps the fence back.
            entry.mark_logged(entry.version + 1)
            with obs.stage("log"):
                self._durability.log_batch(
                    entry.doc_id, entry.version + 1, clients,
                    pul_to_xml(batch))
        submitted = len(batch)
        with obs.stage("reduce"):
            shards = shard_pul(batch, num_shards or self.workers)
            outcome = self._reducer.reduce_shards(shards)
            reduced = merge_shards(outcome.reduced)
        # in-place application on the *private working pair* (the
        # recycled spare or a copy — entry.checkout): identifiers of
        # removed nodes stay burned (the allocator is the pair's own,
        # position-identical to the published tree's), fresh ids are
        # assigned in document order by the index rebuild — identical
        # to the streaming evaluator's assignment, per the differential
        # suite. Readers keep walking the published version untouched.
        document, labeling = entry.checkout()
        previous = entry.published
        with obs.stage("apply"):
            apply_mode = apply_batch_in_place(document, labeling,
                                              reduced)
        entry.version += 1
        entry.batches += 1
        if labeling.max_code_length > self.max_code_length:
            with obs.stage("relabel"):
                labeling.build(document)
            entry.full_relabels += 1
            relabel = "full"
        else:
            entry.incremental_relabels += 1
            relabel = "incremental"
        # the secondary index rides the same publish: derived from the
        # retiring version's index by re-reading the reduced PUL when
        # the label repair stayed per-site, rebuilt from the tree when
        # codes moved wholesale (label sync or a full relabel)
        index = None
        if (apply_mode == "incremental" and relabel == "incremental"
                and previous.index is not None):
            with obs.stage("index-derive"):
                index = previous.index.derive(
                    previous.document, document, labeling, reduced)
        # one atomic reference swap makes the batch visible; the
        # retired version becomes the next checkout's working copy,
        # lagging by exactly this batch
        with obs.stage("publish"):
            entry.publish(document, labeling,
                          catchup=("batch", reduced), index=index)
        if self._durability is not None and not self._replaying \
                and self._durability.snapshot_due():
            self._write_snapshot()
        return BatchResult(
            doc_id=entry.doc_id, version=entry.version,
            clients=clients,
            submitted_ops=submitted, reduced_ops=len(reduced),
            shard_sizes=[len(s) for s in shards], relabel=relabel,
            failures=list(outcome.failures),
            max_code_length=labeling.max_code_length,
            index_maintenance=("incremental" if index is not None
                               else "rebuild"))

    # -- durability ----------------------------------------------------------

    def snapshot(self):
        """Force a snapshot compaction now (durable stores only).

        Serializes every resident document's full state, writes it
        atomically, rotates the log and deletes superseded files.
        Returns the sealed generation, or ``None`` when the store is not
        durable or another compaction is in flight.
        """
        if self._durability is None:
            return None
        return self._write_snapshot()

    def _write_snapshot(self):
        """Compact by capturing *published versions* — no flush lock,
        no store-wide quiesce; writers keep flushing throughout.

        Rotate-then-capture ordering makes the snapshot safe without
        stopping the world: the log rotates *first* (sealing generation
        G), then every document's published version is captured. Each
        payload therefore covers every record of generations <= G —
        :meth:`StoredDocument.wait_published` waits out the window
        where a batch is logged but not yet published — and possibly a
        prefix of the new segment's records too. Leading payloads are
        harmless: recovery replays the overlap idempotently
        (version-skip for batches, skip-if-present for opens,
        tolerated-missing for closes, deterministic rebuild for
        relabels). Lagging payloads — the failure mode a capture-first
        ordering would risk — cannot happen.

        The non-blocking ``_compacting`` guard keeps two concurrent
        triggering flushes safe: the loser skips and retries after its
        next batch.
        """
        if not self._compacting.acquire(blocking=False):
            return None
        try:
            sealed = self._durability.begin_rotation()
            payloads = self._capture_payloads()
            return self._durability.commit_snapshot(sealed, payloads)
        finally:
            self._compacting.release()

    def _capture_payloads(self, timeout=CAPTURE_TIMEOUT):
        """Snapshot-form payloads of every resident document's published
        version, each pinned only for the duration of its own
        serialization (a :class:`~repro.store.versions.DocumentVersion`
        duck-types as a payload source)."""
        with self._lock:
            entries = sorted(self._entries.values(),
                             key=lambda entry: str(entry.doc_id))
        payloads = []
        for entry in entries:
            version = entry.wait_published(timeout)
            try:
                payloads.append(document_payload(version))
            finally:
                entry.unpin(version)
        return payloads

    # -- replication ---------------------------------------------------------

    def enable_replication(self, backlog=None):
        """Attach a :class:`~repro.cluster.feed.ReplicationSource` so
        followers can stream this store's write-ahead log (idempotent;
        returns the source). Replication *ships the WAL*, so the store
        must be durable."""
        # imported lazily: the cluster package imports the store
        from repro.cluster.feed import DEFAULT_BACKLOG, ReplicationSource

        if self._durability is None:
            raise ClusterError(
                "replication ships the write-ahead log; the store "
                "needs a durable policy (durability= and wal_dir=)")
        if self.replication is None:
            self.replication = ReplicationSource(
                self._durability,
                backlog=DEFAULT_BACKLOG if backlog is None else backlog)
        return self.replication

    def capture_state(self):
        """Capture the full resident state for a snapshot transfer:
        ``(document payloads, seq)`` — without stopping writers.

        Pairing rule: the sequence is read *first*, the payloads are
        captured *after* — and each payload waits until its document's
        published version covers every batch already logged
        (:meth:`StoredDocument.wait_published`). The payloads therefore
        describe a state at or *past* ``seq``, never behind it: a
        follower that installs them and streams records from ``seq``
        misses nothing (the fatal direction), and re-receives at most
        the records the payloads already reflect — which the replica
        apply path absorbs idempotently (batch version-skip, open
        skip-if-present, tolerated-missing close, deterministic
        relabel rebuild). ``seq`` is ``None`` when replication is not
        enabled.
        """
        seq = None
        if self.replication is not None:
            seq = self.replication.next_seq
        return self._capture_payloads(), seq

    def export_state(self, doc_ids=None, cursor=None, limit=None,
                     form="state", timeout=CAPTURE_TIMEOUT):
        """One page of a filtered, resumable corpus export.

        Documents are walked in stable ``str(doc_id)`` order; ``cursor``
        (the last key of the previous page) resumes after it, ``limit``
        bounds the page, ``doc_ids`` restricts the walk. Each document
        is read from its *pinned published version* — the MVCC read
        path — so a concurrent flush never tears a page.

        ``form`` selects the payload shape: ``"state"`` returns
        snapshot-form payloads (node identifiers and labels preserved —
        what :meth:`DocumentMirror.bootstrap` and a re-import need to
        stay batch-addressable), ``"xml"`` returns serialized text.

        Stream pairing: when replication is enabled, ``(stream, seq)``
        are read **before** any payload is pinned — the same
        leading-safe order as :meth:`capture_state` — so a subscriber
        that bootstraps from this page and resumes from the matching
        token re-receives at most changes the payloads already contain.

        Returns ``{"docs", "cursor", "done", "seq", "stream"}``.
        """
        if form not in ("state", "xml"):
            raise ReproError(
                "export form must be 'state' or 'xml', got {!r}".format(
                    form))
        seq = stream = None
        if self.replication is not None:
            seq = self.replication.next_seq
            stream = self.replication.stream_id
        wanted = (None if doc_ids is None
                  else {str(doc_id) for doc_id in doc_ids})
        with self._lock:
            entries = sorted(self._entries.values(),
                             key=lambda entry: str(entry.doc_id))
        selected = [
            entry for entry in entries
            if (wanted is None or str(entry.doc_id) in wanted)
            and (cursor is None or str(entry.doc_id) > str(cursor))]
        page = selected if limit is None else selected[:max(1, int(limit))]
        docs = []
        for entry in page:
            version = entry.wait_published(timeout)
            try:
                if form == "state":
                    docs.append(document_payload(version))
                else:
                    docs.append({"doc_id": entry.doc_id,
                                 "text": serialize(version.document),
                                 "version": version.version})
            finally:
                entry.unpin(version)
        return {"docs": docs,
                "cursor": (str(page[-1].doc_id) if page else cursor),
                "done": len(page) == len(selected),
                "seq": seq, "stream": stream}

    def _recover_state(self, state):
        """Replay a :class:`~repro.store.durability.LoadedState`."""
        self._replaying = True
        replayed = 0
        skipped = 0
        try:
            for payload in state.documents:
                self._install_restored(restore_document(payload))
            for record in state.records:
                kind = record.get("kind")
                if kind == "open":
                    # leading snapshots (captured after the log rotated)
                    # may already contain a document whose open record
                    # sits in a replayed segment: skip the redelivery
                    restored = restore_document(record["doc"])
                    with self._lock:
                        present = restored.doc_id in self._entries
                    if present:
                        skipped += 1
                    else:
                        self._install_restored(restored)
                elif kind == "close":
                    with self._lock:
                        self._entries.pop(record["doc_id"], None)
                elif kind == "relabel":
                    entry = self._replay_entry(record["doc_id"])
                    entry.rebuild_labeling()
                elif kind == "repl-pos":
                    # a replica's replication cursor; the base store
                    # ignores it, ReplicaStore recovers its position
                    self._replay_position(record)
                elif kind == "batch":
                    entry = self._replay_entry(record["doc_id"])
                    if self._replay_batch_record(entry, record):
                        replayed += 1
                    else:
                        skipped += 1
                else:
                    raise RecoveryError(
                        "unknown record kind {!r}".format(kind))
        finally:
            self._replaying = False
        with self._lock:
            documents = sorted(
                (entry.doc_id, entry.version)
                for entry in self._entries.values())
        self.recovery = RecoveryReport(
            documents=documents, replayed_batches=replayed,
            skipped_records=skipped,
            snapshot_generation=state.snapshot_generation,
            clean=state.clean, truncated_bytes=state.truncated_bytes)
        return self.recovery

    def _replay_batch_record(self, entry, record):
        """Make one logged ``batch`` record effective on ``entry``.

        THE replay switch's batch arm, shared verbatim by crash
        recovery and by the replica streaming-apply path
        (:mod:`repro.cluster.replica`) — store-README invariant 8
        ("replica state ≡ leader replay") is structural only as long
        as both run this one routine. Returns ``True`` when the batch
        applied, ``False`` when it was skipped: either its version is
        already covered (idempotent redelivery / post-divergence
        duplicate), or its application failed — breadth matching the
        live flush path's handler: the original flush failed on this
        logged batch (whatever it raised) and rebuilt its labeling, so
        the labeling is rebuilt here too. The crash may have landed
        after the fsynced batch record but before the matching relabel
        record; without the rebuild the labeling would stay in the
        mid-apply mutated state and every later batch's codes would
        diverge. When the relabel record *did* make it to disk,
        replaying it is an idempotent second build.
        """
        version = record["version"]
        if version <= entry.version:
            return False
        if version != entry.version + 1:
            raise RecoveryError(
                "log names version {} of {!r} but the replay "
                "reached version {}".format(
                    version, entry.doc_id, entry.version))
        try:
            self._run_batch(entry, pul_from_xml(record["pul"]),
                            num_shards=None,
                            clients=record.get("clients", 0))
        except Exception:
            entry.rebuild_labeling()
            return False
        return True

    def _replay_position(self, record):
        """Hook for ``repl-pos`` records during replay (no-op here;
        :class:`~repro.cluster.replica.ReplicaStore` restores its
        streaming cursor from them)."""

    def _replay_entry(self, doc_id):
        entry = self._entries.get(doc_id)
        if entry is None:
            raise RecoveryError(
                "log record targets {!r} which the log never "
                "opened".format(doc_id))
        return entry

    @staticmethod
    def _restored_entry(restored):
        """A resident entry rebuilt from a snapshot-form payload."""
        return StoredDocument(restored.doc_id, restored.document,
                              restored.labeling,
                              counters=restored.counters)

    def _install_restored(self, restored):
        entry = self._restored_entry(restored)
        with self._lock:
            if restored.doc_id in self._entries:
                raise RecoveryError(
                    "log opens {!r} twice without closing it".format(
                        restored.doc_id))
            self._entries[restored.doc_id] = entry
        return entry

    # -- distributed hand-off ------------------------------------------------

    def dispatch_shards(self, doc_id, pul, num_shards, network=None):
        """Partition ``pul`` against the resident labeling and wrap the
        shards as doc-targeted :class:`ShardEnvelope` messages, so remote
        reduction workers can name the resident document they serve."""
        entry = self._require(doc_id)
        version = entry.pin()
        try:
            pul = pul.copy()
            pul.attach_labels(version.labeling)
            shards = shard_pul(pul, num_shards)
        finally:
            entry.unpin(version)
        envelopes = []
        for index, shard in enumerate(shards):
            envelope = ShardEnvelope(
                pul_to_xml(shard), origin=pul.origin,
                shard_index=index, shard_count=len(shards),
                base_version=version.version, doc_id=doc_id)
            if network is not None:
                network.send("store/{}".format(doc_id),
                             "reducer-{}".format(index), envelope,
                             kind="shard")
            envelopes.append(envelope)
        return envelopes

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        """Shut the shared reduction pool down and seal the write-ahead
        log (idempotent)."""
        self._reducer.close()
        if self._durability is not None:
            self._durability.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        with self._lock:
            count = len(self._entries)
        return "DocumentStore({} documents, workers={})".format(
            count, self.workers)
