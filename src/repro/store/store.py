"""The multi-document update store.

A :class:`DocumentStore` is the serving-system generalization of the
single-document :class:`~repro.distributed.executor.Executor`: it keeps
many parsed documents *and their containment labelings* resident between
update batches, accepts PUL submissions from concurrent clients, coalesces
them into per-document batches, routes every batch through the sharded
reduction pipeline (:mod:`repro.pipeline`) and makes it effective through
the streaming evaluator — which maintains the labeling *incrementally*:
only the nodes of touched subtrees gain or lose labels, existing
containment codes are never rewritten (the update-tolerance property of
Section 4.1).

Incremental maintenance is not free forever: every insertion between two
adjacent codes lengthens the fresh code by about one digit, so a hot spot
degrades code length linearly with the number of batches that hit it.
The store watches the labeling's :attr:`max_code_length` and, when it
crosses ``max_code_length`` (the headroom budget), falls back to a full
relabel — one :meth:`ContainmentLabeling.build` pass that rebalances every
code back to ``O(log n)`` digits. The differential test suite checks that
the resident-incremental path stays byte-identical to the stateless
parse → reduce → apply → full-relabel baseline
(:class:`~repro.store.baseline.StatelessBaseline`) on every batch.

Batch coalescing follows the paper's two intents: submissions from the
*same* client within a window are a sequential chain and are collapsed
with the aggregation engine (later PULs may target nodes inserted by
earlier ones — rule D6); the per-client aggregates are then parallel
intents and are merged as a union (Definition 5). An incompatible union
either fails the batch (``on_conflict="error"``, the default — no partial
state is published) or is reconciled under per-client policies
(``on_conflict="reconcile"``).
"""

from __future__ import annotations

import threading

from repro.aggregation import aggregate
from repro.apply.inplace import apply_batch_in_place
from repro.distributed.messages import ShardEnvelope
from repro.errors import (
    ClusterError,
    QueryEvaluationError,
    RecoveryError,
    ReproError,
)
from repro.integration import reconcile
from repro.labeling.scheme import ContainmentLabeling
from repro.pipeline.merge import merge_shards
from repro.pipeline.parallel import ParallelReducer
from repro.pipeline.shard import shard_pul
from repro.pul.pul import merge as merge_puls
from repro.pul.serialize import pul_from_xml, pul_to_xml
from repro.store.durability import (
    DurabilityManager,
    DurabilityPolicy,
    RecoveryReport,
    document_payload,
    restore_document,
)
from repro.xdm.document import Document
from repro.xdm.parser import parse_document
from repro.xdm.serializer import serialize, serialize_node

#: default headroom budget: containment codes may grow to this many digits
#: before the store schedules a full relabel of the document
DEFAULT_MAX_CODE_LENGTH = 64


def coalesce_batch(pending, labeling, on_conflict="error", policies=None):
    """Collapse pending submissions into one batch PUL.

    ``pending`` is a list of ``(arrival, client, pul)``. Same-client runs
    are sequential chains (collapsed with the aggregation engine, arrival
    order); distinct clients are parallel intents (merged as a union —
    Definition 5 — or reconciled under ``policies`` when
    ``on_conflict="reconcile"``). Labels for all targets are attached from
    ``labeling``. Shared by the resident store and the stateless baseline
    so the two differ only in the machinery under test.
    """
    by_client = {}
    order = []
    for arrival, client, pul in sorted(pending, key=lambda p: p[0]):
        if client not in by_client:
            by_client[client] = []
            order.append(client)
        by_client[client].append(pul)
    aggregates = []
    for client in order:
        chain = by_client[client]
        combined = chain[0].copy() if len(chain) == 1 else aggregate(chain)
        combined.attach_labels(labeling)
        aggregates.append(combined)
    if len(aggregates) == 1:
        return aggregates[0]
    if on_conflict == "reconcile":
        return reconcile(aggregates, policies=policies or {})
    merged = aggregates[0]
    for other in aggregates[1:]:
        merged = merge_puls(merged, other)
    return merged


class BatchResult:
    """Telemetry of one flushed batch."""

    __slots__ = ("doc_id", "version", "clients", "submitted_ops",
                 "reduced_ops", "shard_sizes", "relabel", "failures",
                 "max_code_length")

    def __init__(self, doc_id, version, clients, submitted_ops,
                 reduced_ops, shard_sizes, relabel, failures,
                 max_code_length):
        self.doc_id = doc_id
        self.version = version
        self.clients = clients
        self.submitted_ops = submitted_ops
        self.reduced_ops = reduced_ops
        self.shard_sizes = shard_sizes
        self.relabel = relabel          # "incremental" | "full"
        self.failures = failures
        self.max_code_length = max_code_length

    def __repr__(self):
        return ("BatchResult(doc={!r}, v{}, {} clients, {} -> {} ops, "
                "relabel={})".format(
                    self.doc_id, self.version, self.clients,
                    self.submitted_ops, self.reduced_ops, self.relabel))


class StoredDocument:
    """One resident document: tree, labeling, version, pending queue."""

    __slots__ = ("doc_id", "document", "labeling", "version", "lock",
                 "flush_lock", "pending", "batches",
                 "incremental_relabels", "full_relabels")

    def __init__(self, doc_id, document, labeling):
        self.doc_id = doc_id
        self.document = document
        self.labeling = labeling
        self.version = 0
        self.lock = threading.Lock()         # guards `pending`
        self.flush_lock = threading.Lock()   # serializes batch execution
        self.pending = []   # (arrival index, client, PUL) in arrival order
        self.batches = 0
        self.incremental_relabels = 0
        self.full_relabels = 0

    def stats(self):
        # under the flush lock: a concurrent in-place flush mutates the
        # tree and the counters mid-batch, and a half-applied node count
        # paired with the pre-batch version number is a torn read
        with self.flush_lock:
            return {
                "doc_id": self.doc_id,
                "version": self.version,
                "nodes": len(self.document),
                "pending": len(self.pending),
                "batches": self.batches,
                "incremental_relabels": self.incremental_relabels,
                "full_relabels": self.full_relabels,
                "max_code_length": self.labeling.max_code_length,
            }


class DocumentStore:
    """Resident multi-document server over the sharded pipeline.

    Parameters
    ----------
    workers / backend:
        Concurrency of the per-batch shard reduction (a single warm
        :class:`ParallelReducer` pool is shared by all documents).
    max_code_length:
        Headroom budget: when the labeling's longest containment code
        exceeds this many digits after a batch, the document is fully
        relabeled (codes rebalanced); below it, labels are maintained
        incrementally.
    on_conflict:
        ``"error"`` (reject the whole batch, pending queue preserved) or
        ``"reconcile"`` (resolve cross-client conflicts under
        ``policies`` through the integration layer).
    policies:
        ``client name -> ProducerPolicy`` used by ``"reconcile"``.
    durability / wal_dir:
        A :class:`DurabilityPolicy` (or its CLI spec string) and the
        directory holding the write-ahead log and snapshots. With a
        durable policy every flushed batch is logged (write-ahead,
        fsynced) before the flush returns, and — mode ``snapshot`` —
        the log is compacted into a full-state snapshot every
        ``snapshot_every`` batches. If ``wal_dir`` already holds durable
        state the store *recovers* it on construction: latest valid
        snapshot, then the logged batch tail replayed through the
        incremental-relabel machinery (a torn final record is dropped);
        the :class:`RecoveryReport` is left on :attr:`recovery`.
        Concurrent flushes *group-commit*: each batch record is
        buffered under the log lock and one leader fsync makes a whole
        train of them durable together, so N documents flushing at
        once pay ~1 fsync instead of N — no flush ever returns before
        its own record is behind the synced horizon.
    group_window:
        extra seconds a group-commit leader waits before the shared
        fsync so more concurrent flushes can board its train (0 — the
        default — fsyncs immediately; trains still form naturally
        while a previous fsync is in flight).
    """

    def __init__(self, workers=2, backend="thread",
                 max_code_length=DEFAULT_MAX_CODE_LENGTH,
                 on_conflict="error", policies=None,
                 durability=None, wal_dir=None, group_window=0.0):
        if on_conflict not in ("error", "reconcile"):
            raise ReproError(
                "on_conflict must be 'error' or 'reconcile', got {!r}"
                .format(on_conflict))
        if max_code_length < 1:
            raise ReproError("max_code_length must be >= 1, got {}"
                             .format(max_code_length))
        self.workers = workers
        self.max_code_length = max_code_length
        self.on_conflict = on_conflict
        self.policies = dict(policies) if policies else {}
        self._entries = {}
        self._lock = threading.Lock()
        self._arrivals = 0
        self._replaying = False
        self._compacting = threading.Lock()
        self.recovery = None
        #: a standalone store is trivially its own leader; the cluster
        #: subsystem's :class:`~repro.cluster.replica.ReplicaStore`
        #: overrides this (and flips it back on promotion)
        self.role = "leader"
        #: the :class:`~repro.cluster.feed.ReplicationSource` feeding
        #: followers, once :meth:`enable_replication` has run
        self.replication = None
        if isinstance(durability, str):
            durability = DurabilityPolicy.parse(durability)
        if durability is None:
            durability = (DurabilityPolicy("log") if wal_dir is not None
                          else DurabilityPolicy("off"))
        self.durability_policy = durability
        self._durability = None
        if durability.durable:
            if wal_dir is None:
                raise ReproError(
                    "durability policy {!r} needs a wal_dir".format(
                        durability))
            self._durability = DurabilityManager(wal_dir, durability,
                                                 group_window=group_window)
        self._reducer = ParallelReducer(workers=workers, backend=backend)
        if self._durability is not None:
            try:
                state = self._durability.load()
                if not state.empty:
                    self._recover_state(state)
                self._durability.start()
            except Exception:
                self._reducer.close()
                raise

    # -- document lifecycle --------------------------------------------------

    def open(self, doc_id, source):
        """Make ``source`` (XML text or a :class:`Document`) resident
        under ``doc_id``; parses and labels it once."""
        if not isinstance(source, Document):
            source = parse_document(source)
        labeling = ContainmentLabeling().build(source)
        entry = StoredDocument(doc_id, source, labeling)
        with self._lock:
            if doc_id in self._entries:
                raise ReproError(
                    "document {!r} is already resident".format(doc_id))
            self._entries[doc_id] = entry
            if self._durability is not None:
                # the open record carries the full snapshot-form state,
                # so recovery restores the same identifiers and labels
                # even when the caller's source text differs from our
                # serialization. Logged under the store lock so a
                # concurrent compaction cannot strand the record in a
                # segment its snapshot supersedes.
                self._durability.log_open(document_payload(entry))
        return entry

    def close_document(self, doc_id):
        """Evict a resident document (pending submissions are lost)."""
        with self._lock:
            entry = self._require(doc_id)
        # wait out any in-flight flush first: its batch record must
        # precede the close record in the log, or replay finds a batch
        # for a document the log already closed
        with entry.flush_lock:
            with self._lock:
                if self._entries.get(entry.doc_id) is not entry:
                    raise ReproError(
                        "document {!r} was closed concurrently".format(
                            entry.doc_id))
                self._entries.pop(entry.doc_id)
                if self._durability is not None:
                    self._durability.log_close(entry.doc_id)

    def doc_ids(self):
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, doc_id):
        with self._lock:
            return doc_id in self._entries

    def _require(self, doc_id):
        entry = self._entries.get(doc_id)
        if entry is None:
            raise ReproError(
                "no resident document {!r} (open it first)".format(doc_id))
        return entry

    def document(self, doc_id):
        return self._require(doc_id).document

    def labeling(self, doc_id):
        return self._require(doc_id).labeling

    def version(self, doc_id):
        return self._require(doc_id).version

    def text(self, doc_id):
        """Serialized text of the resident document.

        Serialization holds the flush lock: flushed batches mutate the
        resident tree *in place*, so an unlocked walk could serialize a
        half-applied batch (a torn read) — the reader must observe the
        pre-batch or the post-batch tree, never anything between.
        """
        entry = self._require(doc_id)
        with entry.flush_lock:
            return serialize(entry.document)

    def stats(self, doc_id=None):
        if doc_id is not None:
            return self._require(doc_id).stats()
        with self._lock:
            entries = list(self._entries.values())
        return [entry.stats() for entry in entries]

    # -- submission ----------------------------------------------------------

    def submit(self, doc_id, pul, client=None):
        """Queue ``pul`` against ``doc_id``; returns the queue depth.

        Thread-safe: concurrent clients may submit against the same
        document. ``client`` defaults to the PUL's origin; submissions
        sharing a client name are treated as that client's sequential
        chain when the batch is coalesced.
        """
        entry = self._require(doc_id)
        if client is None:
            client = pul.origin
        with self._lock:
            arrival = self._arrivals
            self._arrivals += 1
        with entry.lock:
            entry.pending.append((arrival, client, pul))
            return len(entry.pending)

    def discard_pending(self, doc_id):
        """Withdraw everything queued against ``doc_id`` (e.g. after a
        rejected flush); returns the discarded submission count."""
        entry = self._require(doc_id)
        with entry.lock:
            dropped = len(entry.pending)
            entry.pending = []
        return dropped

    def submit_xquery(self, doc_id, expression, client=None):
        """Compile ``expression`` (XQuery Update text) against the
        resident document and queue the resulting PUL.

        This is the server-side producer of the paper's architecture:
        the client ships the update *expression*, target paths are
        evaluated against the current resident tree (the labeling's
        labels travel with the PUL) and the compiled PUL joins the
        document's pending queue like any raw submission. Compilation
        holds the flush lock so the paths are never evaluated against a
        tree that a concurrent flush is mutating in place — the PUL is
        compiled against the latest *published* version.

        Returns ``(depth, ops)``: the pending-queue depth after the
        submission and the compiled PUL's operation count.
        """
        # local import: repro.xquery pulls the parser/compiler stack in,
        # which the store core does not otherwise need
        from repro.xquery.compiler import compile_pul

        entry = self._require(doc_id)
        with entry.flush_lock:
            with self._lock:
                if self._entries.get(doc_id) is not entry:
                    raise ReproError(
                        "document {!r} was closed while the compilation "
                        "waited".format(doc_id))
            pul = compile_pul(expression, entry.document,
                              labeling=entry.labeling, origin=client)
            ops = len(pul)
            if not ops:
                raise QueryEvaluationError(
                    "expression compiles to an empty PUL (no update "
                    "expressions, or paths selecting nothing)")
            depth = self.submit(doc_id, pul, client=client)
        return depth, ops

    def query(self, doc_id, path):
        """Evaluate a read-only path expression against the resident
        document; returns the selected nodes serialized, in document
        order.

        This is the read surface replicas scale out: unlike
        :meth:`submit_xquery` it queues nothing and never mutates, so a
        read-only node serves it freely. Evaluation holds the flush
        lock so the paths never walk a tree a concurrent flush is
        mutating in place.
        """
        # local import: the read path should not drag the query stack
        # into store-only deployments
        from repro.xquery import evaluate_path, parse_path

        entry = self._require(doc_id)
        with entry.flush_lock:
            with self._lock:
                if self._entries.get(doc_id) is not entry:
                    raise ReproError(
                        "document {!r} was closed while the query "
                        "waited".format(doc_id))
            nodes = evaluate_path(parse_path(path), entry.document)
            rendered = [serialize_node(node) for node in nodes]
            version = entry.version
        return {"doc_id": doc_id, "version": version,
                "count": len(rendered), "nodes": rendered}

    def submit_message(self, message):
        """Route a :class:`~repro.distributed.messages.PULMessage` to the
        resident document named by its ``doc_id``."""
        if message.doc_id is None:
            raise ReproError(
                "message {!r} carries no doc_id; the store cannot route "
                "it".format(message))
        pul = pul_from_xml(message.payload)
        if pul.origin is None:
            pul.origin = message.origin
        return self.submit(message.doc_id, pul,
                           client=message.origin or pul.origin)

    # -- batch execution -----------------------------------------------------

    def flush(self, doc_id, num_shards=None):
        """Coalesce and execute everything pending against ``doc_id``.

        Returns a :class:`BatchResult`, or ``None`` when nothing was
        pending. Concurrent flushes of the same document are serialized
        (submissions stay concurrent). On a coalescing or application
        error the pending queue is restored untouched and the labeling —
        which the streaming evaluator mutates in place — is rebuilt from
        the unchanged document, so no partial batch state is ever
        published.
        """
        entry = self._require(doc_id)
        with entry.flush_lock:
            with self._lock:
                if self._entries.get(doc_id) is not entry:
                    raise ReproError(
                        "document {!r} was closed while the flush "
                        "waited".format(doc_id))
            with entry.lock:
                pending = entry.pending
                entry.pending = []
            if not pending:
                return None
            try:
                result = self._execute_batch(entry, pending, num_shards)
            except Exception:
                with entry.lock:
                    entry.pending = pending + entry.pending
                # a mid-stream failure may have left labels for nodes
                # that were never published; relabeling the (unchanged)
                # document restores consistency
                entry.labeling.build(entry.document)
                if self._durability is not None:
                    # replay must rebuild at the same point, or the label
                    # timeline of every later batch diverges
                    self._durability.log_relabel(entry.doc_id)
                raise
        return result

    def flush_all(self, num_shards=None):
        """Flush every resident document; returns its batch results.

        One document's failing batch must not starve the others: every
        document is attempted, each failing one keeps its pending queue
        (per :meth:`flush`), and a single :class:`ReproError` naming all
        failures is raised afterwards.
        """
        results = []
        errors = []
        for doc_id in self.doc_ids():
            try:
                result = self.flush(doc_id, num_shards=num_shards)
            except ReproError as error:
                if doc_id not in self:
                    # closed cleanly while flush_all iterated — nothing
                    # was lost and nothing failed, so reporting it as a
                    # batch failure would be spurious
                    continue
                errors.append((doc_id, error))
                continue
            if result is not None:
                results.append(result)
        if errors:
            raise ReproError(
                "flush failed for {}: {}".format(
                    ", ".join(repr(doc_id) for doc_id, __ in errors),
                    "; ".join(str(error) for __, error in errors)))
        return results

    def _execute_batch(self, entry, pending, num_shards):
        batch = coalesce_batch(pending, entry.labeling,
                               on_conflict=self.on_conflict,
                               policies=self.policies)
        clients = len({client for __, client, __unused in pending})
        return self._run_batch(entry, batch, num_shards, clients)

    def _run_batch(self, entry, batch, num_shards, clients):
        """Make one coalesced ``batch`` effective on ``entry``.

        Shared by the live flush path and WAL replay: both shard the
        batch, reduce, merge, apply in place with per-site incremental
        label maintenance (:func:`apply_batch_in_place`) and run the
        headroom rule — so a replayed batch reproduces the original
        flush exactly. On the live path the batch is appended to the
        write-ahead log (and made durable) *before* application; a batch
        whose application then fails restores the tree untouched and is
        skipped identically at replay time.
        """
        if self._durability is not None and not self._replaying:
            self._durability.log_batch(entry.doc_id, entry.version + 1,
                                       clients, pul_to_xml(batch))
        submitted = len(batch)
        shards = shard_pul(batch, num_shards or self.workers)
        outcome = self._reducer.reduce_shards(shards)
        reduced = merge_shards(outcome.reduced)
        # in-place application: identifiers of removed nodes stay burned
        # (the allocator is the document's own), fresh ids are assigned
        # in document order by the index rebuild — identical to the
        # streaming evaluator's assignment, per the differential suite
        apply_batch_in_place(entry.document, entry.labeling, reduced)
        entry.version += 1
        entry.batches += 1
        if entry.labeling.max_code_length > self.max_code_length:
            entry.labeling.build(entry.document)
            entry.full_relabels += 1
            relabel = "full"
        else:
            entry.incremental_relabels += 1
            relabel = "incremental"
        if self._durability is not None and not self._replaying \
                and self._durability.snapshot_due():
            self._write_snapshot(held_entry=entry)
        return BatchResult(
            doc_id=entry.doc_id, version=entry.version,
            clients=clients,
            submitted_ops=submitted, reduced_ops=len(reduced),
            shard_sizes=[len(s) for s in shards], relabel=relabel,
            failures=list(outcome.failures),
            max_code_length=entry.labeling.max_code_length)

    # -- durability ----------------------------------------------------------

    def snapshot(self):
        """Force a snapshot compaction now (durable stores only).

        Serializes every resident document's full state, writes it
        atomically, rotates the log and deletes superseded files.
        Returns the sealed generation, or ``None`` when the store is not
        durable or another compaction is in flight.
        """
        if self._durability is None:
            return None
        return self._write_snapshot(held_entry=None)

    def _write_snapshot(self, held_entry):
        """Compact under every document's flush lock.

        ``held_entry`` is the entry whose flush triggered the compaction
        (its flush lock is already held by this thread). The
        non-blocking ``_compacting`` guard makes two concurrent
        triggering flushes safe: the loser skips and retries after its
        next batch, so neither waits on a lock the other holds.

        Lock order matters: :meth:`flush` and :meth:`close_document`
        take ``flush_lock`` first and the store lock second, so the
        compaction must never block on a flush lock while holding the
        store lock (the ABBA deadlock). It therefore captures the entry
        list under the store lock, *releases* it, collects the flush
        locks, and only then re-takes the store lock for the capture +
        rotation — retrying from scratch when a document was opened or
        closed in the unlocked window.
        """
        if not self._compacting.acquire(blocking=False):
            return None
        try:
            return self._with_quiesced_entries(
                held_entry,
                lambda entries: self._durability.write_snapshot(
                    document_payload(entry) for entry in entries))
        finally:
            self._compacting.release()

    def _with_quiesced_entries(self, held_entry, capture):
        """Run ``capture(entries)`` with every entry's flush lock *and*
        the store lock held.

        The store lock is held across validation AND the capture: no
        document can be opened or closed (and no open/close record
        logged) while ``capture`` observes the state, so a snapshot it
        writes subsumes every record in the sealed segments. Flush
        locks keep each captured entry's state still; a
        concurrently-flushing document either finished logging before
        we got its lock (captured at the new version) or flushes after
        the capture. ``held_entry`` names the entry whose flush lock
        this thread already holds (``None`` outside a flush). Retries
        from scratch when the entry set churned while the flush locks
        were being collected.
        """
        while True:
            with self._lock:
                entries = sorted(self._entries.values(),
                                 key=lambda entry: str(entry.doc_id))
            acquired = []
            try:
                for entry in entries:
                    if entry is held_entry:
                        continue
                    entry.flush_lock.acquire()
                    acquired.append(entry)
                with self._lock:
                    if sorted(self._entries.values(),
                              key=lambda entry: str(entry.doc_id)) \
                            == entries:
                        return capture(entries)
            finally:
                for entry in acquired:
                    entry.flush_lock.release()
            # a document was opened or closed while the flush locks
            # were being collected: retry against the new entry set

    # -- replication ---------------------------------------------------------

    def enable_replication(self, backlog=None):
        """Attach a :class:`~repro.cluster.feed.ReplicationSource` so
        followers can stream this store's write-ahead log (idempotent;
        returns the source). Replication *ships the WAL*, so the store
        must be durable."""
        # imported lazily: the cluster package imports the store
        from repro.cluster.feed import DEFAULT_BACKLOG, ReplicationSource

        if self._durability is None:
            raise ClusterError(
                "replication ships the write-ahead log; the store "
                "needs a durable policy (durability= and wal_dir=)")
        if self.replication is None:
            self.replication = ReplicationSource(
                self._durability,
                backlog=DEFAULT_BACKLOG if backlog is None else backlog)
        return self.replication

    def capture_state(self):
        """Atomically capture the full resident state for a snapshot
        transfer: ``(document payloads, seq)``.

        Taken under every flush lock plus the store lock, so the
        payloads and the replication sequence describe exactly the same
        instant — a follower that installs the payloads and streams
        records from ``seq`` misses nothing and double-applies nothing.
        ``seq`` is ``None`` when replication is not enabled.
        """
        def capture(entries):
            payloads = [document_payload(entry) for entry in entries]
            seq = None
            if self.replication is not None:
                # every record logged before the locks were taken is
                # synced; ingesting under the locks makes the count
                # final for this capture
                seq = self.replication.next_seq
            return payloads, seq

        return self._with_quiesced_entries(None, capture)

    def _recover_state(self, state):
        """Replay a :class:`~repro.store.durability.LoadedState`."""
        self._replaying = True
        replayed = 0
        skipped = 0
        try:
            for payload in state.documents:
                self._install_restored(restore_document(payload))
            for record in state.records:
                kind = record.get("kind")
                if kind == "open":
                    self._install_restored(
                        restore_document(record["doc"]))
                elif kind == "close":
                    with self._lock:
                        self._entries.pop(record["doc_id"], None)
                elif kind == "relabel":
                    entry = self._replay_entry(record["doc_id"])
                    entry.labeling.build(entry.document)
                elif kind == "repl-pos":
                    # a replica's replication cursor; the base store
                    # ignores it, ReplicaStore recovers its position
                    self._replay_position(record)
                elif kind == "batch":
                    entry = self._replay_entry(record["doc_id"])
                    if self._replay_batch_record(entry, record):
                        replayed += 1
                    else:
                        skipped += 1
                else:
                    raise RecoveryError(
                        "unknown record kind {!r}".format(kind))
        finally:
            self._replaying = False
        with self._lock:
            documents = sorted(
                (entry.doc_id, entry.version)
                for entry in self._entries.values())
        self.recovery = RecoveryReport(
            documents=documents, replayed_batches=replayed,
            skipped_records=skipped,
            snapshot_generation=state.snapshot_generation,
            clean=state.clean, truncated_bytes=state.truncated_bytes)
        return self.recovery

    def _replay_batch_record(self, entry, record):
        """Make one logged ``batch`` record effective on ``entry``.

        THE replay switch's batch arm, shared verbatim by crash
        recovery and by the replica streaming-apply path
        (:mod:`repro.cluster.replica`) — store-README invariant 8
        ("replica state ≡ leader replay") is structural only as long
        as both run this one routine. Returns ``True`` when the batch
        applied, ``False`` when it was skipped: either its version is
        already covered (idempotent redelivery / post-divergence
        duplicate), or its application failed — breadth matching the
        live flush path's handler: the original flush failed on this
        logged batch (whatever it raised) and rebuilt its labeling, so
        the labeling is rebuilt here too. The crash may have landed
        after the fsynced batch record but before the matching relabel
        record; without the rebuild the labeling would stay in the
        mid-apply mutated state and every later batch's codes would
        diverge. When the relabel record *did* make it to disk,
        replaying it is an idempotent second build.
        """
        version = record["version"]
        if version <= entry.version:
            return False
        if version != entry.version + 1:
            raise RecoveryError(
                "log names version {} of {!r} but the replay "
                "reached version {}".format(
                    version, entry.doc_id, entry.version))
        try:
            self._run_batch(entry, pul_from_xml(record["pul"]),
                            num_shards=None,
                            clients=record.get("clients", 0))
        except Exception:
            entry.labeling.build(entry.document)
            return False
        return True

    def _replay_position(self, record):
        """Hook for ``repl-pos`` records during replay (no-op here;
        :class:`~repro.cluster.replica.ReplicaStore` restores its
        streaming cursor from them)."""

    def _replay_entry(self, doc_id):
        entry = self._entries.get(doc_id)
        if entry is None:
            raise RecoveryError(
                "log record targets {!r} which the log never "
                "opened".format(doc_id))
        return entry

    @staticmethod
    def _restored_entry(restored):
        """A resident entry rebuilt from a snapshot-form payload."""
        entry = StoredDocument(restored.doc_id, restored.document,
                               restored.labeling)
        for counter, value in restored.counters.items():
            setattr(entry, counter, value)
        return entry

    def _install_restored(self, restored):
        entry = self._restored_entry(restored)
        with self._lock:
            if restored.doc_id in self._entries:
                raise RecoveryError(
                    "log opens {!r} twice without closing it".format(
                        restored.doc_id))
            self._entries[restored.doc_id] = entry
        return entry

    # -- distributed hand-off ------------------------------------------------

    def dispatch_shards(self, doc_id, pul, num_shards, network=None):
        """Partition ``pul`` against the resident labeling and wrap the
        shards as doc-targeted :class:`ShardEnvelope` messages, so remote
        reduction workers can name the resident document they serve."""
        entry = self._require(doc_id)
        pul = pul.copy()
        pul.attach_labels(entry.labeling)
        shards = shard_pul(pul, num_shards)
        envelopes = []
        for index, shard in enumerate(shards):
            envelope = ShardEnvelope(
                pul_to_xml(shard), origin=pul.origin,
                shard_index=index, shard_count=len(shards),
                base_version=entry.version, doc_id=doc_id)
            if network is not None:
                network.send("store/{}".format(doc_id),
                             "reducer-{}".format(index), envelope,
                             kind="shard")
            envelopes.append(envelope)
        return envelopes

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        """Shut the shared reduction pool down and seal the write-ahead
        log (idempotent)."""
        self._reducer.close()
        if self._durability is not None:
            self._durability.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        with self._lock:
            count = len(self._entries)
        return "DocumentStore({} documents, workers={})".format(
            count, self.workers)
