"""PUL aggregation — handling *sequential* PULs (Section 3.3).

``∆1 ⤙ ∆2`` produces a single PUL cumulating the effects of applying
``∆1`` and then ``∆2``; unlike integration there are never unsolvable
conflicts, since the sequential result is always well defined. The
implementation is the hash-table Algorithm 2 driven by the dependency
rules of Figure 5 (A1/A2 same-PUL insert collapse, B3 overriding, C4/C5
cross-PUL insert cumulation, D6 application inside earlier parameters).
"""

from repro.aggregation.engine import aggregate
from repro.aggregation import rules

__all__ = ["aggregate", "rules"]
