"""The aggregation engine — Algorithm 2.

A hash table maps every node id to either

* an **old** entry (the node belongs to the original document): the
  accumulated operations targeting it, merged with the later PULs'
  operations through rules B3/C4/C5 (plus the generalized-``repC``
  extension); or
* a **new** entry (the node was inserted by an earlier PUL of the
  sequence): a pointer to the *host record* — the forest of parameter
  trees it lives in. Operations targeting new nodes are applied directly
  inside the host forest (rule D6), with their identifiers preserved so
  that still-later PULs can reference them.

Complexity O(k + p) in the total number of operations ``k`` and inserted
nodes ``p`` (Proposition 5), up to host-forest rescans after D6
applications.
"""

from __future__ import annotations

from repro.errors import NotApplicableError
from repro.aggregation.rules import (
    FIRST_THEN_SECOND,
    OVERRIDABLE,
    SECOND_THEN_FIRST,
    cumulate_into_repc,
    cumulate_trees,
)
from repro.pul.ops import (
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    OpClass,
    ReplaceChildren,
)
from repro.pul.pul import PUL
from repro.pul.semantics import apply_to_forest

_CHILD_INSERTS = frozenset({InsertIntoAsFirst.op_name,
                            InsertIntoAsLast.op_name,
                            InsertInto.op_name})


class _Record:
    """One accumulated operation; tree parameters are kept as a mutable
    host forest so later PULs can update them in place (rule D6).
    ``pul_index`` records which PUL of the sequence contributed the
    operation — the cross-PUL rules only fire across indexes."""

    __slots__ = ("op", "trees", "dead", "pul_index")

    def __init__(self, op, pul_index):
        self.op = op
        self.trees = [tree.deep_copy(keep_ids=True) for tree in op.trees] \
            if op.has_trees else None
        self.dead = False
        self.pul_index = pul_index

    def rebuild(self):
        """The final operation this record stands for, or ``None``."""
        if self.dead:
            return None
        if self.trees is None:
            return self.op
        if not self.trees and self.op.op_class is OpClass.INSERT:
            # everything this insertion carried was later deleted
            return None
        return self.op.with_trees(self.trees)


class _Aggregator:
    def __init__(self, generalized_repc=True):
        self.generalized_repc = generalized_repc
        #: insertion-ordered accumulated records
        self.records = []
        #: old targets: target id -> {op_name: [records]}
        self.old = {}
        #: new nodes: node id -> host _Record
        self.new = {}
        #: index of the PUL currently being merged
        self.pul_index = -1

    # -- population ----------------------------------------------------------

    def add_pul(self, pul):
        self.pul_index += 1
        host_batches = {}
        old_batch = []
        for op in pul:
            host = self.new.get(op.target)
            if host is not None:
                host_batches.setdefault(id(host), (host, []))[1].append(op)
            else:
                old_batch.append(op)
        # rule D6: apply the new-target operations inside their hosts
        for host, ops in host_batches.values():
            self._apply_inside(host, ops)
        # rules A2 + B3/C4/C5 for the old-target operations
        merged = self._collapse_same_pul(old_batch)
        for op in merged:
            self._merge_old(op)

    def _collapse_same_pul(self, ops):
        """Rules A1/A2: same-variant same-target inserts of one PUL
        collapse into one operation (order: earlier-op-first semantics of
        the within-PUL group, realized with the same variant orders)."""
        result = []
        index = {}
        for op in ops:
            key = (op.op_name, op.target)
            if op.op_class is OpClass.INSERT and key in index:
                position = index[key]
                previous = result[position]
                result[position] = previous.with_trees(cumulate_trees(
                    op.op_name, previous.trees, op.trees))
            else:
                if op.op_class is OpClass.INSERT:
                    index[key] = len(result)
                result.append(op)
        return result

    def _merge_old(self, op):
        bucket = self.old.setdefault(op.target, {})
        name = op.op_name
        if name in OVERRIDABLE and name in bucket and \
                bucket[name][0].pul_index < self.pul_index:
            # rule B3: the later operation overrides the earlier one
            for record in bucket[name]:
                record.dead = True
            del bucket[name]
        if op.op_class is OpClass.INSERT:
            if name in _CHILD_INSERTS:
                repc = bucket.get(ReplaceChildren.op_name)
                if repc and repc[0].pul_index < self.pul_index:
                    # a *strictly earlier* repC fixed the children, so the
                    # later insertion lands inside the replacement content
                    # (a same-PUL repC wipes same-PUL child inserts by the
                    # ordinary stage semantics — no rule needed)
                    self._cumulate_into_repc(repc[0], op)
                    return
            previous = bucket.get(name)
            if previous and name in (FIRST_THEN_SECOND | SECOND_THEN_FIRST) \
                    and name != "insertAttributes":
                # rules C4/C5: cumulate into the earlier record
                record = previous[0]
                record.trees = cumulate_trees(
                    name, record.trees,
                    [t.deep_copy(keep_ids=True) for t in op.trees])
                self._register_nodes(record)
                return
        self._append(op, bucket)

    def _cumulate_into_repc(self, record, op):
        if not self.generalized_repc:
            raise NotApplicableError(
                "aggregating {} after a repC on node {} requires the "
                "generalized-repC extension (generalized_repc=True)".format(
                    op.describe(), op.target))
        record.trees = cumulate_into_repc(
            record.trees, op.op_name,
            [t.deep_copy(keep_ids=True) for t in op.trees])
        record.op = ReplaceChildren(record.op.target, [], strict=False)
        self._register_nodes(record)

    def _append(self, op, bucket):
        record = _Record(op, self.pul_index)
        self.records.append(record)
        bucket.setdefault(op.op_name, []).append(record)
        self._register_nodes(record)

    def _apply_inside(self, host, ops):
        """Rule D6."""
        host.trees = apply_to_forest(host.trees, ops, preserve_ids=True)
        self._register_nodes(host)

    def _register_nodes(self, record):
        if record.trees is None:
            return
        for tree in record.trees:
            for node in tree.iter_subtree():
                if node.node_id is not None:
                    self.new[node.node_id] = record

    # -- result ---------------------------------------------------------------

    def result_ops(self):
        ops = []
        for record in self.records:
            op = record.rebuild()
            if op is not None:
                ops.append(op)
        return ops


def aggregate(puls, generalized_repc=True):
    """Aggregate a sequence of PULs into one (Definition 13).

    ``puls[k]`` is assumed applicable on the original document updated by
    ``puls[:k]`` — the disconnected-producer scenario. The result is
    substitutable to the sequential application ``∆1; ...; ∆n``
    (Proposition 4).

    ``generalized_repc=False`` restricts the engine to strict XQUF
    operations; the ``repC``-then-insert dependency then raises
    :class:`~repro.errors.NotApplicableError` (the case the paper defers
    to its extended version).
    """
    puls = list(puls)
    aggregator = _Aggregator(generalized_repc=generalized_repc)
    labels = {}
    origin = None
    for pul in puls:
        aggregator.add_pul(pul)
        labels.update(pul.labels)
        origin = origin if origin is not None else pul.origin
    return PUL(aggregator.result_ops(), labels=labels, origin=origin)
