"""The aggregation rules of Figure 5, as merge-order helpers.

For two insertions of the same variant on the same (original) node, one in
each PUL of the sequence, the cumulated parameter order depends on the
variant (rules C4/C5): variants whose insertion point "stays put" as
content accumulates (``ins←``: right before the target; ``ins↘``: at the
end) concatenate first-then-second, while variants whose insertion point is
*adjacent* to the target on the leading side (``ins→``, ``ins↙``)
concatenate second-then-first. The same orders apply to the same-PUL
collapse rules A1/A2.

Rule B3 (a later ``ren``/``repV``/``repC`` overrides an earlier one on the
same node) and rule D6 (operations of a later PUL applied inside an
earlier operation's parameter trees) live in the engine.

The ``repC`` + later-child-insert combination, deferred by the paper to
its extended version, is realized here by cumulating into a *generalized*
``repC`` (see :class:`repro.pul.ops.ReplaceChildren`).
"""

from __future__ import annotations

from repro.errors import NotApplicableError
from repro.pul.ops import (
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceValue,
)

#: variants concatenating earlier-then-later (rule C4; attribute order is
#: not semantically relevant, so insA cumulates in sequence order too)
FIRST_THEN_SECOND = frozenset({InsertBefore.op_name,
                               InsertIntoAsLast.op_name,
                               InsertAttributes.op_name})
#: variants concatenating later-then-earlier (rule C5)
SECOND_THEN_FIRST = frozenset({InsertAfter.op_name,
                               InsertIntoAsFirst.op_name,
                               InsertInto.op_name})

#: operations a later same-name operation overrides (rule B3)
OVERRIDABLE = frozenset({Rename.op_name, ReplaceValue.op_name,
                         ReplaceChildren.op_name})


def cumulate_trees(op_name, earlier_trees, later_trees):
    """The cumulated parameter of two same-variant insertions on the same
    node, earlier PUL first (rules A1/A2/C4/C5)."""
    if op_name in FIRST_THEN_SECOND:
        return list(earlier_trees) + list(later_trees)
    if op_name in SECOND_THEN_FIRST:
        return list(later_trees) + list(earlier_trees)
    raise NotApplicableError(
        "no cumulation order for {}".format(op_name))


def cumulate_into_repc(repc_trees, insert_op_name, insert_trees):
    """Cumulate a later child insertion into an earlier (generalized)
    ``repC`` parameter — the case Section 3.3 defers to the extended
    version: the ``repC`` fixes the final children, so the insertion lands
    inside the replacement content."""
    if insert_op_name == InsertIntoAsLast.op_name:
        return list(repc_trees) + list(insert_trees)
    # ins↙ and (deterministically placed) ins↓ land at the front
    return list(insert_trees) + list(repc_trees)
