"""The structural secondary index: name buckets of label-code entries.

A :class:`DocumentIndex` is a set of *buckets* — one per element name,
attribute name, attribute ``(name, value)`` pair, one for text nodes,
and (optionally) one per whitespace-separated text token. Each bucket
is a list of ``(start, end, node_id, parent_id)`` entries sorted by the
node's *start code*. The paper's containment property makes this the
only order the query engine ever needs: start codes are unique,
compare lexicographically, and **start-code order is document order**,
so a bucket is simultaneously a name lookup, a document-order stream,
and one side of a sorted-interval merge (:mod:`repro.index.engine`).

Maintenance mirrors the incremental-label pattern of
:func:`repro.apply.inplace.apply_batch_in_place`: the index is built
once at open/restore, and every flush derives version N+1's index from
version N's by re-reading the *reduced PUL* the flush applied —
removed subtrees leave their buckets, surviving rename/replace-value
targets move buckets, freshly labeled subtrees enter theirs. Only the
touched buckets are copied (copy-on-write); untouched buckets are
shared by reference between versions, which is safe because a bucket
is immutable once published. Anything the delta cannot localize — a
whole-tree relabel, a ``sync`` fallback, a site with no label — falls
back to a full rebuild, exactly like the labeling it shadows.

The invariant the differential suite pins: at every published version,
the maintained index equals :meth:`DocumentIndex.build` run from
scratch on that version's tree and labeling.
"""

from __future__ import annotations

from bisect import insort

from repro.apply.inplace import (
    _PARENT_SITE_OPS,
    _REMOVING_OPS,
    _TARGET_SITE_OPS,
)
from repro.pul.ops import Rename, ReplaceChildren, ReplaceValue


def _tokenize(value):
    return value.split() if value else ()


class DocumentIndex:
    """Versioned per-document secondary index over label codes."""

    __slots__ = ("elements", "attributes", "values", "texts", "tokens")

    def __init__(self, elements=None, attributes=None, values=None,
                 texts=None, tokens=None):
        self.elements = elements if elements is not None else {}
        self.attributes = attributes if attributes is not None else {}
        self.values = values if values is not None else {}
        self.texts = texts if texts is not None else []
        #: token -> entries of text nodes containing the token; ``None``
        #: when the optional text-token index is disabled
        self.tokens = tokens

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(cls, document, labeling, text_tokens=False):
        """Index ``document`` from scratch against ``labeling``."""
        index = cls(tokens={} if text_tokens else None)
        root = document.root
        if root is None:
            return index
        for node in root.iter_subtree():
            index._add(node, labeling.label_of(node.node_id))
        index._sort()
        return index

    def _add(self, node, label):
        entry = (label.start, label.end, label.node_id, label.parent_id)
        if node.is_element:
            self.elements.setdefault(node.name, []).append(entry)
        elif node.is_attribute:
            self.attributes.setdefault(node.name, []).append(entry)
            self.values.setdefault(
                (node.name, node.value), []).append(entry)
        else:
            self.texts.append(entry)
            if self.tokens is not None:
                for token in _tokenize(node.value):
                    self.tokens.setdefault(token, []).append(entry)

    def _sort(self):
        for bucket in self.elements.values():
            bucket.sort()
        for bucket in self.attributes.values():
            bucket.sort()
        for bucket in self.values.values():
            bucket.sort()
        self.texts.sort()
        if self.tokens is not None:
            for bucket in self.tokens.values():
                bucket.sort()

    # -- incremental maintenance ----------------------------------------------

    def derive(self, old_document, new_document, new_labeling, reduced):
        """Derive the post-batch index from this (pre-batch) one.

        ``old_document`` is the still-intact previous published tree,
        ``new_document``/``new_labeling`` the working pair after
        :func:`~repro.apply.inplace.apply_batch_in_place` returned
        ``"incremental"``, and ``reduced`` the reduced PUL it applied.
        Returns a new :class:`DocumentIndex` sharing every untouched
        bucket with ``self``, or ``None`` when the delta cannot be
        derived (the caller rebuilds from scratch — always correct).

        The op scan mirrors the applier's site classification: removing
        ops and ``replaceChildren`` name the subtrees that left the
        tree; rename/replace-value targets may have moved buckets; the
        anchor sites' fresh (previously unknown) children and
        attributes are the inserted subtrees.
        """
        removed_ids = []
        touched_ids = []
        seen_touched = set()
        site_ids = []
        seen_sites = set()
        for op in reduced:
            target = old_document.find(op.target)
            if target is None:
                continue
            kind = op.op_name
            if kind in _TARGET_SITE_OPS:
                site = target
            elif kind in _PARENT_SITE_OPS:
                site = target.parent
                if site is None:
                    return None  # root-level change: applier synced
            else:
                site = None
            if site is not None and site.node_id not in seen_sites:
                seen_sites.add(site.node_id)
                site_ids.append(site.node_id)
            if kind in _REMOVING_OPS:
                removed_ids.extend(
                    n.node_id for n in target.iter_subtree())
            elif kind == ReplaceChildren.op_name:
                for child in target.children:
                    removed_ids.extend(
                        n.node_id for n in child.iter_subtree())
            elif kind in (Rename.op_name, ReplaceValue.op_name):
                if target.node_id not in seen_touched:
                    seen_touched.add(target.node_id)
                    touched_ids.append(target.node_id)

        removed_set = set(removed_ids)
        removals = {}   # bucket key -> set of node ids leaving it
        additions = {}  # bucket key -> [entry]

        def remove(node):
            for key in self._keys_for(node):
                removals.setdefault(key, set()).add(node.node_id)

        def add(node):
            label = new_labeling.find(node.node_id)
            if label is None:
                raise LookupError(node.node_id)
            entry = (label.start, label.end, label.node_id,
                     label.parent_id)
            for key in self._keys_for(node):
                additions.setdefault(key, []).append(entry)

        try:
            for node_id in removed_set:
                remove(old_document.get(node_id))
            for node_id in touched_ids:
                if node_id in removed_set:
                    continue
                old_keys = self._keys_for(old_document.get(node_id))
                new_node = new_document.find(node_id)
                if new_node is None:
                    return None
                new_keys = self._keys_for(new_node)
                if old_keys == new_keys:
                    continue
                label = new_labeling.find(node_id)
                if label is None:
                    return None
                entry = (label.start, label.end, label.node_id,
                         label.parent_id)
                for key in old_keys:
                    removals.setdefault(key, set()).add(node_id)
                for key in new_keys:
                    additions.setdefault(key, []).append(entry)
            for site_id in site_ids:
                site = new_document.find(site_id)
                if site is None:
                    continue  # the site itself was removed by a sibling op
                for item in (list(site.attributes)
                             + list(site.children)):
                    if item.node_id in old_document:
                        continue
                    for node in item.iter_subtree():
                        add(node)
        except LookupError:
            return None
        return self._rewrite(removals, additions)

    def _keys_for(self, node):
        """The bucket keys ``node`` occupies. A key is ``("e", name)``,
        ``("a", name)``, ``("v", name, value)``, ``("t",)`` or
        ``("k", token)``."""
        if node.is_element:
            return (("e", node.name),)
        if node.is_attribute:
            return (("a", node.name), ("v", node.name, node.value))
        keys = [("t",)]
        if self.tokens is not None:
            keys.extend(("k", token) for token in _tokenize(node.value))
        return tuple(keys)

    def _bucket_map(self, key):
        kind = key[0]
        if kind == "e":
            return self.elements, key[1]
        if kind == "a":
            return self.attributes, key[1]
        if kind == "v":
            return self.values, (key[1], key[2])
        if kind == "k":
            return self.tokens, key[1]
        return None, None  # ("t",): the single text bucket

    def _rewrite(self, removals, additions):
        """Copy-on-write application of the delta: only buckets named
        in ``removals``/``additions`` are copied; every other bucket is
        shared with ``self``."""
        new = DocumentIndex(
            elements=dict(self.elements),
            attributes=dict(self.attributes),
            values=dict(self.values),
            texts=self.texts,
            tokens=dict(self.tokens) if self.tokens is not None
            else None)
        for key in set(removals) | set(additions):
            mapping, name = new._bucket_map(key)
            if mapping is None:
                bucket = list(new.texts)
            else:
                bucket = list(mapping.get(name, ()))
            gone = removals.get(key)
            if gone:
                bucket = [e for e in bucket if e[2] not in gone]
            for entry in additions.get(key, ()):
                insort(bucket, entry)
            if mapping is None:
                new.texts = bucket
            elif bucket:
                mapping[name] = bucket
            else:
                # drop empty buckets so a derived index stays equal to
                # a from-scratch rebuild, which never creates them
                mapping.pop(name, None)
        return new

    # -- introspection --------------------------------------------------------

    def entry_count(self):
        return (sum(len(b) for b in self.elements.values())
                + sum(len(b) for b in self.attributes.values())
                + len(self.texts))

    def stats(self):
        return {
            "element_names": len(self.elements),
            "attribute_names": len(self.attributes),
            "value_keys": len(self.values),
            "text_nodes": len(self.texts),
            "tokens": (len(self.tokens)
                       if self.tokens is not None else None),
            "entries": self.entry_count(),
        }

    def as_dict(self):
        """Canonical comparable form (used by the parity suites)."""
        payload = {
            "elements": {name: list(bucket)
                         for name, bucket in self.elements.items()},
            "attributes": {name: list(bucket)
                           for name, bucket in self.attributes.items()},
            "values": {key: list(bucket)
                       for key, bucket in self.values.items()},
            "texts": list(self.texts),
        }
        if self.tokens is not None:
            payload["tokens"] = {token: list(bucket)
                                 for token, bucket in self.tokens.items()}
        return payload

    def __eq__(self, other):
        if not isinstance(other, DocumentIndex):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self):
        return ("DocumentIndex(names={}, entries={})"
                .format(len(self.elements), self.entry_count()))


def build_index(document, labeling, text_tokens=False):
    """Module-level alias of :meth:`DocumentIndex.build`."""
    return DocumentIndex.build(document, labeling,
                               text_tokens=text_tokens)
