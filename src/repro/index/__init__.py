"""Secondary indexes and cost-based query planning over label codes.

See :mod:`repro.index.structural` for the index and its incremental
maintenance, :mod:`repro.index.engine` for the sorted-interval merge
execution, and :mod:`repro.index.planner` for the per-step cost model
and the ``explain`` plan records.

The engine/planner half is imported lazily (PEP 562): the store's
flush path needs only :mod:`~repro.index.structural`, and must not
drag the query stack into store-only deployments.
"""

from repro.index.structural import DocumentIndex, build_index

__all__ = [
    "DocumentIndex",
    "build_index",
    "descendant_sweep",
    "execute_index_step",
    "run_query",
]


def __getattr__(name):
    if name in ("descendant_sweep", "execute_index_step"):
        from repro.index import engine
        return getattr(engine, name)
    if name == "run_query":
        from repro.index.planner import run_query
        return run_query
    raise AttributeError(
        "module {!r} has no attribute {!r}".format(__name__, name))
