"""Per-step cost-based choice between index scans and tree walks.

The cost model is deliberately tiny — two observable numbers per step:

* **index cost**: the name bucket's size (plus the context size for
  descendant merges, which sweep both lists once);
* **walk cost**: for child/attribute axes the *exact* candidate count
  (the context nodes' child/attribute list lengths are known without
  walking); for descendant axes the document size, the upper bound of
  the subtree the walker would traverse.

The planner picks the cheaper side per step (ties go to the index),
records every decision, and the recorded plan travels with the result
— the ``explain`` protocol op and ``repro store query --explain`` show
exactly which plan served a query, and the differential suite pins
that every choice is byte-identical to the walker.

Two rules override the cost model:

* a **positional predicate anywhere in the path** routes the whole
  query to the walker: ``[n]``/``[last()]`` select by the walker's
  accumulation order, which intermediate index steps (document order)
  would legally reorder;
* a step shape the index cannot answer (wildcards, ``node()`` tests)
  walks just that step — the surrounding steps still use their
  buckets.
"""

from __future__ import annotations

from repro.index.engine import (
    apply_predicates,
    execute_index_step,
    supported_bucket,
    walk_step,
)
from repro.xquery import ast
from repro.xquery.xpath import _Root, document_order, evaluate_path


def has_positional(path):
    """True when any top-level step carries a positional predicate."""
    return any(isinstance(predicate, ast.PositionPredicate)
               for step in path.steps
               for predicate in step.predicates)


def _walk_estimate(step, context, document):
    if step.axis == ast.CHILD:
        return sum(len(node.children) for node in context)
    if step.axis == ast.ATTRIBUTE:
        return sum(len(node.attributes) for node in context)
    return len(document)


def _decide(step, context, index, document, engine):
    """One step's plan record; ``record["choice"]`` drives execution."""
    record = {"step": repr(step)}
    bucket = supported_bucket(step, index)
    if bucket is None:
        record["choice"] = "walk"
        record["reason"] = "no bucket for this step shape"
        return record, None
    walk_cost = _walk_estimate(step, context, document)
    index_cost = len(bucket)
    if step.axis in (ast.DESCENDANT, ast.DESCENDANT_ATTRIBUTE):
        index_cost += len(context)
    record["bucket"] = len(bucket)
    record["est_index"] = index_cost
    record["est_walk"] = walk_cost
    if engine == "index" or index_cost <= walk_cost:
        record["choice"] = "index-scan"
        return record, bucket
    record["choice"] = "walk"
    record["reason"] = "context fan-out below bucket size"
    return record, None


def _walker_plan(path, engine, reason):
    return {
        "engine": engine,
        "mode": "walker",
        "reason": reason,
        "steps": [{"step": repr(step), "choice": "walk"}
                  for step in path.steps],
    }


def run_query(path, document, labeling=None, index=None, engine="auto"):
    """Evaluate ``path`` and return ``(nodes, plan)``.

    ``engine`` is ``"auto"`` (cost-based, the default), ``"walk"``
    (force the tree walker) or ``"index"`` (prefer buckets wherever the
    step shape allows). Every mode returns the same nodes — the plan
    only describes how they were found.
    """
    if engine not in ("auto", "walk", "index"):
        raise ValueError("unknown query engine {!r}".format(engine))
    if engine == "walk" or index is None or labeling is None:
        reason = ("forced by caller" if engine == "walk"
                  else "no index for this version")
        plan = _walker_plan(path, engine, reason)
        return evaluate_path(path, document=document,
                             labeling=labeling), plan
    if has_positional(path):
        plan = _walker_plan(
            path, engine,
            "positional predicate selects by walker accumulation order")
        return evaluate_path(path, document=document,
                             labeling=labeling), plan
    if document.root is None:
        # the walker owns the (typed) error for rootless documents
        plan = _walker_plan(path, engine, "document has no root")
        return evaluate_path(path, document=document,
                             labeling=labeling), plan
    plan = {"engine": engine, "steps": []}
    context = [_Root(document.root)]
    indexed_steps = 0
    for step in path.steps:
        record, bucket = _decide(step, context, index, document, engine)
        plan["steps"].append(record)
        if bucket is not None:
            context = execute_index_step(step, context, index, labeling,
                                         document)
            indexed_steps += 1
            if step.predicates:
                context, strategies = apply_predicates(
                    step, context, index)
                record["predicates"] = strategies
        else:
            context = walk_step(step, context)
        record["out"] = len(context)
        if not context:
            break
    plan["mode"] = ("indexed" if indexed_steps == len(plan["steps"])
                    and indexed_steps else
                    "mixed" if indexed_steps else "walker")
    return document_order(context, labeling), plan
