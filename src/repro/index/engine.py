"""Interval execution of path steps over index buckets.

Every primitive here is a sorted merge over label codes, replacing a
tree walk with work proportional to the touched buckets:

* **child / attribute steps** scan one name bucket and keep the entries
  whose ``parent_id`` is a context node — the label's parent pointer is
  the child axis, no tree access needed;
* **descendant steps** are the paper's containment test as a sweep:
  contexts and candidates are both sorted by start code, so one pass
  keeps each candidate whose interval is strictly inside some context
  interval (``ctx.start < cand.start`` and ``cand.end < ctx.end``);
* **descendant-attribute steps** test containment of the *owner's*
  interval, mirroring the walker's behaviour of yielding attributes of
  proper-descendant elements (a context node's own attributes are never
  selected by ``//@name``). Attribute start codes sit directly inside
  their owner's interval, so bucket order keeps owner starts
  non-decreasing and the same sweep applies.

Bucket entries are ``(start, end, node_id, parent_id)`` tuples; the
virtual document root (the walker's ``_Root``) is the interval
``("", None)`` — the empty string precedes every code and ``None``
stands for +infinity, so it strictly contains every node.

Exists/compare predicates are order-independent node filters and are
delegated to the walker's ``_apply_predicate`` — with one fast path:
``[@name = "literal"]`` against the attribute-value bucket. Positional
predicates are never handled here; the planner routes any path that
contains one to the walker wholesale, because their semantics depend
on the walker's accumulation order.
"""

from __future__ import annotations

from repro.xquery import ast
from repro.xquery.xpath import _apply_predicate, _evaluate_step, _Root

#: the virtual root's interval: contains every labeled node strictly
ROOT_INTERVAL = ("", None)


def node_interval(node, labeling):
    """``(start, end)`` of ``node``; the virtual root is ``("", None)``."""
    if isinstance(node, _Root):
        return ROOT_INTERVAL
    label = labeling.label_of(node.node_id)
    return (label.start, label.end)


def context_ids(context):
    """Parent-match keys of the context: the virtual root matches the
    labeling's ``parent_id is None`` convention for the root element."""
    return {None if isinstance(node, _Root) else node.node_id
            for node in context}


def child_scan(bucket, parent_ids):
    """Entries of ``bucket`` whose parent is a context node, in bucket
    (= document) order."""
    return [entry for entry in bucket if entry[3] in parent_ids]


def descendant_sweep(intervals, entries, key=None):
    """One-pass sorted-interval containment merge.

    ``intervals`` are ``(start, end)`` pairs sorted by start;
    ``entries`` are bucket entries whose test interval — ``key(entry)``
    when given, else the entry's own ``(start, end)`` — has
    non-decreasing start. Returns the entries strictly contained in at
    least one interval, preserving entry order. ``None`` ends are
    +infinity (the virtual root).
    """
    kept = []
    position = 0
    total = len(intervals)
    best_end = None       # max finite end among passed intervals
    unbounded = False     # a passed interval reaches +infinity
    for entry in entries:
        start, end = key(entry) if key is not None else (entry[0],
                                                         entry[1])
        while position < total and intervals[position][0] < start:
            passed_end = intervals[position][1]
            if passed_end is None:
                unbounded = True
            elif best_end is None or passed_end > best_end:
                best_end = passed_end
            position += 1
        if unbounded or (best_end is not None and end is not None
                         and end < best_end):
            kept.append(entry)
    return kept


def execute_index_step(step, context, index, labeling, document):
    """Run one supported step over the index; returns the selected
    nodes in document order. The planner guarantees the step shape is
    one :func:`supported_bucket` said yes to."""
    bucket = supported_bucket(step, index)
    if step.axis in (ast.CHILD, ast.ATTRIBUTE):
        entries = child_scan(bucket, context_ids(context))
    else:
        intervals = sorted(node_interval(node, labeling)
                           for node in context)
        if step.axis == ast.DESCENDANT_ATTRIBUTE:
            def owner_interval(entry):
                owner = labeling.label_of(entry[3])
                return (owner.start, owner.end)
            entries = descendant_sweep(intervals, bucket,
                                       key=owner_interval)
        else:
            entries = descendant_sweep(intervals, bucket)
    return [document.get(entry[2]) for entry in entries]


def supported_bucket(step, index):
    """The bucket a step can be answered from, or ``None`` when the
    step needs the walker (wildcards, ``node()`` tests)."""
    if step.axis in (ast.ATTRIBUTE, ast.DESCENDANT_ATTRIBUTE):
        if step.name is None:
            return None
        return index.attributes.get(step.name, [])
    if step.test == ast.TEXT_TEST:
        return index.texts
    if step.test == ast.ELEMENT_TEST and step.name is not None:
        return index.elements.get(step.name, [])
    return None


def value_filter_ids(predicate, index):
    """Owner ids satisfying ``[@name = "literal"]`` via the
    attribute-value bucket, or ``None`` when the predicate does not
    have that shape (the walker filter applies instead)."""
    if not isinstance(predicate, ast.ComparePredicate):
        return None
    path = predicate.path
    if path.absolute or len(path.steps) != 1:
        return None
    inner = path.steps[0]
    if (inner.axis != ast.ATTRIBUTE or inner.name is None
            or inner.predicates):
        return None
    bucket = index.values.get((inner.name, predicate.literal), ())
    return {entry[3] for entry in bucket}


def apply_predicates(step, nodes, index):
    """Apply a step's (non-positional) predicates to index-selected
    nodes; returns ``(nodes, strategies)`` where ``strategies`` names
    how each predicate ran (for the explain output)."""
    strategies = []
    for predicate in step.predicates:
        ids = value_filter_ids(predicate, index)
        if ids is not None:
            nodes = [node for node in nodes if node.node_id in ids]
            strategies.append("attr-value-index")
        else:
            nodes = _apply_predicate(predicate, nodes)
            strategies.append("walker")
    return nodes, strategies


def walk_step(step, context):
    """The walker's own step evaluation (predicates included)."""
    return _evaluate_step(step, context)
