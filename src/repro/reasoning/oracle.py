"""Structural oracles: Table 1 predicates over operation targets.

:class:`LabelOracle` answers from the extended labels carried by PULs —
the document-independent mode the paper's executor uses.
:class:`DocumentOracle` answers from a live :class:`Document`; it exists so
that local reasoning (and the test suite, which cross-checks the two) does
not need to build labels first.

Both expose, besides the predicates, a total ``order_key`` consistent with
document order and a containment ``interval`` used by the sweep passes of
the reduction and integration algorithms.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.xdm.node import NodeType


class StructuralOracle:
    """Interface: structural facts about (original-document) node ids."""

    def knows(self, node_id):
        """Whether the oracle has information about ``node_id``."""
        raise NotImplementedError

    def node_type(self, node_id):
        raise NotImplementedError

    def parent(self, node_id):
        raise NotImplementedError

    def left_sibling(self, node_id):
        raise NotImplementedError

    def right_sibling(self, node_id):
        raise NotImplementedError

    def order_key(self, node_id):
        """Sortable key realizing document order over targets."""
        raise NotImplementedError

    def interval(self, node_id):
        """``(lo, hi)`` with the containment property: ``v1`` is a proper
        descendant of ``v2`` iff ``lo2 < lo1`` and ``hi1 < hi2``."""
        raise NotImplementedError

    # -- derived predicates (Table 1) ---------------------------------------

    def is_attribute(self, node_id):
        return self.node_type(node_id) is NodeType.ATTRIBUTE

    def is_descendant(self, node_id, ancestor_id):
        """``v1 //d v2``."""
        lo1, hi1 = self.interval(node_id)
        lo2, hi2 = self.interval(ancestor_id)
        return lo2 < lo1 and hi1 < hi2

    def is_child(self, node_id, parent_id):
        """``v1 /c v2``."""
        return (not self.is_attribute(node_id)
                and self.parent(node_id) == parent_id)

    def is_attribute_of(self, node_id, element_id):
        """``v1 /a v2``."""
        return (self.is_attribute(node_id)
                and self.parent(node_id) == element_id)

    def is_left_sibling(self, node_id, other_id):
        """``v1 s v2``."""
        return self.left_sibling(other_id) == node_id

    def is_first_child(self, node_id, parent_id):
        """``v1 /<-c v2``."""
        return (self.is_child(node_id, parent_id)
                and self.left_sibling(node_id) is None)

    def is_last_child(self, node_id, parent_id):
        """``v1 /->c v2``."""
        return (self.is_child(node_id, parent_id)
                and self.right_sibling(node_id) is None)

    def is_nonattr_descendant(self, node_id, ancestor_id):
        """``v1 //¬a_d v2``: descendant but not an attribute of v2 — the
        nodes wiped by a ``repC`` on v2."""
        return (self.is_descendant(node_id, ancestor_id)
                and not self.is_attribute_of(node_id, ancestor_id))


class LabelOracle(StructuralOracle):
    """Oracle over a ``node id -> ExtendedLabel`` mapping (e.g.
    ``pul.labels``)."""

    def __init__(self, labels):
        self._labels = dict(labels)

    def add(self, labels):
        """Merge further labels in (integration joins several PULs)."""
        self._labels.update(labels)
        return self

    def _label(self, node_id):
        try:
            return self._labels[node_id]
        except KeyError:
            raise ReproError(
                "no structural information for node {} — the PUL does not "
                "carry its label".format(node_id)) from None

    def knows(self, node_id):
        return node_id in self._labels

    def node_type(self, node_id):
        return self._label(node_id).node_type

    def parent(self, node_id):
        return self._label(node_id).parent_id

    def left_sibling(self, node_id):
        return self._label(node_id).left_sibling_id

    def right_sibling(self, node_id):
        return self._label(node_id).right_sibling_id

    def order_key(self, node_id):
        return self._label(node_id).start

    def interval(self, node_id):
        label = self._label(node_id)
        return (label.start, label.end)


class DocumentOracle(StructuralOracle):
    """Oracle over a live document (local reasoning / test cross-checks).

    Structural facts are snapshotted eagerly, so the oracle keeps answering
    about the *original* document even while an evaluator mutates it.
    """

    def __init__(self, document):
        self._types = {}
        self._parents = {}
        self._lefts = {}
        self._rights = {}
        self._intervals = {}
        counter = 0
        if document.root is None:
            return
        stack = [(document.root, False)]
        open_marks = {}
        while stack:
            node, closing = stack.pop()
            if closing:
                self._intervals[node.node_id] = (
                    open_marks.pop(node.node_id), counter)
                counter += 1
                continue
            open_marks[node.node_id] = counter
            counter += 1
            stack.append((node, True))
            if node.is_element:
                for attr in node.attributes:
                    self._intervals[attr.node_id] = (counter, counter + 1)
                    counter += 2
                    self._register(attr)
                for child in reversed(node.children):
                    stack.append((child, False))
            self._register(node)

    def _register(self, node):
        self._types[node.node_id] = node.node_type
        parent = node.parent
        self._parents[node.node_id] = \
            parent.node_id if parent is not None else None
        left = right = None
        if parent is not None and not node.is_attribute:
            siblings = parent.children
            index = siblings.index(node)
            if index > 0:
                left = siblings[index - 1].node_id
            if index + 1 < len(siblings):
                right = siblings[index + 1].node_id
        self._lefts[node.node_id] = left
        self._rights[node.node_id] = right

    def _lookup(self, table, node_id):
        try:
            return table[node_id]
        except KeyError:
            raise ReproError(
                "node {} not in the oracle's document".format(
                    node_id)) from None

    def knows(self, node_id):
        return node_id in self._types

    def node_type(self, node_id):
        return self._lookup(self._types, node_id)

    def parent(self, node_id):
        return self._lookup(self._parents, node_id)

    def left_sibling(self, node_id):
        return self._lookup(self._lefts, node_id)

    def right_sibling(self, node_id):
        return self._lookup(self._rights, node_id)

    def order_key(self, node_id):
        return self._lookup(self._intervals, node_id)[0]

    def interval(self, node_id):
        return self._lookup(self._intervals, node_id)


def oracle_for(source):
    """Build the right oracle: a PUL/label mapping, a document, several
    PULs (their label unions), or an oracle passed through unchanged."""
    from repro.pul.pul import PUL
    from repro.xdm.document import Document

    if isinstance(source, StructuralOracle):
        return source
    if isinstance(source, Document):
        return DocumentOracle(source)
    if isinstance(source, PUL):
        return LabelOracle(source.labels)
    if isinstance(source, dict):
        return LabelOracle(source)
    if isinstance(source, (list, tuple)):
        labels = {}
        for pul in source:
            labels.update(pul.labels)
        return LabelOracle(labels)
    raise TypeError("cannot build an oracle from {!r}".format(source))
