"""Shared infrastructure of the three reasoning operators.

The reasoning of Sections 3.1–3.3 never touches the document: every
structural question it asks about target nodes goes through a
:class:`~repro.reasoning.oracle.StructuralOracle` — normally backed by the
extended labels the PUL carries, or (mainly for tests and local use) by a
live document.
"""

from repro.reasoning.oracle import (
    DocumentOracle,
    LabelOracle,
    StructuralOracle,
    oracle_for,
)

__all__ = [
    "StructuralOracle",
    "LabelOracle",
    "DocumentOracle",
    "oracle_for",
]
