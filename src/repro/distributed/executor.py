"""The PUL executor node.

The executor holds the authoritative version of a document (one executor
per document, as in the paper). It hands out snapshots with disjoint
identifier spaces, collects PULs, reasons on them *without* touching the
document (reduction / integration / aggregation over the labels carried by
the PULs), and finally makes them effective — streaming by default.
"""

from __future__ import annotations

from repro.aggregation import aggregate
from repro.apply.events import document_events, events_to_document
from repro.apply.streaming import apply_streaming
from repro.distributed.messages import (
    DocumentSnapshot,
    PULMessage,
    ShardEnvelope,
)
from repro.errors import ReproError
from repro.integration import integrate, reconcile
from repro.labeling.scheme import ContainmentLabeling
from repro.pipeline.merge import merge_shards
from repro.pipeline.parallel import ParallelReducer
from repro.pipeline.shard import shard_pul
from repro.pul.semantics import apply_pul
from repro.pul.serialize import pul_from_xml, pul_to_xml
from repro.reduction import reduce_deterministic
from repro.xdm.parser import parse_document
from repro.xdm.serializer import serialize

#: producers get disjoint id bands above this base
_PRODUCER_ID_BASE = 1_000_000_000
#: width of each producer's identifier band — registration order never
#: matters, and a producer would need a billion local inserts to overflow
_PRODUCER_ID_BAND = 1_000_000_000


class Executor:
    """The node holding the master copy of one document."""

    def __init__(self, document, streaming=True):
        if isinstance(document, str):
            document = parse_document(document)
        self.document = document
        self.labeling = ContainmentLabeling().build(document)
        self.version = 0
        self.streaming = streaming
        self.policies = {}
        self._producers = []
        #: warm ParallelReducer pools, keyed (workers, backend)
        self._reducers = {}

    # -- producer management ----------------------------------------------------

    def register_producer(self, name, policy=None):
        """Assign the producer its identifier space; returns its index."""
        if name in self._producers:
            raise ReproError("producer {!r} already registered".format(
                name))
        self._producers.append(name)
        if policy is not None:
            self.policies[name] = policy
        return len(self._producers) - 1

    def snapshot_for(self, name):
        """A checkout of the current authoritative version for ``name``."""
        if name not in self._producers:
            raise ReproError("unknown producer {!r}".format(name))
        index = self._producers.index(name)
        return DocumentSnapshot(
            text=serialize(self.document),
            version=self.version,
            id_start=_PRODUCER_ID_BASE + index * _PRODUCER_ID_BAND,
            id_stride=1,
        )

    # -- PUL intake ----------------------------------------------------------------

    def receive(self, message):
        """Deserialize one PUL message."""
        pul = pul_from_xml(message.payload)
        if pul.origin is None:
            pul.origin = message.origin
        return pul

    def execute(self, pul, reduce_first=False):
        """Make one PUL effective on the authoritative copy."""
        if reduce_first:
            pul = reduce_deterministic(pul)
        if self.streaming:
            output = apply_streaming(
                document_events(self.document), pul,
                fresh_start=self.document.allocator.next_value,
                labeling=self.labeling)
            # carrying the allocator over keeps removed-node identifiers
            # burned across versions (a fresh allocator would restart at
            # the highest *live* id and could resurrect them)
            self.document = events_to_document(
                output, allocator=self.document.allocator)
        else:
            apply_pul(self.document, pul, preserve_ids=True)
            self.labeling.sync(self.document)
        self.version += 1
        return self.version

    # -- reasoning entry points -------------------------------------------------------

    def execute_parallel(self, messages, reduce_first=False):
        """Integrate + reconcile PULs produced against the same version,
        then execute the reconciled PUL.

        Returns ``(version, conflicts)`` — the conflicts that had to be
        reconciled (empty when the PULs merged cleanly).
        """
        puls = [self.receive(m) for m in messages]
        bases = {m.base_version for m in messages}
        if len(bases) > 1:
            raise ReproError(
                "parallel PULs must share the base version, got {}"
                .format(sorted(bases)))
        result = integrate(puls)
        reconciled = reconcile(puls, policies=self.policies)
        version = self.execute(reconciled, reduce_first=reduce_first)
        return version, result.conflicts

    def execute_sequential(self, messages, reduce_first=False):
        """Aggregate a producer's PUL sequence into one delta and execute
        it in a single pass."""
        ordered = sorted(messages, key=lambda m: m.sequence)
        puls = [self.receive(m) for m in ordered]
        combined = aggregate(puls)
        return self.execute(combined, reduce_first=reduce_first)

    # -- sharded pipeline ---------------------------------------------------------

    def dispatch_shards(self, pul, num_shards, network=None):
        """Partition ``pul`` into independent shards and wrap them as
        :class:`ShardEnvelope` messages in shard order.

        When a :class:`~repro.distributed.network.SimulatedNetwork` is
        given, every envelope is sent executor → its reduction worker, so
        the sharding traffic shows up in the network's cost model.
        """
        pul = pul.copy()
        pul.attach_labels(self.labeling)
        shards = shard_pul(pul, num_shards)
        envelopes = []
        for index, shard in enumerate(shards):
            envelope = ShardEnvelope(
                pul_to_xml(shard), origin=pul.origin,
                shard_index=index, shard_count=len(shards),
                base_version=self.version)
            if network is not None:
                network.send("executor", "reducer-{}".format(index),
                             envelope, kind="shard")
            envelopes.append(envelope)
        return envelopes

    def execute_pipeline(self, source, workers=2, backend="process",
                         num_shards=None, network=None):
        """Make one PUL effective through the sharded parallel pipeline.

        ``source`` is a PUL or a :class:`PULMessage`. The PUL is
        partitioned with :func:`~repro.pipeline.shard.shard_pul`, the
        shards are round-tripped through the exchange format (and, when
        ``network`` is given, through its cost model), reduced
        concurrently, merged in shard order, and applied through the
        executor's normal effectivity path.

        Returns ``(version, outcome)`` with the
        :class:`~repro.pipeline.parallel.ReduceOutcome` telemetry.
        """
        pul = self.receive(source) if isinstance(source, PULMessage) \
            else source
        envelopes = self.dispatch_shards(pul, num_shards or workers,
                                         network=network)
        shards = [pul_from_xml(envelope.payload) for envelope in envelopes]
        key = (workers, backend)
        if key not in self._reducers:
            self._reducers[key] = ParallelReducer(workers=workers,
                                                  backend=backend)
        outcome = self._reducers[key].reduce_shards(shards)
        merged = merge_shards(outcome.reduced)
        version = self.execute(merged)
        return version, outcome

    def close(self):
        """Shut down the warm reduction pools (idempotent)."""
        for reducer in self._reducers.values():
            reducer.close()
        self._reducers.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- inspection ----------------------------------------------------------------------

    def text(self):
        if self.document.root is None:
            return ""
        return serialize(self.document)
