"""The decoupled producer/executor architecture (Section 4).

One *executor* holds the authoritative version of a document; any number
of *producers* hold local copies, evaluate XQuery Update expressions on
them, and ship the resulting PULs (serialized as XML, with labels) to the
executor, which reasons on them — reduction, integration + reconciliation
for parallel requests, aggregation for sequential ones — and makes them
effective (streaming or in-memory).

A simulated network (latency + bandwidth cost model) accounts for the
"additional costs in serializing and exchanging PULs" the paper notes,
and powers the distribution-aware experiments the paper leaves as future
work.
"""

from repro.distributed.messages import PULMessage, DocumentSnapshot
from repro.distributed.network import SimulatedNetwork
from repro.distributed.producer import Producer
from repro.distributed.executor import Executor

__all__ = [
    "PULMessage",
    "DocumentSnapshot",
    "SimulatedNetwork",
    "Producer",
    "Executor",
]
