"""A simulated network with a latency + bandwidth cost model.

The paper observes that decoupling PUL production from execution "introduces
additional costs in serializing and exchanging PULs on the network". This
virtual clock makes those costs explicit and measurable without real
sockets: each transfer advances the clock by ``latency + size/bandwidth``
and is recorded in a transfer log.
"""

from __future__ import annotations


class TransferRecord:
    __slots__ = ("sender", "receiver", "kind", "size_bytes", "duration")

    def __init__(self, sender, receiver, kind, size_bytes, duration):
        self.sender = sender
        self.receiver = receiver
        self.kind = kind
        self.size_bytes = size_bytes
        self.duration = duration

    def __repr__(self):
        return "{} -> {} [{}] {} bytes in {:.4f}s".format(
            self.sender, self.receiver, self.kind, self.size_bytes,
            self.duration)


class SimulatedNetwork:
    """Virtual-time message fabric.

    Parameters
    ----------
    latency:
        One-way latency in (virtual) seconds per transfer.
    bandwidth:
        Bytes per virtual second.
    """

    def __init__(self, latency=0.010, bandwidth=12_500_000):
        self.latency = latency
        self.bandwidth = bandwidth
        self.clock = 0.0
        self.log = []

    def send(self, sender, receiver, message, kind="pul"):
        """Deliver ``message`` (anything with ``size_bytes()``), advancing
        the virtual clock; returns the message for chaining."""
        size = message.size_bytes()
        duration = self.latency + size / float(self.bandwidth)
        self.clock += duration
        self.log.append(TransferRecord(sender, receiver, kind, size,
                                       duration))
        return message

    @property
    def bytes_transferred(self):
        return sum(record.size_bytes for record in self.log)

    def summary(self):
        """Aggregate statistics of the traffic so far."""
        by_kind = {}
        for record in self.log:
            stats = by_kind.setdefault(record.kind,
                                       {"count": 0, "bytes": 0,
                                        "time": 0.0})
            stats["count"] += 1
            stats["bytes"] += record.size_bytes
            stats["time"] += record.duration
        return {
            "clock": self.clock,
            "transfers": len(self.log),
            "bytes": self.bytes_transferred,
            "by_kind": by_kind,
        }
