"""The PUL producer node.

A producer checks out a document snapshot, evaluates XQuery Update
expressions on its local copy (yielding PULs rather than updates — the
modified-Qizx behaviour), optionally applies them locally to keep working
(disconnected scenario, with identifiers drawn from its assigned id
space), and ships serialized PULs back to the executor.
"""

from __future__ import annotations

from repro.distributed.messages import PULMessage
from repro.errors import ReproError
from repro.labeling.scheme import ContainmentLabeling
from repro.pul.semantics import apply_pul
from repro.pul.serialize import pul_to_xml
from repro.xdm.document import IdAllocator
from repro.xdm.parser import parse_document
from repro.aggregation import aggregate as aggregate_puls


class Producer:
    """A node producing PULs against a checked-out document."""

    def __init__(self, name):
        self.name = name
        self.document = None
        self.labeling = None
        self.version = None
        self._sequence = 0
        self._new_id_allocator = None

    # -- checkout ------------------------------------------------------------

    def checkout(self, snapshot):
        """Install a :class:`DocumentSnapshot` as the local working copy."""
        self.document = parse_document(snapshot.text)
        self.labeling = ContainmentLabeling().build(self.document)
        self.version = snapshot.version
        self._sequence = 0
        # identifiers for locally inserted nodes come from the assigned
        # identification space, so producers never clash (Section 4.1)
        self._new_id_allocator = IdAllocator(
            start=snapshot.id_start, stride=snapshot.id_stride)
        return self.document

    def _require_checkout(self):
        if self.document is None:
            raise ReproError(
                "producer {!r} has no checked-out document".format(
                    self.name))

    # -- PUL production --------------------------------------------------------

    def produce(self, query):
        """Evaluate an updating expression; returns the PUL (labels
        attached), without touching the local copy."""
        self._require_checkout()
        from repro.xquery import compile_pul
        return compile_pul(query, self.document, labeling=self.labeling,
                           origin=self.name)

    def produce_and_apply(self, query):
        """Disconnected mode: produce a PUL, stamp producer ids on its new
        nodes, apply it locally, and remember it for later shipping."""
        pul = self.produce(query)
        for op in pul:
            for tree in op.trees:
                for node in tree.iter_subtree():
                    if node.node_id is None:
                        node.node_id = self._new_id_allocator.allocate()
        apply_pul(self.document, pul, preserve_ids=True)
        self.labeling.sync(self.document)
        pul.attach_labels(self.labeling)
        return pul

    def message_for(self, pul):
        """Wrap a PUL for the wire."""
        message = PULMessage(pul_to_xml(pul), origin=self.name,
                             sequence=self._sequence,
                             base_version=self.version)
        self._sequence += 1
        return message

    def aggregate_session(self, puls):
        """Collapse a local sequence of PULs into one delta before
        shipping (the disconnected-reconnection optimization)."""
        return aggregate_puls(puls)
