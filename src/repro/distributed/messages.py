"""Messages exchanged between producers and the executor.

Everything on the wire is text: PULs travel in the XML exchange format of
:mod:`repro.pul.serialize`; documents travel serialized with identifiers
and labels stored inline (the prototype choice discussed in Section 6).
"""

from __future__ import annotations


class PULMessage:
    """A PUL in transit.

    ``sequence`` orders the PULs of one producer (sequential intent);
    ``base_version`` is the document version the PUL was produced against
    (parallel intent groups PULs by base version). ``doc_id`` names the
    resident document the PUL targets — ``None`` for the single-document
    executor, a store key when addressing a
    :class:`~repro.store.store.DocumentStore`.
    """

    __slots__ = ("payload", "origin", "sequence", "base_version", "doc_id")

    def __init__(self, payload, origin, sequence=0, base_version=0,
                 doc_id=None):
        self.payload = payload
        self.origin = origin
        self.sequence = sequence
        self.base_version = base_version
        self.doc_id = doc_id

    def size_bytes(self):
        return len(self.payload.encode("utf-8"))

    def __repr__(self):
        doc = "" if self.doc_id is None else \
            ", doc={!r}".format(self.doc_id)
        return "PULMessage(origin={!r}, seq={}, base=v{}{}, {} bytes)" \
            .format(self.origin, self.sequence, self.base_version, doc,
                    self.size_bytes())


class ShardEnvelope:
    """One shard of a partitioned PUL in transit to a reduction worker.

    ``shard_index`` / ``shard_count`` identify the shard's position in the
    batch (results must be merged in shard order); ``base_version`` is the
    document version the parent PUL was produced against. ``doc_id``
    names the resident store document the shard belongs to, so reduction
    workers serving a multi-document store can address their results.
    """

    __slots__ = ("payload", "origin", "shard_index", "shard_count",
                 "base_version", "doc_id")

    def __init__(self, payload, origin, shard_index, shard_count,
                 base_version=0, doc_id=None):
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                "shard_index {} out of range for {} shards".format(
                    shard_index, shard_count))
        self.payload = payload
        self.origin = origin
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.base_version = base_version
        self.doc_id = doc_id

    def size_bytes(self):
        return len(self.payload.encode("utf-8"))

    def __repr__(self):
        doc = "" if self.doc_id is None else \
            ", doc={!r}".format(self.doc_id)
        return "ShardEnvelope(origin={!r}, shard={}/{}, base=v{}{}, " \
            "{} bytes)".format(self.origin, self.shard_index,
                               self.shard_count, self.base_version, doc,
                               self.size_bytes())


class DocumentSnapshot:
    """A full document checkout: serialized text (ids derivable by
    document order), the version number, and the id-space assignment for
    the receiving producer."""

    __slots__ = ("text", "version", "id_start", "id_stride")

    def __init__(self, text, version, id_start, id_stride):
        self.text = text
        self.version = version
        self.id_start = id_start
        self.id_stride = id_stride

    def size_bytes(self):
        return len(self.text.encode("utf-8"))

    def __repr__(self):
        return "DocumentSnapshot(v{}, {} bytes)".format(
            self.version, self.size_bytes())
