"""Navigation helpers: document order, axes and structural predicates.

These operate on live trees (parent/children pointers). The reasoning
modules never use them — they work on labels only (see
:mod:`repro.labeling`) — but the evaluators, the XPath engine and the test
oracles do. The test suite cross-checks every Table 1 predicate computed
from labels against the tree-based implementation found here.
"""

from __future__ import annotations


def document_position(node):
    """Return the path of child indexes from the root to ``node``.

    Attribute nodes sort right after their owner element, keyed by their
    position in the attribute list (the relative order of attributes is not
    semantically relevant, but a total order is convenient for canonical
    output). Tuples compare lexicographically, yielding document order.
    """
    path = []
    current = node
    while current.parent is not None:
        parent = current.parent
        if current.is_attribute:
            path.append((0, parent.attributes.index(current)))
        else:
            path.append((1, parent.children.index(current)))
        current = parent
    path.reverse()
    return tuple(path)


def compare_document_order(node1, node2):
    """Return -1/0/1 as ``node1`` precedes/equals/follows ``node2``."""
    pos1, pos2 = document_position(node1), document_position(node2)
    if pos1 < pos2:
        return -1
    if pos1 > pos2:
        return 1
    return 0


def precedes(node1, node2):
    """``node1`` strictly precedes ``node2`` in document order."""
    return compare_document_order(node1, node2) < 0


def is_ancestor(ancestor, descendant):
    """``ancestor`` is a proper ancestor of ``descendant``."""
    current = descendant.parent
    while current is not None:
        if current is ancestor:
            return True
        current = current.parent
    return False


def is_parent(parent, child):
    """``parent`` is the parent of ``child`` (child axis, not attributes)."""
    return child.parent is parent and not child.is_attribute


def is_attribute_of(attr, element):
    """``attr`` is an attribute node of ``element``."""
    return attr.is_attribute and attr.parent is element


def left_sibling(node):
    """The sibling immediately preceding ``node``, or ``None``."""
    parent = node.parent
    if parent is None or node.is_attribute:
        return None
    index = parent.children.index(node)
    if index == 0:
        return None
    return parent.children[index - 1]


def right_sibling(node):
    """The sibling immediately following ``node``, or ``None``."""
    parent = node.parent
    if parent is None or node.is_attribute:
        return None
    index = parent.children.index(node)
    if index + 1 >= len(parent.children):
        return None
    return parent.children[index + 1]


def is_left_sibling(node1, node2):
    """``node1 s node2``: ``node1`` is the left sibling of ``node2``."""
    return left_sibling(node2) is node1


def is_first_child(node):
    """``node`` is the first (non-attribute) child of its parent."""
    parent = node.parent
    return (parent is not None and not node.is_attribute
            and parent.children and parent.children[0] is node)


def is_last_child(node):
    """``node`` is the last (non-attribute) child of its parent."""
    parent = node.parent
    return (parent is not None and not node.is_attribute
            and parent.children and parent.children[-1] is node)


def depth(node):
    """Number of ancestors of ``node`` (root has depth 0)."""
    count = 0
    current = node.parent
    while current is not None:
        count += 1
        current = current.parent
    return count
