"""Structural comparison of nodes and documents.

Two flavours are provided:

* *value* comparison — ignores node identifiers; this is XML deep-equality
  (used, e.g., to compare the outputs of the two evaluators structurally);
* *identified* comparison — also requires identical node ids (used to check
  that the streaming and in-memory evaluators assign identifiers to new
  nodes consistently).

Attribute order is never significant: attributes are compared as
name -> value maps, per the XDM model (Figure 1's dotted edges).
"""

from __future__ import annotations


def canonical_string(node, with_ids=False):
    """A canonical, order-normalized serialization of a subtree.

    Attributes are sorted by name so that documents differing only in
    attribute order canonicalize identically. Suitable as a set/dict key
    when enumerating obtainable documents.
    """
    parts = []
    _canonicalize(node, parts, with_ids)
    return "".join(parts)


def _canonicalize(node, parts, with_ids):
    ident = str(node.node_id) if (with_ids and node.node_id is not None) \
        else ""
    if node.is_text:
        parts.append("(t")
        parts.append(ident)
        parts.append(":")
        parts.append(node.value)
        parts.append(")")
        return
    if node.is_attribute:
        parts.append("(a")
        parts.append(ident)
        parts.append(":")
        parts.append(node.name)
        parts.append("=")
        parts.append(node.value)
        parts.append(")")
        return
    parts.append("(e")
    parts.append(ident)
    parts.append(":")
    parts.append(node.name)
    for attr in sorted(node.attributes, key=lambda a: (a.name, a.value)):
        _canonicalize(attr, parts, with_ids)
    for child in node.children:
        _canonicalize(child, parts, with_ids)
    parts.append(")")


def nodes_equal(node1, node2, with_ids=False):
    """Deep equality of two subtrees (attribute order insensitive)."""
    return (canonical_string(node1, with_ids=with_ids)
            == canonical_string(node2, with_ids=with_ids))


def forests_equal(trees1, trees2, with_ids=False):
    """Deep equality of two ordered lists of trees."""
    if len(trees1) != len(trees2):
        return False
    return all(nodes_equal(a, b, with_ids=with_ids)
               for a, b in zip(trees1, trees2))


def documents_equal(doc1, doc2, with_ids=False):
    """Deep equality of two documents."""
    if doc1.root is None or doc2.root is None:
        return doc1.root is doc2.root
    return nodes_equal(doc1.root, doc2.root, with_ids=with_ids)
