"""The document abstraction: ``D = (V, gamma, lambda, nu)``.

A :class:`Document` owns a tree of :class:`~repro.xdm.node.Node` objects and
maintains the properties the paper requires of node identity (Section 4.1):

* every node carries a unique integer identifier;
* identifiers are immutable and never reused — deleting a node does not
  recycle its id;
* identifiers can be allocated from disjoint *identifier spaces* so that
  independent producers never clash (``IdAllocator`` with a stride).
"""

from __future__ import annotations

from repro.errors import DocumentError, UnknownNodeError


class IdAllocator:
    """Allocates unique, never-reused node identifiers.

    ``IdAllocator(start=k, stride=n)`` yields ``k, k+n, k+2n, ...`` which
    realizes the paper's "each producer has an assigned identification
    space" scheme: producer ``i`` of ``n`` uses ``start=i, stride=n``.
    """

    def __init__(self, start=0, stride=1):
        if stride < 1:
            raise DocumentError("stride must be positive")
        self._next = start
        self._stride = stride

    def allocate(self):
        """Return a fresh identifier."""
        value = self._next
        self._next += self._stride
        return value

    def reserve_at_least(self, floor):
        """Ensure no identifier below ``floor`` is handed out anymore."""
        if self._next >= floor:
            return
        steps = -(-(floor - self._next) // self._stride)
        self._next += steps * self._stride

    @property
    def next_value(self):
        return self._next

    @property
    def stride(self):
        return self._stride


class Document:
    """A rooted XML document with identified nodes.

    The index ``V`` (``node_by_id``) gives O(1) access from identifiers to
    nodes; it is kept consistent by the mutation helpers, which are the only
    supported way to restructure an attached tree.
    """

    def __init__(self, root=None, allocator=None):
        self._allocator = allocator or IdAllocator()
        self._nodes = {}
        self.root = None
        if root is not None:
            self.set_root(root)

    # -- identity ----------------------------------------------------------

    @property
    def allocator(self):
        return self._allocator

    def fresh_id(self):
        """Allocate an identifier unused by this document (and never reused)."""
        while True:
            candidate = self._allocator.allocate()
            if candidate not in self._nodes:
                return candidate

    # -- node access -------------------------------------------------------

    def __contains__(self, node_id):
        return node_id in self._nodes

    def __len__(self):
        return len(self._nodes)

    def get(self, node_id):
        """Return the node with ``node_id`` or raise UnknownNodeError."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def find(self, node_id):
        """Return the node with ``node_id`` or ``None``."""
        return self._nodes.get(node_id)

    def node_ids(self):
        """Return a view over all live node ids."""
        return self._nodes.keys()

    def nodes(self):
        """Iterate over all live nodes in document order."""
        if self.root is None:
            return iter(())
        return self.root.iter_subtree()

    # -- construction ------------------------------------------------------

    def set_root(self, root):
        """Install ``root`` (a detached element) as the document root,
        registering its whole subtree (assigning ids where missing)."""
        if self.root is not None:
            raise DocumentError("document already has a root")
        if not root.is_element:
            raise DocumentError("document root must be an element")
        if root.parent is not None:
            raise DocumentError("root must be detached")
        self.root = root
        self.register_tree(root)
        return root

    def register_tree(self, root):
        """Register every node of ``root``'s subtree in the id index,
        allocating identifiers for nodes lacking one."""
        for node in root.iter_subtree():
            if node.node_id is None:
                node.node_id = self.fresh_id()
            elif node.node_id in self._nodes and \
                    self._nodes[node.node_id] is not node:
                raise DocumentError(
                    "duplicate node id: {}".format(node.node_id))
            self._nodes[node.node_id] = node
        self._allocator.reserve_at_least(
            1 + max((n.node_id for n in root.iter_subtree()
                     if isinstance(n.node_id, int)), default=-1))

    def unregister_tree(self, root):
        """Drop every node of ``root``'s subtree from the id index.

        Their identifiers remain burned (never reassigned)."""
        for node in root.iter_subtree():
            self._nodes.pop(node.node_id, None)

    def forget_ids(self, node_ids):
        """Drop ``node_ids`` from the id index (identifiers stay burned).

        The incremental counterpart of :meth:`rebuild_index` for removed
        subtrees whose nodes the caller enumerated before detaching them
        (the in-place batch applier works this way)."""
        for node_id in node_ids:
            self._nodes.pop(node_id, None)

    # -- mutation helpers (index-preserving) --------------------------------

    def detach_node(self, node):
        """Detach ``node`` from its parent and unregister its subtree."""
        node.detach()
        self.unregister_tree(node)
        return node

    def insert_children(self, parent, index, trees):
        """Insert detached ``trees`` as children of ``parent`` at ``index``,
        registering them."""
        for offset, tree in enumerate(trees):
            parent.insert_child(index + offset, tree)
            self.register_tree(tree)

    def append_attributes(self, element, attrs):
        """Attach detached attribute nodes to ``element``, registering them."""
        for attr in attrs:
            element.append_attribute(attr)
            self.register_tree(attr)

    def replace_node(self, node, trees):
        """Replace ``node`` with the detached ``trees`` (possibly empty)."""
        parent = node.parent
        if parent is None:
            raise DocumentError("cannot replace a detached or root node")
        if node.is_attribute:
            position = parent.attributes.index(node)
            self.detach_node(node)
            for offset, tree in enumerate(trees):
                tree.parent = parent
                parent.attributes.insert(position + offset, tree)
                self.register_tree(tree)
        else:
            position = parent.children.index(node)
            self.detach_node(node)
            self.insert_children(parent, position, trees)

    def rebuild_index(self):
        """Re-derive the id index from the live tree.

        Used after bulk structural edits performed directly on nodes (the
        PUL evaluator works this way): unreachable nodes are dropped from
        the index (their ids stay burned) and nodes without an identifier
        receive fresh ones **in document order**, which makes id assignment
        deterministic and identical across evaluators.
        """
        self._nodes = {}
        if self.root is None:
            return
        highest = -1
        for node in self.root.iter_subtree():
            if node.node_id is not None:
                if node.node_id in self._nodes:
                    raise DocumentError(
                        "duplicate node id: {}".format(node.node_id))
                self._nodes[node.node_id] = node
                if node.node_id > highest:
                    highest = node.node_id
        self._allocator.reserve_at_least(highest + 1)
        for node in self.root.iter_subtree():
            if node.node_id is None:
                node.node_id = self.fresh_id()
                self._nodes[node.node_id] = node

    # -- copying -----------------------------------------------------------

    def copy(self):
        """Deep copy of the document preserving node ids and the allocator
        position *and stride* (so the copy keeps allocating exactly the
        identifiers the original would have — a strided producer's copy
        must not collapse into another producer's id space)."""
        clone = Document(allocator=IdAllocator(
            start=self._allocator.next_value,
            stride=self._allocator.stride))
        if self.root is not None:
            clone.set_root(self.root.deep_copy(keep_ids=True))
        return clone

    # -- convenience lookups -------------------------------------------------

    def elements_by_name(self, name):
        """Yield element nodes with the given name, in document order."""
        for node in self.nodes():
            if node.is_element and node.name == name:
                yield node

    def max_id(self):
        """Largest live node id (convenience for id-space handoff)."""
        return max(self._nodes, default=-1)

    def __repr__(self):
        root = self.root.name if self.root is not None else None
        return "Document(root={!r}, nodes={})".format(root, len(self._nodes))
