"""XML data model substrate.

Implements the labeled-tree representation of XML documents used by the
paper (Section 2.1): a document ``D = (V, gamma, lambda, nu)`` with element,
attribute and text nodes, immutable never-reused node identifiers, plus a
pure-Python parser and serializer so the library has no dependency beyond
the standard library.
"""

from repro.xdm.node import Node, NodeType
from repro.xdm.document import Document
from repro.xdm.parser import parse_document, parse_fragment
from repro.xdm.serializer import serialize, serialize_node
from repro.xdm.compare import (
    canonical_string,
    documents_equal,
    nodes_equal,
)

__all__ = [
    "Node",
    "NodeType",
    "Document",
    "parse_document",
    "parse_fragment",
    "serialize",
    "serialize_node",
    "canonical_string",
    "documents_equal",
    "nodes_equal",
]
