"""Tree nodes of the XML data model.

The paper models a document as a labeled tree over three node kinds
(Section 2.1): elements (``e``), attributes (``a``) and text nodes (``t``).
Coherently with XDM, an attribute's value is a property of the attribute
node itself, while the textual content of an element is modeled by separate
text-node children.
"""

from __future__ import annotations

import enum

from repro.errors import DocumentError


class NodeType(enum.Enum):
    """The three node kinds of the model (``tau`` in the paper)."""

    ELEMENT = "e"
    ATTRIBUTE = "a"
    TEXT = "t"

    def __str__(self):
        return self.value

    @classmethod
    def from_code(cls, code):
        """Return the node type for a one-letter code (``e``/``a``/``t``)."""
        for member in cls:
            if member.value == code:
                return member
        raise DocumentError("unknown node type code: {!r}".format(code))


class Node:
    """A single node of a document tree (or of a detached fragment).

    Attributes
    ----------
    node_id:
        Unique, immutable identifier. ``None`` for nodes not yet attached to
        a :class:`~repro.xdm.document.Document` (e.g. nodes of the parameter
        trees of an update operation before application).
    node_type:
        One of :class:`NodeType`.
    name:
        Element/attribute name (``lambda``); ``None`` for text nodes.
    value:
        Text/attribute value (``nu``); ``None`` for elements.
    children:
        Ordered non-attribute children (elements and text nodes).
    attributes:
        Attribute children, in insertion order (their relative order is not
        semantically relevant).
    parent:
        Back pointer to the parent node, ``None`` for roots.
    """

    __slots__ = (
        "node_id", "node_type", "name", "value",
        "children", "attributes", "parent",
    )

    def __init__(self, node_type, name=None, value=None, node_id=None):
        if node_type is NodeType.ELEMENT:
            if name is None:
                raise DocumentError("element nodes require a name")
            if value is not None:
                raise DocumentError("element nodes carry no value")
        elif node_type is NodeType.ATTRIBUTE:
            if name is None:
                raise DocumentError("attribute nodes require a name")
            if value is None:
                value = ""
        elif node_type is NodeType.TEXT:
            if name is not None:
                raise DocumentError("text nodes carry no name")
            if value is None:
                value = ""
        else:
            raise DocumentError("unknown node type: {!r}".format(node_type))
        self.node_id = node_id
        self.node_type = node_type
        self.name = name
        self.value = value
        self.children = []
        self.attributes = []
        self.parent = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def element(cls, name, node_id=None):
        """Create a detached element node."""
        return cls(NodeType.ELEMENT, name=name, node_id=node_id)

    @classmethod
    def text(cls, value, node_id=None):
        """Create a detached text node."""
        return cls(NodeType.TEXT, value=value, node_id=node_id)

    @classmethod
    def attribute(cls, name, value, node_id=None):
        """Create a detached attribute node."""
        return cls(NodeType.ATTRIBUTE, name=name, value=value,
                   node_id=node_id)

    # -- predicates --------------------------------------------------------

    @property
    def is_element(self):
        return self.node_type is NodeType.ELEMENT

    @property
    def is_attribute(self):
        return self.node_type is NodeType.ATTRIBUTE

    @property
    def is_text(self):
        return self.node_type is NodeType.TEXT

    # -- structure editing (used by the evaluators) ------------------------

    def append_child(self, child):
        """Attach ``child`` (element or text) as last child."""
        self._check_child(child)
        child.parent = self
        self.children.append(child)
        return child

    def insert_child(self, index, child):
        """Attach ``child`` (element or text) at ``index``."""
        self._check_child(child)
        child.parent = self
        self.children.insert(index, child)
        return child

    def append_attribute(self, attr):
        """Attach ``attr`` as an attribute of this element."""
        if not self.is_element:
            raise DocumentError("only elements hold attributes")
        if not attr.is_attribute:
            raise DocumentError("append_attribute requires an attribute")
        attr.parent = self
        self.attributes.append(attr)
        return attr

    def detach(self):
        """Remove this node from its parent (no-op when detached)."""
        parent = self.parent
        if parent is None:
            return self
        if self.is_attribute:
            parent.attributes.remove(self)
        else:
            parent.children.remove(self)
        self.parent = None
        return self

    def child_index(self):
        """Position of this node among its parent's children.

        Raises :class:`DocumentError` for detached or attribute nodes.
        """
        if self.parent is None or self.is_attribute:
            raise DocumentError("node has no child position")
        return self.parent.children.index(self)

    def _check_child(self, child):
        if not self.is_element:
            raise DocumentError("only elements hold children")
        if child.is_attribute:
            raise DocumentError(
                "attributes must be attached with append_attribute")

    # -- traversal ---------------------------------------------------------

    def iter_subtree(self, include_attributes=True):
        """Yield this node and its descendants in document order.

        Attributes of an element are yielded right after the element itself
        (their relative order among themselves is insertion order).
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.is_element:
                if include_attributes:
                    yield from node.attributes
                stack.extend(reversed(node.children))

    def descendants(self, include_attributes=True):
        """Yield the proper descendants of this node in document order."""
        iterator = self.iter_subtree(include_attributes=include_attributes)
        next(iterator)  # skip self
        yield from iterator

    def ancestors(self):
        """Yield the proper ancestors of this node, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def string_value(self):
        """XDM string value: concatenation of descendant text, or the value
        of a text/attribute node."""
        if not self.is_element:
            return self.value
        parts = []
        for node in self.iter_subtree(include_attributes=False):
            if node.is_text:
                parts.append(node.value)
        return "".join(parts)

    # -- copying -----------------------------------------------------------

    def deep_copy(self, keep_ids=False):
        """Return a detached deep copy of this subtree.

        By default the copies carry no node ids (they represent *new*
        content); ``keep_ids=True`` preserves them (used when moving
        already-identified trees between PULs during aggregation).
        """
        copy = Node(self.node_type, name=self.name,
                    value=None if self.is_element else self.value,
                    node_id=self.node_id if keep_ids else None)
        if self.is_element:
            # XQUF ``replace value of`` on an element stores its text on
            # the node's value slot (invisible to serialization); a copy
            # must carry it faithfully or re-copying an updated tree —
            # the mirror's and the MVCC fallback's per-batch path — fails
            # the constructor's freshness check
            copy.value = self.value
            for attr in self.attributes:
                copy.append_attribute(attr.deep_copy(keep_ids=keep_ids))
            for child in self.children:
                copy.append_child(child.deep_copy(keep_ids=keep_ids))
        return copy

    # -- debugging ---------------------------------------------------------

    def __repr__(self):
        if self.is_element:
            detail = "<{}>".format(self.name)
        elif self.is_attribute:
            detail = "@{}={!r}".format(self.name, self.value)
        else:
            detail = "text={!r}".format(self.value)
        return "Node(id={}, {})".format(self.node_id, detail)
