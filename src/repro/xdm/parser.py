"""A small, dependency-free XML parser producing :class:`Document` trees.

The subset supported is what the paper's documents and PUL exchange format
need: elements, attributes, text, CDATA sections, comments, processing
instructions (skipped), an optional XML declaration/DOCTYPE (skipped), and
the five predefined entities plus numeric character references.

The parser assigns node identifiers in document order (elements first, then
their attributes in appearance order, then content), matching the uniform
identifier-assignment requirement of Section 4.1: every producer parsing the
same serialized document derives the same ids.
"""

from __future__ import annotations

from repro.errors import XMLSyntaxError
from repro.xdm.document import Document, IdAllocator
from repro.xdm.node import Node

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:.-"


def _is_name_start(ch):
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch):
    return ch.isalnum() or ch in _NAME_EXTRA


class _Parser:
    """Recursive-descent parser over a character buffer."""

    def __init__(self, text, keep_whitespace=False):
        self.text = text
        self.pos = 0
        self.keep_whitespace = keep_whitespace

    # -- low level ----------------------------------------------------------

    def error(self, message):
        raise XMLSyntaxError(message, position=self.pos)

    def eof(self):
        return self.pos >= len(self.text)

    def peek(self, count=1):
        return self.text[self.pos:self.pos + count]

    def advance(self, count=1):
        self.pos += count

    def expect(self, literal):
        if not self.text.startswith(literal, self.pos):
            self.error("expected {!r}".format(literal))
        self.pos += len(literal)

    def skip_whitespace(self):
        while not self.eof() and self.text[self.pos].isspace():
            self.pos += 1

    def read_name(self):
        start = self.pos
        if self.eof() or not _is_name_start(self.text[self.pos]):
            self.error("expected a name")
        self.pos += 1
        while not self.eof() and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start:self.pos]

    def read_reference(self):
        """Read an entity or character reference, cursor on ``&``."""
        self.expect("&")
        if self.peek() == "#":
            self.advance()
            base = 10
            if self.peek() in ("x", "X"):
                self.advance()
                base = 16
            start = self.pos
            while not self.eof() and self.text[self.pos] != ";":
                self.pos += 1
            digits = self.text[start:self.pos]
            self.expect(";")
            try:
                return chr(int(digits, base))
            except ValueError:
                self.error("bad character reference: {!r}".format(digits))
        name = self.read_name()
        self.expect(";")
        try:
            return _PREDEFINED_ENTITIES[name]
        except KeyError:
            self.error("unknown entity: &{};".format(name))

    # -- grammar ------------------------------------------------------------

    def skip_misc(self):
        """Skip whitespace, comments, PIs, XML declaration and DOCTYPE."""
        while True:
            self.skip_whitespace()
            if self.peek(4) == "<!--":
                end = self.text.find("-->", self.pos + 4)
                if end < 0:
                    self.error("unterminated comment")
                self.pos = end + 3
            elif self.peek(2) == "<?":
                end = self.text.find("?>", self.pos + 2)
                if end < 0:
                    self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.peek(2) == "<!" and self.peek(9).upper() == "<!DOCTYPE":
                self.advance(9)
                depth = 0
                while not self.eof():
                    ch = self.text[self.pos]
                    self.pos += 1
                    if ch == "<":
                        depth += 1
                    elif ch == ">":
                        if depth == 0:
                            break
                        depth -= 1
                else:
                    self.error("unterminated DOCTYPE")
            else:
                return

    def parse_element(self):
        """Parse one element, cursor on its ``<``."""
        self.expect("<")
        name = self.read_name()
        element = Node.element(name)
        seen_attrs = set()
        while True:
            self.skip_whitespace()
            ch = self.peek()
            if ch == ">":
                self.advance()
                self.parse_content(element)
                self.expect("</")
                closing = self.read_name()
                if closing != name:
                    self.error("mismatched end tag: expected </{}> got </{}>"
                               .format(name, closing))
                self.skip_whitespace()
                self.expect(">")
                return element
            if self.peek(2) == "/>":
                self.advance(2)
                return element
            attr_name = self.read_name()
            if attr_name in seen_attrs:
                self.error("duplicate attribute: {}".format(attr_name))
            seen_attrs.add(attr_name)
            self.skip_whitespace()
            self.expect("=")
            self.skip_whitespace()
            quote = self.peek()
            if quote not in ("'", '"'):
                self.error("attribute value must be quoted")
            self.advance()
            value_parts = []
            while True:
                if self.eof():
                    self.error("unterminated attribute value")
                ch = self.text[self.pos]
                if ch == quote:
                    self.advance()
                    break
                if ch == "&":
                    value_parts.append(self.read_reference())
                elif ch == "<":
                    self.error("'<' in attribute value")
                else:
                    value_parts.append(ch)
                    self.advance()
            element.append_attribute(
                Node.attribute(attr_name, "".join(value_parts)))

    def parse_content(self, element, stop_at_eof=False):
        """Parse element content until the closing tag (or, for forests,
        until end of input when ``stop_at_eof`` is set)."""
        text_parts = []

        def flush_text():
            if not text_parts:
                return
            text = "".join(text_parts)
            text_parts.clear()
            if not self.keep_whitespace and not text.strip():
                return
            element.append_child(Node.text(text))

        while True:
            if self.eof():
                if stop_at_eof:
                    flush_text()
                    return
                self.error("unexpected end of input in element content")
            ch = self.text[self.pos]
            if ch == "<":
                if self.peek(2) == "</":
                    flush_text()
                    return
                if self.peek(4) == "<!--":
                    end = self.text.find("-->", self.pos + 4)
                    if end < 0:
                        self.error("unterminated comment")
                    self.pos = end + 3
                elif self.peek(9) == "<![CDATA[":
                    end = self.text.find("]]>", self.pos + 9)
                    if end < 0:
                        self.error("unterminated CDATA section")
                    text_parts.append(self.text[self.pos + 9:end])
                    self.pos = end + 3
                elif self.peek(2) == "<?":
                    end = self.text.find("?>", self.pos + 2)
                    if end < 0:
                        self.error("unterminated processing instruction")
                    self.pos = end + 2
                else:
                    flush_text()
                    element.append_child(self.parse_element())
            elif ch == "&":
                text_parts.append(self.read_reference())
            else:
                text_parts.append(ch)
                self.advance()


def parse_fragment(text, keep_whitespace=False):
    """Parse ``text`` into a detached :class:`Node` tree (no ids assigned).

    The input must consist of exactly one element (after optional
    prolog/comments).
    """
    parser = _Parser(text, keep_whitespace=keep_whitespace)
    parser.skip_misc()
    if parser.peek() != "<":
        parser.error("expected an element")
    root = parser.parse_element()
    parser.skip_misc()
    if not parser.eof():
        parser.error("trailing content after document element")
    return root


def parse_forest(text, keep_whitespace=False):
    """Parse ``text`` into a list of detached top-level nodes.

    Unlike :func:`parse_fragment`, allows a sequence of elements and text
    at top level — the shape of update-operation parameters ``P``.
    """
    parser = _Parser(text, keep_whitespace=keep_whitespace)
    wrapper = Node.element("__forest__")
    parser.parse_content(wrapper, stop_at_eof=True)
    if not parser.eof():
        parser.error("unbalanced content")
    trees = list(wrapper.children)
    for tree in trees:
        tree.parent = None
    return trees


def parse_document(text, keep_whitespace=False, allocator=None):
    """Parse ``text`` into a :class:`Document`, assigning node identifiers
    in document order."""
    root = parse_fragment(text, keep_whitespace=keep_whitespace)
    return Document(root=root, allocator=allocator or IdAllocator())
