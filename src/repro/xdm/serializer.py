"""Serialization of documents and fragments back to XML text.

Supports optional emission of node identifiers (and labels) as reserved
attributes — the representation used by the paper's prototype, where "node
identifiers and labeling have been stored within the document" (Section 6).
"""

from __future__ import annotations

from repro.errors import DocumentError

#: Reserved attribute names used when ids/labels are stored in-document.
ID_ATTRIBUTE = "repro:id"
LABEL_ATTRIBUTE = "repro:label"


def escape_text(value):
    """Escape character data."""
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace(">", "&gt;"))


def escape_attribute(value):
    """Escape an attribute value (double-quote delimited)."""
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace('"', "&quot;"))


def serialize_node(node, parts=None, with_ids=False, labels=None,
                   indent=None, _depth=0):
    """Serialize ``node``'s subtree, appending strings to ``parts``.

    Parameters
    ----------
    with_ids:
        Emit each node's identifier as a ``repro:id`` attribute (text-node
        ids cannot be represented inline and are omitted).
    labels:
        Optional mapping ``node_id -> label``; when given, element and
        attribute labels are emitted as ``repro:label`` attributes.
    indent:
        Pretty-print indentation string (``None`` = compact output).
    """
    own = parts is None
    if own:
        parts = []
    pad = "" if indent is None else "\n" + indent * _depth
    if node.is_text:
        parts.append(escape_text(node.value))
    elif node.is_attribute:
        # a bare attribute node (e.g. an insA/repN parameter tree) is
        # rendered in attribute-literal form
        parts.append('{}="{}"'.format(node.name,
                                      escape_attribute(node.value)))
    else:
        if indent is not None and _depth:
            parts.append(pad)
        parts.append("<")
        parts.append(node.name)
        if with_ids and node.node_id is not None:
            parts.append(' {}="{}"'.format(ID_ATTRIBUTE, node.node_id))
        if labels is not None and node.node_id in labels:
            parts.append(' {}="{}"'.format(
                LABEL_ATTRIBUTE, escape_attribute(str(labels[node.node_id]))))
        for attr in node.attributes:
            parts.append(" ")
            parts.append(attr.name)
            parts.append('="')
            parts.append(escape_attribute(attr.value))
            parts.append('"')
        if not node.children:
            parts.append("/>")
        else:
            parts.append(">")
            only_text = all(child.is_text for child in node.children)
            for child in node.children:
                serialize_node(
                    child, parts, with_ids=with_ids, labels=labels,
                    indent=None if only_text else indent, _depth=_depth + 1)
            if indent is not None and not only_text:
                parts.append("\n" + indent * _depth)
            parts.append("</")
            parts.append(node.name)
            parts.append(">")
    if own:
        return "".join(parts)
    return None


def serialize_forest(trees, with_ids=False, labels=None):
    """Serialize a list of top-level trees (an operation parameter ``P``)."""
    parts = []
    for tree in trees:
        serialize_node(tree, parts, with_ids=with_ids, labels=labels)
    return "".join(parts)


def serialize(document, with_ids=False, labels=None, indent=None,
              declaration=False):
    """Serialize a :class:`~repro.xdm.document.Document` to XML text."""
    if document.root is None:
        raise DocumentError("cannot serialize an empty document")
    parts = []
    if declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        if indent is not None:
            parts.append("\n")
    serialize_node(document.root, parts, with_ids=with_ids, labels=labels,
                   indent=indent)
    return "".join(parts)
