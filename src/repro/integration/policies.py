"""Producer conflict-resolution policies (Section 4.2).

Producers attach policies to the PULs they send; the executor's resolution
algorithm must either satisfy all of them or fail. The three policies the
paper instantiates:

* **preserve insertion order** — the specified order for inserted nodes
  must not be altered by operations of other PULs (for an order conflict,
  the producer's trees must stay adjacent to the insertion anchor);
* **preserve inserted data** — data this producer inserts (through
  ``repN``, ``repC``, ``repV`` or any ``ins``) must occur in the final
  document (its inserting operations cannot be discarded);
* **preserve removed data** — data this producer removes (through
  ``repN``, ``repC``, ``repV`` or ``del``) must not occur in the final
  document (its removing operations cannot be discarded in favour of
  keeping the content).
"""

from __future__ import annotations

from repro.pul.ops import (
    Delete,
    OpClass,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)

_REMOVING = frozenset({
    Delete.op_name, ReplaceNode.op_name, ReplaceChildren.op_name,
    ReplaceValue.op_name,
})


class ProducerPolicy:
    """The policy bundle of one producer."""

    __slots__ = ("preserve_insertion_order", "preserve_inserted_data",
                 "preserve_removed_data")

    def __init__(self, preserve_insertion_order=False,
                 preserve_inserted_data=False,
                 preserve_removed_data=False):
        self.preserve_insertion_order = preserve_insertion_order
        self.preserve_inserted_data = preserve_inserted_data
        self.preserve_removed_data = preserve_removed_data

    @classmethod
    def none(cls):
        """No constraints: every operation of the producer is negotiable."""
        return cls()

    @classmethod
    def strict(cls):
        """All three constraints."""
        return cls(True, True, True)

    def __repr__(self):
        flags = [name for name in self.__slots__ if getattr(self, name)]
        return "ProducerPolicy({})".format(", ".join(flags) or "none")


def op_inserts_data(op):
    """Whether the operation puts new data into the document (the scope of
    *preserve inserted data*)."""
    if op.op_class is OpClass.INSERT:
        return True
    if op.op_name == ReplaceValue.op_name:
        return True
    if op.op_name in (ReplaceNode.op_name, ReplaceChildren.op_name):
        return bool(op.trees)
    return False


def op_removes_data(op):
    """Whether the operation removes existing data (the scope of *preserve
    removed data*)."""
    return op.op_name in _REMOVING


def exclusion_violates(tagged, policies):
    """Whether discarding ``tagged`` (a
    :class:`~repro.integration.conflicts.TaggedOp`) from the reconciled PUL
    would violate its producer's policies."""
    policy = policy_of(tagged, policies)
    if policy.preserve_inserted_data and op_inserts_data(tagged.op):
        return True
    if policy.preserve_removed_data and op_removes_data(tagged.op):
        return True
    return False


def policy_of(tagged, policies):
    """Look up the policy for a tagged operation.

    ``policies`` maps PUL indexes and/or origins to
    :class:`ProducerPolicy`; missing entries mean "no constraints".
    """
    if policies is None:
        return _NO_POLICY
    if tagged.origin is not None and tagged.origin in policies:
        return policies[tagged.origin]
    return policies.get(tagged.pul_index, _NO_POLICY)


_NO_POLICY = ProducerPolicy.none()
