"""Conflict detection — Algorithm 1.

The operations of all PULs are partitioned by target node, sorted in
preorder (document order of the targets). Local conflicts (types 1–4) are
found within each partition in four staged scans; non-local conflicts
(type 5) require the ancestor-descendant relationship and are found on a
tree built over the target nodes (nearest-target-ancestor edges), visited
in postorder while collecting the operations of each subtree.

Complexity O(k² + a) in the worst case (Proposition 3) — in practice close
to linear in the number of operations ``k`` plus inserted attributes ``a``.
"""

from __future__ import annotations

from repro.integration.conflicts import (
    Conflict,
    ConflictType,
    LOCAL_OVERRIDE_VICTIMS,
    MODIFICATION_NAMES,
    ORDERED_INSERT_NAMES,
    REPC_LOCAL_VICTIMS,
    TaggedOp,
    _DEL,
    _INS_ATTR,
    _REP_C,
    _REP_N,
)
from repro.reasoning.oracle import oracle_for


def _tag_all(puls):
    tagged = []
    for index, pul in enumerate(puls):
        normalized = pul.normalized()
        for op in normalized:
            tagged.append(TaggedOp(op, index, origin=pul.origin))
    return tagged


def _multi_pul(tagged_ops):
    """Whether the list involves at least two distinct PULs."""
    first = tagged_ops[0].pul_index
    return any(t.pul_index != first for t in tagged_ops[1:])


def _conflicts_1_to_4(group):
    """Local conflicts within one same-target partition."""
    conflicts = []
    by_name = {}
    for tagged in group:
        by_name.setdefault(tagged.op.op_name, []).append(tagged)
    # type 1: repeated modifications
    for name in MODIFICATION_NAMES:
        ops = by_name.get(name, ())
        if len(ops) >= 2 and _multi_pul(ops):
            conflicts.append(Conflict(
                ConflictType.REPEATED_MODIFICATION, ops))
    # type 2: repeated attribute insertions (connected components of the
    # shares-an-attribute-name relation, across different PULs)
    attr_ops = by_name.get(_INS_ATTR, ())
    if len(attr_ops) >= 2:
        conflicts.extend(_attribute_conflicts(attr_ops))
    # type 3: insertion order
    for name in ORDERED_INSERT_NAMES:
        ops = by_name.get(name, ())
        if len(ops) >= 2 and _multi_pul(ops):
            conflicts.append(Conflict(ConflictType.INSERTION_ORDER, ops))
    # type 4: local overriding
    for overrider in group:
        name = overrider.op.op_name
        if name in (_REP_N, _DEL):
            victims = [t for t in group
                       if t.pul_index != overrider.pul_index
                       and t.op.op_name in LOCAL_OVERRIDE_VICTIMS
                       and not (name == _DEL and t.op.op_name == _DEL)]
        elif name == _REP_C:
            victims = [t for t in group
                       if t.pul_index != overrider.pul_index
                       and t.op.op_name in REPC_LOCAL_VICTIMS]
        else:
            continue
        if victims:
            conflicts.append(Conflict(
                ConflictType.LOCAL_OVERRIDE, victims, overrider=overrider))
    return conflicts


def _attribute_conflicts(attr_ops):
    """Maximal sets of insA operations clashing on attribute names."""
    # union-find over operations joined by a shared attribute name when the
    # operations come from different PULs
    parent = list(range(len(attr_ops)))

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i, j):
        parent[find(i)] = find(j)

    by_attr_name = {}
    for index, tagged in enumerate(attr_ops):
        for name in tagged.op.attribute_names():
            by_attr_name.setdefault(name, []).append(index)
    conflicting = set()
    for indices in by_attr_name.values():
        puls = {attr_ops[i].pul_index for i in indices}
        if len(indices) >= 2 and len(puls) >= 2:
            for i in indices[1:]:
                union(indices[0], i)
            conflicting.update(indices)
    components = {}
    for i in sorted(conflicting):
        components.setdefault(find(i), []).append(attr_ops[i])
    return [Conflict(ConflictType.REPEATED_ATTRIBUTE_INSERTION, members)
            for members in components.values() if len(members) >= 2]


def _conflicts_5(partitions, oracle):
    """Non-local overriding, via the nearest-ancestor tree (line 6 of
    Algorithm 1) visited in postorder."""
    order = sorted(partitions,
                   key=lambda target: oracle.interval(target)[0])
    conflicts = []
    # stack entries: [target, hi, collected descendant ops]
    stack = []

    def close(entry):
        target, __, below = entry
        here = partitions[target]
        for overrider in here:
            name = overrider.op.op_name
            if name in (_REP_N, _DEL):
                victims = [t for t in below
                           if t.pul_index != overrider.pul_index
                           and t.op.op_name != _DEL]
            elif name == _REP_C:
                victims = [t for t in below
                           if t.pul_index != overrider.pul_index
                           and t.op.op_name != _DEL
                           and not oracle.is_attribute_of(
                               t.op.target, target)]
            else:
                continue
            if victims:
                conflicts.append(Conflict(
                    ConflictType.NON_LOCAL_OVERRIDE, victims,
                    overrider=overrider))
        collected = below + here
        if stack:
            stack[-1][2].extend(collected)

    for target in order:
        lo, hi = oracle.interval(target)
        while stack and stack[-1][1] < lo:
            close(stack.pop())
        stack.append([target, hi, []])
    while stack:
        close(stack.pop())
    return conflicts


def detect_conflicts(puls, structure=None):
    """Algorithm 1: the conflicts among a list of PULs, plus the PUL of
    non-conflicting operations.

    Returns ``(clean_ops, conflicts)`` where ``clean_ops`` is the list of
    :class:`TaggedOp` not involved in any conflict and ``conflicts`` the
    detected :class:`Conflict` list (order: local conflicts per partition
    in document order, then non-local ones).
    """
    oracle = oracle_for(structure if structure is not None else list(puls))
    tagged = _tag_all(puls)
    partitions = {}
    for item in tagged:
        partitions.setdefault(item.op.target, []).append(item)
    ordered_targets = sorted(
        partitions, key=lambda target: oracle.interval(target)[0])
    conflicts = []
    for target in ordered_targets:
        conflicts.extend(_conflicts_1_to_4(partitions[target]))
    conflicts.extend(_conflicts_5(partitions, oracle))
    involved = set()
    for conflict in conflicts:
        for item in conflict.all_tagged():
            involved.add(id(item))
    clean = [item for item in tagged if id(item) not in involved]
    return clean, conflicts
