"""The conflict model of Definition 10 and the detection rules of Figure 3.

A conflict is a triple ``⟨op, OS, ct⟩``:

* symmetric types (1–3): ``op = Λ`` (``None``) and ``OS`` is a maximal set
  of mutually clashing operations;
* asymmetric types (4–5): ``op`` is the overriding operation and ``OS`` the
  maximal set of operations it overrides.

Conflicts only ever relate operations of *different* PULs — interactions
within one PUL are reduction's business. Detection assumes PULs normalized
per footnote 3 (``repN(v, [])`` read as ``del(v)``, see
:meth:`repro.pul.pul.PUL.normalized`).
"""

from __future__ import annotations

import enum

from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)

#: operation names, for brevity
_REN = Rename.op_name
_REP_N = ReplaceNode.op_name
_REP_C = ReplaceChildren.op_name
_REP_V = ReplaceValue.op_name
_DEL = Delete.op_name
_INS_ATTR = InsertAttributes.op_name

#: o(op) sets used by the rules
MODIFICATION_NAMES = frozenset({_REN, _REP_N, _REP_C, _REP_V})
ORDERED_INSERT_NAMES = frozenset({
    InsertBefore.op_name, InsertAfter.op_name,
    InsertIntoAsFirst.op_name, InsertIntoAsLast.op_name,
})
#: what a same-target repN/del overrides (local overriding, first rule)
LOCAL_OVERRIDE_VICTIMS = frozenset({
    _REN, _REP_V, _REP_C,
    InsertIntoAsFirst.op_name, InsertIntoAsLast.op_name,
    _INS_ATTR, InsertInto.op_name, _DEL,
})
#: what a same-target repC overrides (local overriding, second rule)
REPC_LOCAL_VICTIMS = frozenset({
    InsertIntoAsFirst.op_name, InsertInto.op_name,
    InsertIntoAsLast.op_name,
})


class ConflictType(enum.IntEnum):
    """The five conflict types of Section 3.2."""

    REPEATED_MODIFICATION = 1
    REPEATED_ATTRIBUTE_INSERTION = 2
    INSERTION_ORDER = 3
    LOCAL_OVERRIDE = 4
    NON_LOCAL_OVERRIDE = 5

    @property
    def symmetric(self):
        return self <= ConflictType.INSERTION_ORDER


class Conflict:
    """``⟨op, OS, ct⟩`` with the provenance of every operation.

    ``operations`` is the ``OS`` component; each entry is a
    :class:`TaggedOp` (operation + index/origin of its PUL), as resolution
    policies are per producer.
    """

    def __init__(self, conflict_type, operations, overrider=None):
        self.conflict_type = ConflictType(conflict_type)
        self.overrider = overrider
        self.operations = list(operations)
        if self.conflict_type.symmetric:
            if overrider is not None:
                raise ValueError(
                    "symmetric conflicts carry no overrider (op = Λ)")
            if len(self.operations) < 2:
                raise ValueError(
                    "symmetric conflicts involve at least two operations")
        else:
            if overrider is None:
                raise ValueError(
                    "asymmetric conflicts require the overriding operation")
            if not self.operations:
                raise ValueError(
                    "asymmetric conflicts require overridden operations")

    def all_tagged(self):
        """Every tagged operation involved (``{Π1(c)} ∪ Π2(c)``)."""
        ops = list(self.operations)
        if self.overrider is not None:
            ops.append(self.overrider)
        return ops

    def focus(self):
        """The focus node (Section 4.2): common target for symmetric
        conflicts, the overrider's target for asymmetric ones."""
        if self.overrider is not None:
            return self.overrider.op.target
        return self.operations[0].op.target

    def describe(self):
        inner = ", ".join(t.op.describe() for t in self.operations)
        if self.overrider is None:
            return "<Λ, {{{}}}, {}>".format(inner, int(self.conflict_type))
        return "<{}, {{{}}}, {}>".format(
            self.overrider.op.describe(), inner, int(self.conflict_type))

    def __repr__(self):
        return "Conflict({})".format(self.describe())


class TaggedOp:
    """An operation together with the PUL it came from."""

    __slots__ = ("op", "pul_index", "origin")

    def __init__(self, op, pul_index, origin=None):
        self.op = op
        self.pul_index = pul_index
        self.origin = origin

    def __repr__(self):
        return "TaggedOp({}, pul={})".format(self.op.describe(),
                                             self.pul_index)


# -- pairwise relations of Figure 3 (used by tests and by the naive cross
#    check; Algorithm 1 in detect.py works group-wise) -----------------------


def repeated_modification(op1, op2):
    """``op1 1<-> op2``."""
    return (op1.target == op2.target
            and op1.op_name == op2.op_name
            and op1.op_name in MODIFICATION_NAMES)


def repeated_attribute_insertion(op1, op2):
    """``op1 2<-> op2``."""
    if not (op1.target == op2.target
            and op1.op_name == op2.op_name == _INS_ATTR):
        return False
    names1 = set(op1.attribute_names())
    return any(name in names1 for name in op2.attribute_names())


def insertion_order(op1, op2):
    """``op1 3<-> op2``."""
    return (op1.target == op2.target
            and op1.op_name == op2.op_name
            and op1.op_name in ORDERED_INSERT_NAMES)


def local_override(op1, op2):
    """``op1 4> op2`` (op1 overrides op2, same target)."""
    if op1.target != op2.target:
        return False
    if op1.op_name in (_REP_N, _DEL):
        return (op2.op_name in LOCAL_OVERRIDE_VICTIMS
                and not (op1.op_name == _DEL and op2.op_name == _DEL))
    if op1.op_name == _REP_C:
        return op2.op_name in REPC_LOCAL_VICTIMS
    return False


def non_local_override(op1, op2, oracle):
    """``op1 5> op2`` (op1 overrides op2 targeted inside op1's subtree)."""
    if op2.op_name == _DEL:
        return False
    if op1.op_name in (_REP_N, _DEL):
        return oracle.is_descendant(op2.target, op1.target)
    if op1.op_name == _REP_C:
        return oracle.is_nonattr_descendant(op2.target, op1.target)
    return False
