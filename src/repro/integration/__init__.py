"""PUL integration — handling *parallel* PULs (Section 3.2).

* conflict model and detection rules — Figure 3 / Definition 10;
* :func:`detect_conflicts` — Algorithm 1;
* :func:`integrate` — the ``⊗`` operator (Definition 11);
* producer policies (Section 4.2) and :func:`best_effort_resolution` —
  Algorithm 3;
* :func:`reconcile` — Definition 12.
"""

from repro.integration.conflicts import Conflict, ConflictType
from repro.integration.detect import detect_conflicts
from repro.integration.integrate import (
    IntegrationResult,
    integrate,
    reconcile,
)
from repro.integration.policies import ProducerPolicy
from repro.integration.resolve import best_effort_resolution

__all__ = [
    "Conflict",
    "ConflictType",
    "detect_conflicts",
    "IntegrationResult",
    "integrate",
    "reconcile",
    "ProducerPolicy",
    "best_effort_resolution",
]
