"""Best-effort conflict resolution — Algorithm 3.

Conflicts are ordered by the document order of their *focus node* (the
common target for symmetric conflicts, the overrider's target for
asymmetric ones) and, at equal focus, by the precedence (i)–(ix) of
Section 4.2 — so that a conflict on a node is only processed once every
operation that could remove that node has been decided, and resolutions
never have to be revisited.

Each conflict is processed by ``solve``, which excludes operations unless
the producers' policies forbid it:

* asymmetric conflicts: exclude the overridden operations (maximizing the
  chance of automatically solving later conflicts); when a policy protects
  one of them, fall back to excluding the overrider; when both directions
  are forbidden, abort;
* order conflicts: exclude all involved insertions and generate one merged
  insertion; at most one involved producer may demand order preservation
  (its trees take the anchor-adjacent end), two or more demanding it is
  unsatisfiable;
* other symmetric conflicts: keep exactly one operation — a protected one
  if any; two or more protected operations with different content is
  unsatisfiable.
"""

from __future__ import annotations

from repro.errors import ReconciliationError
from repro.integration.conflicts import Conflict, ConflictType, TaggedOp
from repro.integration.policies import exclusion_violates, policy_of
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertIntoAsFirst,
    ReplaceChildren,
    ReplaceNode,
)

#: insertion variants whose parameter is adjacent to the anchor on the
#: *leading* end of the final concatenation (``ins→``: right after the
#: target; ``ins↙``: at the very front of the children)
_ANCHOR_LEADING = frozenset({InsertAfter.op_name,
                             InsertIntoAsFirst.op_name})


def _precedence(conflict):
    """The (i)–(ix) precedence classes among conflicts on the same focus."""
    ct = conflict.conflict_type
    if ct is ConflictType.REPEATED_MODIFICATION:
        name = conflict.operations[0].op.op_name
        if name == ReplaceNode.op_name:
            return 0                                   # (i)
        if name == ReplaceChildren.op_name:
            return 4                                   # (v)
        return 6                                       # (vii)
    if ct is ConflictType.LOCAL_OVERRIDE:
        name = conflict.overrider.op.op_name
        if name == ReplaceNode.op_name:
            return 1                                   # (ii)
        if name == Delete.op_name:
            return 3                                   # (iv)
        return 5                                       # (vi)  (repC)
    if ct is ConflictType.REPEATED_ATTRIBUTE_INSERTION:
        return 6                                       # (vii)
    if ct is ConflictType.INSERTION_ORDER:
        return 7                                       # (viii)
    return 8                                           # (ix)  (type 5)


def order_conflicts(conflicts, oracle):
    """The processing order of Algorithm 3 (line 2)."""
    return sorted(
        conflicts,
        key=lambda c: (oracle.order_key(c.focus()), _precedence(c)))


def _solve_asymmetric(conflict, policies):
    protected = [t for t in conflict.operations
                 if exclusion_violates(t, policies)]
    if not protected:
        return set(), list(conflict.operations)
    if not exclusion_violates(conflict.overrider, policies):
        return set(), [conflict.overrider]
    raise ReconciliationError(
        conflict,
        "{} cannot be discarded, nor can the overriding {}".format(
            protected[0].op.describe(),
            conflict.overrider.op.describe()))


def _solve_order(conflict, policies):
    demanding = []
    others = []
    for tagged in conflict.operations:
        if policy_of(tagged, policies).preserve_insertion_order:
            demanding.append(tagged)
        else:
            others.append(tagged)
    demanding_producers = {t.pul_index for t in demanding}
    if len(demanding_producers) >= 2:
        raise ReconciliationError(
            conflict,
            "{} producers demand insertion-order preservation on the same "
            "anchor".format(len(demanding_producers)))
    # deterministic order for the non-privileged operations
    others.sort(key=lambda t: (t.pul_index, t.op.param_key()))
    template = conflict.operations[0].op
    if template.op_name in _ANCHOR_LEADING:
        ordered = demanding + others
    else:
        ordered = others + demanding
    trees = []
    for tagged in ordered:
        trees.extend(tree.deep_copy() for tree in tagged.op.trees)
    merged = TaggedOp(template.with_trees(trees), pul_index=-1,
                      origin="reconciliation")
    return {merged}, list(conflict.operations)


def _solve_keep_one(conflict, policies):
    protected = [t for t in conflict.operations
                 if exclusion_violates(t, policies)]
    distinct = {t.op.param_key() for t in protected}
    if len(distinct) >= 2:
        raise ReconciliationError(
            conflict,
            "two producers insist on different content for the same node")
    if protected:
        keep = protected[0]
    else:
        keep = min(conflict.operations,
                   key=lambda t: (t.pul_index, t.op.param_key()))
    excluded = [t for t in conflict.operations if t is not keep]
    return set(), excluded


def solve(conflict, policies):
    """Process one conflict; returns ``(generated, excluded)`` tagged-op
    collections or raises :class:`ReconciliationError`."""
    ct = conflict.conflict_type
    if not ct.symmetric:
        return _solve_asymmetric(conflict, policies)
    if ct is ConflictType.INSERTION_ORDER:
        return _solve_order(conflict, policies)
    return _solve_keep_one(conflict, policies)


def best_effort_resolution(conflicts, policies, oracle):
    """Algorithm 3: resolve ``conflicts`` under the producers' policies.

    Returns ``(kept, generated)``: the conflicted tagged operations that
    survive, and the operations generated while solving order conflicts.
    Raises :class:`ReconciliationError` when no valid reconciliation
    exists.
    """
    excluded = set()
    generated = []
    for conflict in order_conflicts(conflicts, oracle):
        overrider = conflict.overrider
        if overrider is not None and id(overrider) in excluded:
            overrider = None
        remaining = [t for t in conflict.operations
                     if id(t) not in excluded]
        if conflict.conflict_type.symmetric:
            if len(remaining) <= 1:
                continue  # automatically solved
            effective = Conflict(conflict.conflict_type, remaining)
        else:
            if overrider is None or not remaining:
                continue  # automatically solved
            effective = Conflict(conflict.conflict_type, remaining,
                                 overrider=overrider)
        gen, excl = solve(effective, policies)
        generated.extend(gen)
        excluded.update(id(t) for t in excl)
    kept = []
    seen = set()
    for conflict in conflicts:
        for tagged in conflict.all_tagged():
            if id(tagged) not in excluded and id(tagged) not in seen:
                seen.add(id(tagged))
                kept.append(tagged)
    return kept, generated
