"""The integration (Definition 11) and reconciliation (Definition 12)
operators."""

from __future__ import annotations

from repro.integration.detect import detect_conflicts
from repro.integration.resolve import best_effort_resolution
from repro.pul.pul import PUL
from repro.reasoning.oracle import oracle_for


class IntegrationResult:
    """``∆1 ⊗ ... ⊗ ∆n = ⟨∆, Γ⟩``.

    ``pul`` is the PUL of non-conflicting operations, ``conflicts`` the
    detected conflict set. When ``conflicts`` is empty, ``pul`` coincides
    with the merge of the inputs (Proposition 2).
    """

    def __init__(self, pul, conflicts, clean_tagged):
        self.pul = pul
        self.conflicts = conflicts
        self._clean_tagged = clean_tagged

    @property
    def has_conflicts(self):
        return bool(self.conflicts)

    def __iter__(self):
        yield self.pul
        yield self.conflicts

    def __repr__(self):
        return "IntegrationResult({} ops, {} conflicts)".format(
            len(self.pul), len(self.conflicts))


def _union_labels(puls):
    labels = {}
    for pul in puls:
        labels.update(pul.labels)
    return labels


def integrate(puls, structure=None):
    """Definition 11: integrate parallel ``puls`` (two or more).

    Returns an :class:`IntegrationResult`; the caller decides how to handle
    the conflicts — e.g. rejecting the PULs, or reconciling them with
    :func:`reconcile`.
    """
    puls = list(puls)
    oracle = oracle_for(structure if structure is not None else puls)
    clean, conflicts = detect_conflicts(puls, structure=oracle)
    pul = PUL((tagged.op for tagged in clean),
              labels=_union_labels(puls))
    return IntegrationResult(pul, conflicts, clean)


def reconcile(puls, policies=None, structure=None,
              resolver=best_effort_resolution):
    """Definition 12: ``∆1 ⊎_Π ∆2`` — integrate and solve the conflicts
    according to the producers' ``policies``.

    ``policies`` maps PUL indexes (and/or the PULs' origins) to
    :class:`~repro.integration.policies.ProducerPolicy`. Raises
    :class:`~repro.errors.ReconciliationError` when the resolver fails
    (the reconciliation is undefined).
    """
    puls = list(puls)
    oracle = oracle_for(structure if structure is not None else puls)
    result = integrate(puls, structure=oracle)
    if not result.conflicts:
        return result.pul
    kept, generated = resolver(result.conflicts, policies, oracle)
    operations = result.pul.operations()
    operations.extend(tagged.op for tagged in generated)
    operations.extend(tagged.op for tagged in kept)
    return PUL(operations, labels=_union_labels(puls))
