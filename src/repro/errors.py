"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so that callers can catch
library failures with a single ``except`` clause while still being able to
distinguish the individual failure modes the paper talks about (dynamic
errors on PUL application, incompatible operations, unsolvable conflicts,
...).

Every subclass carries a stable machine-readable :attr:`~ReproError.code`
(kebab-case, never reused for a different meaning once released): the wire
protocol of :mod:`repro.api` ships errors as ``{"code", "message",
"details"}`` objects, the CLI prefixes its diagnostics with the code so
output stays greppable, and :meth:`ReproError.from_dict` reconstructs the
matching subclass on the client side so ``except UnknownNodeError:`` works
identically against a local store and a remote one.
"""

from __future__ import annotations

#: ``code -> subclass`` registry behind :meth:`ReproError.from_dict`;
#: populated by ``__init_subclass__`` as the hierarchy is defined
_CODE_REGISTRY = {}


class ReproError(Exception):
    """Base class for every error raised by the library."""

    #: stable machine-readable error code (see the module docstring)
    code = "repro"
    wire_doc = ("generic library failure (also: unknown codes from "
                "newer servers)")

    #: attribute names copied into ``to_dict()``'s ``details`` object
    #: (values must be JSON-serializable; informational on the far side)
    detail_attrs = ()

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        # first definition wins so a released code can never silently
        # change meaning; subclasses inheriting their parent's code
        # (no own `code` in the class body) do not re-register it
        if "code" in cls.__dict__:
            _CODE_REGISTRY.setdefault(cls.code, cls)

    def to_dict(self):
        """The wire form: ``{"code", "message", "details"}``.

        ``details`` carries the subclass's declared extras
        (:attr:`detail_attrs`) when they serialize as JSON scalars;
        anything richer (operation objects, conflicts) is already part
        of the message text.
        """
        details = {}
        for name in self.detail_attrs:
            value = getattr(self, name, None)
            if value is None or isinstance(value, (str, int, float, bool)):
                details[name] = value
        payload = {"code": self.code, "message": str(self)}
        if details:
            payload["details"] = details
        return payload

    @classmethod
    def from_dict(cls, payload):
        """Reconstruct the error named by ``payload["code"]``.

        Subclass constructors take structured arguments (operations,
        conflicts) that do not travel on the wire, so reconstruction
        bypasses ``__init__``: the instance is allocated directly, the
        message is installed, and the JSON-scalar details are restored
        as attributes. An unknown code degrades to a plain
        :class:`ReproError` (a newer server must not crash an older
        client).
        """
        code = payload.get("code", "repro")
        klass = _CODE_REGISTRY.get(code, ReproError)
        error = klass.__new__(klass)
        Exception.__init__(error, payload.get("message", code))
        for name in klass.detail_attrs:
            setattr(error, name, (payload.get("details") or {}).get(name))
        return error


# ReproError itself never goes through __init_subclass__
_CODE_REGISTRY[ReproError.code] = ReproError


class XMLSyntaxError(ReproError):
    """Raised by the XML parser on malformed input.

    Carries the position of the offending character so error messages can
    point at the input.
    """

    code = "xml-syntax"
    wire_doc = "malformed document text (`details.position`)"
    detail_attrs = ("position",)

    def __init__(self, message, position=None):
        if position is not None:
            message = "{} (at offset {})".format(message, position)
        super().__init__(message)
        self.position = position


class DocumentError(ReproError):
    """Raised on invalid document manipulation (unknown node, bad shape)."""

    code = "document"
    wire_doc = "invalid document manipulation"


class UnknownNodeError(DocumentError):
    """Raised when a node id does not belong to the document."""

    code = "unknown-node"
    wire_doc = "node id not in the document (`details.node_id`)"
    detail_attrs = ("node_id",)

    def __init__(self, node_id):
        super().__init__("unknown node id: {!r}".format(node_id))
        self.node_id = node_id


class InvalidOperationError(ReproError):
    """Raised when an update operation is constructed with invalid
    parameters (violating the static conditions of Table 2)."""

    code = "invalid-operation"
    wire_doc = ("static-condition violation on an update op (Table "
                "2)")


class NotApplicableError(ReproError):
    """Raised when an operation or a PUL is not applicable on a document
    (Definition 1 / Definition 4): unknown target, type mismatch, or
    incompatible operations.
    """

    code = "not-applicable"
    wire_doc = "PUL not applicable (Definition 1/4)"


class IncompatibleOperationsError(NotApplicableError):
    """Raised when a PUL contains incompatible operations (Definition 3),
    e.g. two renames of the same node."""

    code = "incompatible-operations"
    wire_doc = "incompatible ops in one PUL (Definition 3)"

    def __init__(self, op1, op2):
        super().__init__(
            "incompatible operations on node {}: {} / {}".format(
                op1.target, op1.describe(), op2.describe()))
        self.op1 = op1
        self.op2 = op2


class MergeError(ReproError):
    """Raised when two PULs cannot be merged (Definition 5)."""

    code = "merge"
    wire_doc = "PULs cannot be merged (Definition 5)"


class SerializationError(ReproError):
    """Raised on malformed PUL exchange documents."""

    code = "serialization"
    wire_doc = "malformed PUL exchange document"


class LabelingError(ReproError):
    """Raised on invalid labeling-scheme use (e.g. no room semantics bugs,
    labels from different schemes compared)."""

    code = "labeling"
    wire_doc = "invalid labeling-scheme use"


class ReconciliationError(ReproError):
    """Raised when conflict resolution cannot find a valid reconciliation
    satisfying the producers' policies (Algorithm 3 abort)."""

    code = "reconciliation"
    wire_doc = "no valid reconciliation (Algorithm 3 abort)"
    detail_attrs = ("reason",)

    def __init__(self, conflict, reason):
        super().__init__(
            "reconciliation failed on conflict of type {}: {}".format(
                conflict.conflict_type, reason))
        self.conflict = conflict
        self.reason = reason


class DurabilityError(ReproError):
    """Raised on write-ahead-log or snapshot failures (bad frames outside
    the tolerated torn tail, unwritable durability directories, ...)."""

    code = "durability"
    wire_doc = ("WAL/snapshot failure, snapshot on a non-durable "
                "store")


class WalPoisonedError(DurabilityError):
    """Raised when the write-ahead log can no longer accept records: an
    earlier I/O failure left a torn record that could not be rolled back
    (the writer poisoned itself), or the log was already closed. The
    store must stop acknowledging batches — a record framed behind torn
    bytes would be unreachable to recovery."""

    code = "wal-poisoned"
    wire_doc = ("the write-ahead log can no longer accept records; "
                "the store stops acknowledging batches")


class RecoveryError(DurabilityError):
    """Raised when a durable state cannot be reconstructed (no valid
    snapshot generation, replay diverging from the logged versions)."""

    code = "recovery"
    wire_doc = "durable state cannot be reconstructed"


class RemoteOSError(ReproError):
    """Client-side reconstruction of an operating-system failure the
    server hit while executing a command (``OSError`` — disk full,
    permission denied, ...). The server wraps raw ``OSError`` under the
    stable code ``"os"``; registering a class for it means the code
    round-trips to a dedicated type instead of degrading to the base
    :class:`ReproError`."""

    code = "os"
    wire_doc = ("server-side `OSError` (disk full, permission "
                "denied, ...) hit while executing a command")


class ProtocolError(ReproError):
    """Raised on wire-protocol violations (:mod:`repro.api.protocol`):
    malformed or oversized frames, non-JSON payloads, requests missing
    required fields, or a failed protocol-version negotiation."""

    code = "protocol"
    wire_doc = ("malformed frame/request, failed negotiation, "
                "unknown op")


class ConnectionLostError(ProtocolError):
    """Raised client-side when the transport died mid-conversation
    (EOF mid-response, reset while sending). Distinct from a
    server-*reported* protocol violation so routing clients know the
    failure names the node, not the request — retrying elsewhere is
    sound."""

    code = "connection-lost"
    wire_doc = ("client-side only: the transport died "
                "mid-conversation (EOF mid-response, reset) — the "
                "failure names the node, not the request, so routers "
                "retry elsewhere")


class ClusterError(ReproError):
    """Base error of the replication subsystem (:mod:`repro.cluster`):
    misconfigured roles, replication feeds on non-durable stores, ..."""

    code = "cluster"
    wire_doc = ("replication misuse (replication op on a "
                "non-replicating node, promote on a plain store, "
                "stream gap)")


class NotLeaderError(ClusterError):
    """Raised when a write (or any leader-only operation) reaches a
    replica. Carries the leader's address so routing clients
    (:class:`~repro.cluster.client.ClusterClient`) can follow the
    redirect instead of surfacing the failure."""

    code = "not-leader"
    wire_doc = ("a write (or replication-stream op) reached a "
                "replica; `details.leader` carries the leader's "
                "`host:port` so routing clients follow the redirect")
    detail_attrs = ("leader",)

    def __init__(self, leader=None, operation=None):
        hint = (" (leader: {})".format(leader) if leader
                else " (no known leader)")
        what = operation or "write"
        super().__init__(
            "this node is a replica and cannot accept {}{}".format(
                what, hint))
        self.leader = leader


class ReplicationResetError(ClusterError):
    """Raised when a follower asks for a log sequence the leader no
    longer retains (fell behind the bounded backlog, or the leader was
    restarted/promoted and renumbered). The follower must re-bootstrap
    from a full snapshot transfer."""

    code = "replication-reset"
    wire_doc = ("the follower's `from_seq` is older than the "
                "leader's retained backlog (`details.first_seq`); "
                "re-bootstrap from `snapshot-transfer`")
    detail_attrs = ("first_seq",)

    def __init__(self, requested, first_seq):
        super().__init__(
            "log sequence {} is no longer retained (oldest available: "
            "{}); re-bootstrap from a snapshot transfer".format(
                requested, first_seq))
        self.first_seq = first_seq


class SubscriptionLaggedError(ClusterError):
    """Raised when a CDC subscriber resumes from a sequence the leader
    has already trimmed from its bounded backlog. The subscriber missed
    events that can never be redelivered; it must re-bootstrap (e.g.
    from an ``export`` of the current state) before resuming."""

    code = "subscription-lagged"
    wire_doc = ("a CDC resume point fell out of the retained backlog "
                "(`details.first_seq`); re-bootstrap (e.g. via "
                "`export`) before resuming")
    detail_attrs = ("first_seq",)

    def __init__(self, requested, first_seq):
        super().__init__(
            "subscription lagged: sequence {} was trimmed from the "
            "change feed (oldest available: {}); re-bootstrap before "
            "resuming".format(requested, first_seq))
        self.first_seq = first_seq


class ResumeExpiredError(ClusterError):
    """Raised when a resume token names a different stream epoch than
    the one the server is publishing (the node restarted or a failover
    promoted a new leader, renumbering the feed). Positions never carry
    across epochs; the subscriber must re-bootstrap and take a fresh
    token."""

    code = "resume-expired"
    wire_doc = ("the resume token's stream epoch does not match the "
                "feed (a restart or failover renumbered it); "
                "re-bootstrap and take a fresh token")
    detail_attrs = ("token_stream", "stream")

    def __init__(self, token_stream, stream):
        super().__init__(
            "resume token belongs to stream epoch {} but this feed is "
            "epoch {}; positions do not carry across epochs — "
            "re-bootstrap and take a fresh token".format(
                token_stream, stream))
        self.token_stream = token_stream
        self.stream = stream


class ImportAbortedError(ReproError):
    """Raised when a bulk import crosses its quality gate: more source
    documents were rejected by the validate stage than ``max_errors``
    allows. Carries the progress counters so the operator knows how
    much of the corpus had already been loaded durably."""

    code = "import-aborted"
    wire_doc = ("bulk import crossed its `max-errors` quality gate "
                "(`details.loaded`, `details.rejected`)")
    detail_attrs = ("loaded", "rejected")

    def __init__(self, loaded, rejected, max_errors):
        super().__init__(
            "bulk import aborted: {} document(s) rejected "
            "(max-errors {}); {} loaded before the abort".format(
                rejected, max_errors, loaded))
        self.loaded = loaded
        self.rejected = rejected


class QueryError(ReproError):
    """Base error for the XQuery Update front end."""

    code = "query"
    wire_doc = "XQuery Update front-end failure"


class QuerySyntaxError(QueryError):
    """Raised on unparsable XQuery Update expressions."""

    code = "query-syntax"
    wire_doc = ("unparsable XQuery Update expression "
                "(`details.position`)")
    detail_attrs = ("position",)

    def __init__(self, message, position=None):
        if position is not None:
            message = "{} (at offset {})".format(message, position)
        super().__init__(message)
        self.position = position


class QueryEvaluationError(QueryError):
    """Raised when a well-formed expression cannot be evaluated
    (e.g. a path selecting no node where exactly one is required)."""

    code = "query-evaluation"
    wire_doc = "well-formed expression that cannot be evaluated"
