"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so that callers can catch
library failures with a single ``except`` clause while still being able to
distinguish the individual failure modes the paper talks about (dynamic
errors on PUL application, incompatible operations, unsolvable conflicts,
...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class XMLSyntaxError(ReproError):
    """Raised by the XML parser on malformed input.

    Carries the position of the offending character so error messages can
    point at the input.
    """

    def __init__(self, message, position=None):
        if position is not None:
            message = "{} (at offset {})".format(message, position)
        super().__init__(message)
        self.position = position


class DocumentError(ReproError):
    """Raised on invalid document manipulation (unknown node, bad shape)."""


class UnknownNodeError(DocumentError):
    """Raised when a node id does not belong to the document."""

    def __init__(self, node_id):
        super().__init__("unknown node id: {!r}".format(node_id))
        self.node_id = node_id


class InvalidOperationError(ReproError):
    """Raised when an update operation is constructed with invalid
    parameters (violating the static conditions of Table 2)."""


class NotApplicableError(ReproError):
    """Raised when an operation or a PUL is not applicable on a document
    (Definition 1 / Definition 4): unknown target, type mismatch, or
    incompatible operations.
    """


class IncompatibleOperationsError(NotApplicableError):
    """Raised when a PUL contains incompatible operations (Definition 3),
    e.g. two renames of the same node."""

    def __init__(self, op1, op2):
        super().__init__(
            "incompatible operations on node {}: {} / {}".format(
                op1.target, op1.describe(), op2.describe()))
        self.op1 = op1
        self.op2 = op2


class MergeError(ReproError):
    """Raised when two PULs cannot be merged (Definition 5)."""


class SerializationError(ReproError):
    """Raised on malformed PUL exchange documents."""


class LabelingError(ReproError):
    """Raised on invalid labeling-scheme use (e.g. no room semantics bugs,
    labels from different schemes compared)."""


class ReconciliationError(ReproError):
    """Raised when conflict resolution cannot find a valid reconciliation
    satisfying the producers' policies (Algorithm 3 abort)."""

    def __init__(self, conflict, reason):
        super().__init__(
            "reconciliation failed on conflict of type {}: {}".format(
                conflict.conflict_type, reason))
        self.conflict = conflict
        self.reason = reason


class DurabilityError(ReproError):
    """Raised on write-ahead-log or snapshot failures (bad frames outside
    the tolerated torn tail, unwritable durability directories, ...)."""


class RecoveryError(DurabilityError):
    """Raised when a durable state cannot be reconstructed (no valid
    snapshot generation, replay diverging from the logged versions)."""


class QueryError(ReproError):
    """Base error for the XQuery Update front end."""


class QuerySyntaxError(QueryError):
    """Raised on unparsable XQuery Update expressions."""

    def __init__(self, message, position=None):
        if position is not None:
            message = "{} (at offset {})".format(message, position)
        super().__init__(message)
        self.position = position


class QueryEvaluationError(QueryError):
    """Raised when a well-formed expression cannot be evaluated
    (e.g. a path selecting no node where exactly one is required)."""
