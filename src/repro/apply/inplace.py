"""In-place batch application with incremental label maintenance.

The store's original hot path rebuilt the whole resident document per
batch: the streaming evaluator walked every node into an event stream,
transformed it, and materialized a fresh tree — O(document) work with
large constants for batches that touch a handful of subtrees. This module
applies the reduced batch PUL *to the resident tree itself* (the
:func:`~repro.pul.semantics.apply_pul` semantics, which the differential
suite proves byte- and id-identical to the streaming path) and then
repairs the containment labeling only around the touched sites:

* labels of removed subtrees are forgotten (their ids stay burned);
* runs of freshly inserted siblings receive codes generated strictly
  between the surviving neighbor codes
  (:meth:`~repro.labeling.scheme.ContainmentLabeling.assign_run` — the
  update-tolerance property is preserved: existing codes are never
  rewritten);
* sibling pointers are re-derived for exactly the parents whose child
  lists changed.

Atomicity is the delicate part. The streaming path was atomic by
construction (the old tree survived a failed batch untouched); in-place
application mutates the published tree, and two XQUF dynamic checks fire
*after* mutation (duplicate-attribute detection and the id-index
rebuild). The applier therefore journals an undo snapshot of every node
an operation can touch — each target and its parent, a set linear in the
batch, not the document — and restores structure, parent pointers and the
root on any failure before re-raising, so the "no partial state is ever
published" contract of :meth:`DocumentStore.flush` holds unchanged.

Structural edits the per-site repair cannot localize (replacing or
deleting the document root) fall back to a whole-tree
:meth:`~repro.labeling.scheme.ContainmentLabeling.sync`, which is always
valid, just not O(touched).
"""

from __future__ import annotations

from repro.errors import DocumentError
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.semantics import apply_pul

#: operations whose label repair anchors at the *target* element
_TARGET_SITE_OPS = (InsertInto.op_name, InsertIntoAsFirst.op_name,
                    InsertIntoAsLast.op_name, ReplaceChildren.op_name,
                    InsertAttributes.op_name)

#: operations whose label repair anchors at the target's *parent*
_PARENT_SITE_OPS = (InsertBefore.op_name, InsertAfter.op_name,
                    ReplaceNode.op_name, Delete.op_name)

#: operations that remove the target's subtree from the document
_REMOVING_OPS = (Delete.op_name, ReplaceNode.op_name)


class _Snapshot:
    """Undo record of one node's mutable state."""

    __slots__ = ("node", "name", "value", "children", "attributes",
                 "parent")

    def __init__(self, node):
        self.node = node
        self.name = node.name
        self.value = node.value
        self.children = list(node.children)
        self.attributes = list(node.attributes)
        self.parent = node.parent

    def restore(self):
        node = self.node
        node.name = self.name
        node.value = self.value
        node.children[:] = self.children
        for child in node.children:
            child.parent = node
        node.attributes[:] = self.attributes
        for attr in node.attributes:
            attr.parent = node
        node.parent = self.parent


def apply_batch_in_place(document, labeling, pul, preserve_ids=True):
    """Make ``pul`` effective on ``document`` in place, maintaining
    ``labeling`` incrementally.

    Returns ``"incremental"`` when the labeling was repaired per-site, or
    ``"sync"`` when a root-level structural change forced a whole-tree
    sync. On any application failure the document is restored to its
    pre-call structure (and the labeling is untouched) before the
    exception propagates.
    """
    snapshots = {}
    site_ids = []
    seen_sites = set()
    removed_ids = []
    needs_sync = False
    root = document.root
    for op in pul:
        target = document.find(op.target)
        if target is None:
            # apply_pul resolves every target before mutating anything,
            # so the miss raises there with the tree still untouched
            continue
        if id(target) not in snapshots:
            snapshots[id(target)] = _Snapshot(target)
        parent = target.parent
        if parent is not None and id(parent) not in snapshots:
            snapshots[id(parent)] = _Snapshot(parent)
        kind = op.op_name
        if kind in _TARGET_SITE_OPS:
            if target.node_id not in seen_sites:
                seen_sites.add(target.node_id)
                site_ids.append(target.node_id)
        elif kind in _PARENT_SITE_OPS:
            if parent is None:
                needs_sync = True  # root replaced/deleted/flanked
            elif parent.node_id not in seen_sites:
                seen_sites.add(parent.node_id)
                site_ids.append(parent.node_id)
        if kind in _REMOVING_OPS:
            removed_ids.extend(n.node_id for n in target.iter_subtree())
        elif kind == ReplaceChildren.op_name:
            for child in target.children:
                removed_ids.extend(n.node_id
                                   for n in child.iter_subtree())
    try:
        apply_pul(document, pul, check=False, preserve_ids=preserve_ids,
                  reindex=False)
        if needs_sync or document.root is not root:
            # root-level structural change: localized repair has no
            # labeled anchor, re-derive index and labels wholesale
            document.rebuild_index()
            labeling.sync(document)
            return "sync"
        document.forget_ids(removed_ids)
        for node_id in removed_ids:
            labeling.forget(node_id)
        runs = []
        repoint = []
        for site_id in site_ids:
            site = document.find(site_id)
            if site is None:
                continue  # the site itself was removed by a sibling op
            site_label = labeling.find(site_id)
            if site_label is None:
                # no labeled anchor (the site was created by this very
                # batch — shouldn't survive reduction, but a wholesale
                # repair is always correct)
                document.rebuild_index()
                labeling.sync(document)
                return "sync"
            _collect_runs(labeling, site, site_label, runs)
            repoint.append(site)
        # fresh identifiers must come out in document order across every
        # insertion site — exactly what a whole-document rebuild_index
        # would assign. Runs occupy disjoint code gaps and start-code
        # order is document order, so sorting by each run's left bound
        # reproduces the rebuild's scan order; within a run, tree order.
        runs.sort(key=lambda entry: entry[0])
        # duplicate detection first, exactly like rebuild_index: a clash
        # must raise before any fresh id is burned, or a failed batch
        # would advance the allocator and diverge later assignments
        seen = set()
        highest = -1
        for __, __, __, run in runs:
            for tree in run:
                for node in tree.iter_subtree():
                    node_id = node.node_id
                    if node_id is None:
                        continue
                    if node_id in document or node_id in seen:
                        raise DocumentError(
                            "duplicate node id: {}".format(node_id))
                    seen.add(node_id)
                    if node_id > highest:
                        highest = node_id
        document.allocator.reserve_at_least(highest + 1)
        for __, __, __, run in runs:
            for tree in run:
                document.register_tree(tree)
    except Exception:
        for snapshot in snapshots.values():
            snapshot.restore()
        document.root = root
        # the failure may have left the id index mid-maintenance;
        # re-derive it from the restored tree (every node keeps its
        # original id, so no fresh identifiers are burned)
        document.rebuild_index()
        raise
    try:
        for left, right, site_label, run in runs:
            labeling.assign_run(site_label, run, left, right)
        for site in repoint:
            labeling.repoint_children(site)
    except Exception:
        # the batch is committed (tree and index maintained); a label
        # repair that cannot be localized is finished wholesale instead
        # of unwinding a successfully applied batch
        labeling.sync(document)
        return "sync"
    return "incremental"


def replay_batch(document, labeling, pul):
    """Re-apply an already-committed reduced batch to a lagging copy's
    *tree*, maintaining the id index but no labels.

    The MVCC store hands each retired published version back to the
    writer as the next flush's working copy; before the writer can
    mutate it, the copy must catch up by one version — exactly the
    reduced batch that produced the version it lags behind. This is
    :func:`apply_batch_in_place` stripped to its structural core: no
    undo journal (the batch already committed once, it cannot fail
    here), no duplicate pre-scan, and **no label maintenance** — the
    catch-up's caller copies the published version's immutable
    id-keyed label map wholesale instead of re-deriving per-site
    codes, which is the costly half of a live apply. ``labeling`` is
    the copy's own *pre-batch* labels, used only to order the
    insertion runs: fresh identifiers must come out in document order
    across every site exactly as the live apply assigned them (a
    replay allocating different ids would desynchronize every later
    batch's targets), and sorting the runs by their left code bound
    reproduces that order — including the nested-site interleavings a
    per-site walk would get wrong. Run collection sees the same tree,
    the same labels and the same reduced PUL as the live apply did,
    so the runs — and therefore the ids — come out identical.
    """
    site_ids = []
    seen_sites = set()
    removed_ids = []
    needs_sync = False
    root = document.root
    for op in pul:
        target = document.find(op.target)
        if target is None:
            continue
        parent = target.parent
        kind = op.op_name
        if kind in _TARGET_SITE_OPS:
            if target.node_id not in seen_sites:
                seen_sites.add(target.node_id)
                site_ids.append(target.node_id)
        elif kind in _PARENT_SITE_OPS:
            if parent is None:
                needs_sync = True
            elif parent.node_id not in seen_sites:
                seen_sites.add(parent.node_id)
                site_ids.append(parent.node_id)
        if kind in _REMOVING_OPS:
            removed_ids.extend(n.node_id for n in target.iter_subtree())
        elif kind == ReplaceChildren.op_name:
            for child in target.children:
                removed_ids.extend(n.node_id
                                   for n in child.iter_subtree())
    apply_pul(document, pul, check=False, preserve_ids=True,
              reindex=False)
    if needs_sync or document.root is not root:
        # root-level structural change: the live apply fell back to a
        # wholesale reindex, whose document-order id assignment a
        # rebuild here reproduces exactly
        document.rebuild_index()
        return
    document.forget_ids(removed_ids)
    runs = []
    for site_id in site_ids:
        site = document.find(site_id)
        if site is None:
            continue  # the site itself was removed by a sibling op
        site_label = labeling.find(site_id)
        if site_label is None:
            document.rebuild_index()
            return
        _collect_runs(labeling, site, site_label, runs)
    runs.sort(key=lambda entry: entry[0])
    highest = -1
    for __, __, __, run in runs:
        for tree in run:
            for node in tree.iter_subtree():
                if node.node_id is not None and node.node_id > highest:
                    highest = node.node_id
    document.allocator.reserve_at_least(highest + 1)
    for __, __, __, run in runs:
        for tree in run:
            document.register_tree(tree)


def _collect_runs(labeling, site, site_label, runs):
    """Append ``site``'s unlabeled runs to ``runs`` as ``(left_code,
    right_code, site_label, nodes)`` — consecutive label-less attributes
    and children, bounded by the neighboring existing codes."""
    run = []
    left = site_label.start
    for item in list(site.attributes) + list(site.children):
        label = (labeling.find(item.node_id)
                 if item.node_id is not None else None)
        if label is None:
            run.append(item)
            continue
        if run:
            runs.append((left, label.start, site_label, run))
            run = []
        left = label.end
    if run:
        runs.append((left, site_label.end, site_label, run))
