"""In-memory PUL evaluation — the "modified Qizx" path (Section 4.3).

The entire document is parsed into a tree, the PUL is applied through the
five-stage semantics, labels are incrementally extended to the new nodes,
and the document is serialized back. Memory is proportional to the
document size — the baseline the streaming evaluator is compared against
in Figure 6a.
"""

from __future__ import annotations

from repro.pul.semantics import apply_pul
from repro.xdm.document import Document
from repro.xdm.parser import parse_document
from repro.xdm.serializer import serialize


class InMemoryEvaluator:
    """Evaluate PULs by materializing the document.

    Parameters
    ----------
    labeling:
        Optional :class:`~repro.labeling.scheme.ContainmentLabeling` of the
        document; after application it is synchronized so that new nodes
        get labels (existing codes never change).
    """

    def __init__(self, labeling=None):
        self.labeling = labeling

    def evaluate(self, source, pul, with_ids=False, emit_labels=False):
        """Apply ``pul`` to ``source`` (XML text or a Document).

        Returns the serialized result. Text input is parsed first (ids in
        document order); Document input is updated in place.
        """
        if isinstance(source, Document):
            document = source
        else:
            document = parse_document(source)
        apply_pul(document, pul)
        labels = None
        if self.labeling is not None:
            self.labeling.sync(document)
            if emit_labels:
                labels = {node_id: label.to_string() for node_id, label
                          in self.labeling.as_mapping().items()}
        if document.root is None:
            return ""
        return serialize(document, with_ids=with_ids, labels=labels)


def apply_in_memory(source, pul, labeling=None, with_ids=False,
                    emit_labels=False):
    """One-shot convenience wrapper around :class:`InMemoryEvaluator`."""
    return InMemoryEvaluator(labeling=labeling).evaluate(
        source, pul, with_ids=with_ids, emit_labels=emit_labels)
