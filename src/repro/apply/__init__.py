"""PUL evaluators (Section 4 / Figure 6a).

* :mod:`repro.apply.inmemory` — the "modified Qizx" evaluator: load the
  whole document, apply the PUL, serialize back.
* :mod:`repro.apply.streaming` — the SAX-style evaluator: the document
  flows through as an event stream, transformed on the fly; memory is
  independent of document size.

Both evaluators assign identifiers (and, when a labeling is supplied,
containment labels) to new nodes in final-document order with identical
tie-breaking, so their outputs are directly comparable.
"""

from repro.apply.events import (
    EndElement,
    StartElement,
    TextEvent,
    document_events,
    events_to_document,
    events_to_xml,
    parse_events,
)
from repro.apply.inmemory import InMemoryEvaluator, apply_in_memory
from repro.apply.streaming import StreamingEvaluator, apply_streaming

__all__ = [
    "StartElement", "EndElement", "TextEvent",
    "document_events", "parse_events", "events_to_xml",
    "events_to_document",
    "InMemoryEvaluator", "apply_in_memory",
    "StreamingEvaluator", "apply_streaming",
]
