"""SAX-like event model: sources and sinks.

Events carry node identifiers. Both sources assign/propagate identifiers in
document order, so an event stream parsed from text and one walked from the
corresponding :class:`Document` are identical.

* :func:`document_events` — walk a live document;
* :func:`parse_events` — iterative XML parser (O(depth) memory), assigning
  identifiers by position exactly like
  :func:`repro.xdm.parser.parse_document` does;
* :func:`events_to_xml` — serialize an event stream back to text;
* :func:`events_to_document` — materialize an event stream as a document
  (mainly for tests).
"""

from __future__ import annotations

from repro.errors import SerializationError, XMLSyntaxError
from repro.xdm.document import Document
from repro.xdm.node import Node
from repro.xdm.parser import _Parser
from repro.xdm.serializer import escape_attribute, escape_text


class AttributeEvent:
    """An attribute within a start-element event."""

    __slots__ = ("name", "value", "node_id")

    def __init__(self, name, value, node_id=None):
        self.name = name
        self.value = value
        self.node_id = node_id

    def __repr__(self):
        return "@{}={!r}#{}".format(self.name, self.value, self.node_id)


class StartElement:
    __slots__ = ("name", "attributes", "node_id")

    def __init__(self, name, attributes=(), node_id=None):
        self.name = name
        self.attributes = list(attributes)
        self.node_id = node_id

    def __repr__(self):
        return "<{}#{}>".format(self.name, self.node_id)


class EndElement:
    __slots__ = ("name", "node_id")

    def __init__(self, name, node_id=None):
        self.name = name
        self.node_id = node_id

    def __repr__(self):
        return "</{}#{}>".format(self.name, self.node_id)


class TextEvent:
    __slots__ = ("value", "node_id")

    def __init__(self, value, node_id=None):
        self.value = value
        self.node_id = node_id

    def __repr__(self):
        return "text({!r}#{})".format(self.value, self.node_id)


def document_events(document):
    """Yield the event stream of a document (ids taken from the nodes)."""
    if document.root is None:
        return
    yield from _node_events(document.root)


def _node_events(node):
    if node.is_text:
        yield TextEvent(node.value, node_id=node.node_id)
        return
    yield StartElement(
        node.name,
        [AttributeEvent(attr.name, attr.value, node_id=attr.node_id)
         for attr in node.attributes],
        node_id=node.node_id)
    for child in node.children:
        yield from _node_events(child)
    yield EndElement(node.name, node_id=node.node_id)


def parse_events(text, keep_whitespace=False):
    """Iterative XML parsing into events, assigning node identifiers in
    document order (O(depth) memory — this is the "specialized SAX parser"
    of Section 4.3)."""
    parser = _Parser(text, keep_whitespace=keep_whitespace)
    parser.skip_misc()
    if parser.peek() != "<":
        parser.error("expected an element")
    next_id = 0
    stack = []  # [name, node_id] frames of open elements
    while True:
        event, closed = _next_event(parser, stack, keep_whitespace)
        if event is None:
            break
        if isinstance(event, StartElement):
            event.node_id = next_id
            next_id += 1
            for attr in event.attributes:
                attr.node_id = next_id
                next_id += 1
            if stack and stack[-1][1] is None and \
                    stack[-1][0] == event.name:
                stack[-1][1] = event.node_id
            if closed is not None:
                closed.node_id = event.node_id
        elif isinstance(event, TextEvent):
            event.node_id = next_id
            next_id += 1
        yield event
        if closed is not None:
            yield closed
        if not stack:
            break
    parser.skip_misc()
    if not parser.eof():
        parser.error("trailing content after document element")


def _next_event(parser, stack, keep_whitespace):
    """Produce the next event (plus an immediate EndElement for
    self-closing tags)."""
    text_parts = []
    while True:
        if parser.eof():
            if stack:
                parser.error("unexpected end of input")
            return None, None
        ch = parser.peek()
        if ch == "<":
            if text_parts:
                value = "".join(text_parts)
                if keep_whitespace or value.strip():
                    return TextEvent(value), None
                text_parts = []
            if parser.peek(2) == "</":
                parser.advance(2)
                name = parser.read_name()
                parser.skip_whitespace()
                parser.expect(">")
                if not stack or stack[-1][0] != name:
                    parser.error("mismatched end tag </{}>".format(name))
                __, node_id = stack.pop()
                return EndElement(name, node_id=node_id), None
            if parser.peek(4) == "<!--":
                end = parser.text.find("-->", parser.pos + 4)
                if end < 0:
                    parser.error("unterminated comment")
                parser.pos = end + 3
                continue
            if parser.peek(9) == "<![CDATA[":
                end = parser.text.find("]]>", parser.pos + 9)
                if end < 0:
                    parser.error("unterminated CDATA section")
                text_parts.append(parser.text[parser.pos + 9:end])
                parser.pos = end + 3
                continue
            if parser.peek(2) == "<?":
                end = parser.text.find("?>", parser.pos + 2)
                if end < 0:
                    parser.error("unterminated processing instruction")
                parser.pos = end + 2
                continue
            start, self_closing = _parse_start_tag(parser)
            if self_closing:
                return start, EndElement(start.name, node_id=None)
            stack.append([start.name, None])
            return start, None
        if ch == "&":
            text_parts.append(parser.read_reference())
        else:
            text_parts.append(ch)
            parser.advance()


def _parse_start_tag(parser):
    parser.expect("<")
    name = parser.read_name()
    attributes = []
    seen = set()
    while True:
        parser.skip_whitespace()
        if parser.peek(2) == "/>":
            parser.advance(2)
            return StartElement(name, attributes), True
        if parser.peek() == ">":
            parser.advance()
            return StartElement(name, attributes), False
        attr_name = parser.read_name()
        if attr_name in seen:
            parser.error("duplicate attribute: {}".format(attr_name))
        seen.add(attr_name)
        parser.skip_whitespace()
        parser.expect("=")
        parser.skip_whitespace()
        quote = parser.peek()
        if quote not in ("'", '"'):
            parser.error("attribute value must be quoted")
        parser.advance()
        parts = []
        while True:
            if parser.eof():
                parser.error("unterminated attribute value")
            ch = parser.text[parser.pos]
            if ch == quote:
                parser.advance()
                break
            if ch == "&":
                parts.append(parser.read_reference())
            elif ch == "<":
                parser.error("'<' in attribute value")
            else:
                parts.append(ch)
                parser.advance()
        attributes.append(AttributeEvent(attr_name, "".join(parts)))


class XMLEventWriter:
    """Serialize an event stream to XML text incrementally.

    ``write(event)`` then ``result()``; or use :func:`events_to_xml`.
    """

    def __init__(self, with_ids=False, labels=None):
        self._parts = []
        self._open_start = None  # pending "<name attr..." of the last start
        self.with_ids = with_ids
        self.labels = labels

    def write(self, event):
        if isinstance(event, StartElement):
            self._close_pending(full=False)
            chunk = ["<", event.name]
            if self.with_ids and event.node_id is not None:
                chunk.append(' repro:id="{}"'.format(event.node_id))
            if self.labels is not None and event.node_id in self.labels:
                chunk.append(' repro:label="{}"'.format(
                    escape_attribute(str(self.labels[event.node_id]))))
            for attr in event.attributes:
                chunk.append(' {}="{}"'.format(
                    attr.name, escape_attribute(attr.value)))
            self._open_start = "".join(chunk)
        elif isinstance(event, EndElement):
            if self._open_start is not None:
                self._parts.append(self._open_start + "/>")
                self._open_start = None
            else:
                self._parts.append("</{}>".format(event.name))
        elif isinstance(event, TextEvent):
            self._close_pending(full=False)
            self._parts.append(escape_text(event.value))
        else:
            raise SerializationError(
                "unknown event: {!r}".format(event))

    def _close_pending(self, full):
        if self._open_start is not None:
            self._parts.append(self._open_start + ">")
            self._open_start = None

    def drain(self):
        """Return and clear the completed output so far, or ``""`` while
        a start tag is still pending (nothing can be flushed safely)."""
        if self._open_start is not None:
            return ""
        chunk = "".join(self._parts)
        self._parts.clear()
        return chunk

    def result(self):
        if self._open_start is not None:
            raise SerializationError("unterminated element in event stream")
        return "".join(self._parts)


def events_to_xml(events, with_ids=False, labels=None):
    """Serialize an event stream to XML text."""
    writer = XMLEventWriter(with_ids=with_ids, labels=labels)
    for event in events:
        writer.write(event)
    return writer.result()


def events_to_file(events, handle, with_ids=False, labels=None,
                   flush_every=256):
    """Serialize an event stream incrementally to an open text file.

    The writer's buffer is drained every ``flush_every`` events, so memory
    stays proportional to document depth — the disk-serialization mode of
    the paper's streamed evaluation (Section 4.3). Returns the number of
    bytes written.
    """
    writer = XMLEventWriter(with_ids=with_ids, labels=labels)
    written = 0
    pending = 0
    for event in events:
        writer.write(event)
        pending += 1
        if pending >= flush_every:
            chunk = writer.drain()
            if chunk:
                handle.write(chunk)
                written += len(chunk)
                pending = 0
    chunk = writer.result()
    handle.write(chunk)
    written += len(chunk)
    return written


def events_to_document(events, allocator=None):
    """Materialize an event stream as a :class:`Document` (ids kept)."""
    root = None
    stack = []
    for event in events:
        if isinstance(event, StartElement):
            element = Node.element(event.name, node_id=event.node_id)
            for attr in event.attributes:
                element.append_attribute(Node.attribute(
                    attr.name, attr.value, node_id=attr.node_id))
            if stack:
                stack[-1].append_child(element)
            elif root is None:
                root = element
            else:
                raise XMLSyntaxError("multiple root elements")
            stack.append(element)
        elif isinstance(event, TextEvent):
            if not stack:
                raise XMLSyntaxError("text outside the root element")
            stack[-1].append_child(Node.text(event.value,
                                             node_id=event.node_id))
        elif isinstance(event, EndElement):
            stack.pop()
    document = Document(allocator=allocator)
    if root is not None:
        document.root = root
        document.rebuild_index()
    return document
