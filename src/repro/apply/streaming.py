"""Streaming PUL evaluation (Section 4.3).

The original document flows through as an event stream; the operations of
the PUL are indexed by target identifier and applied on the fly; the
transformed stream is serialized immediately. No in-memory representation
of the document is ever built: memory is proportional to document depth
plus PUL size, decoupling memory requirements from document size.

Identifier assignment to new nodes matches the in-memory evaluator: fresh
identifiers in final-document order starting from ``fresh_start`` (the
executor's allocator position — the original node count for a freshly
parsed document). When a :class:`ContainmentLabeling` is supplied, new
nodes also receive containment codes generated between surviving neighbor
codes (no existing label is ever touched — update tolerance), and sibling
pointers are restitched as elements close. One event of lookahead keeps
new-attribute and children-prefix codes below the first original child's
start code.
"""

from __future__ import annotations

from repro.apply.events import (
    AttributeEvent,
    EndElement,
    StartElement,
    TextEvent,
)
from repro.errors import NotApplicableError
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)


class _Plan:
    """The per-target update plan (operations grouped by effect)."""

    __slots__ = ("rename", "replace_value", "delete", "replace_node",
                 "replace_children", "ins_before", "ins_after", "ins_first",
                 "ins_last", "ins_into", "ins_attributes")

    def __init__(self):
        self.rename = None
        self.replace_value = None
        self.delete = False
        self.replace_node = None       # list of trees (may be empty)
        self.replace_children = None   # list of trees (may be empty)
        self.ins_before = []
        self.ins_after = []
        self.ins_first = []
        self.ins_last = []
        self.ins_into = []
        self.ins_attributes = []


def _build_plans(pul):
    plans = {}
    for op in pul:
        plan = plans.get(op.target)
        if plan is None:
            plan = plans[op.target] = _Plan()
        name = op.op_name
        if name == Rename.op_name:
            plan.rename = op.name
        elif name == ReplaceValue.op_name:
            plan.replace_value = op.value
        elif name == Delete.op_name:
            plan.delete = True
        elif name == ReplaceNode.op_name:
            plan.replace_node = list(op.trees)
        elif name == ReplaceChildren.op_name:
            plan.replace_children = list(op.trees)
        elif name == InsertBefore.op_name:
            plan.ins_before.append(list(op.trees))
        elif name == InsertAfter.op_name:
            plan.ins_after.append(list(op.trees))
        elif name == InsertIntoAsFirst.op_name:
            plan.ins_first.append(list(op.trees))
        elif name == InsertIntoAsLast.op_name:
            plan.ins_last.append(list(op.trees))
        elif name == InsertInto.op_name:
            plan.ins_into.append(list(op.trees))
        elif name == InsertAttributes.op_name:
            plan.ins_attributes.append(list(op.trees))
        else:
            raise NotApplicableError("unknown operation {!r}".format(op))
    return plans


class _Frame:
    """State of one open *emitted* element."""

    __slots__ = ("node_id", "level", "end_code", "child_ids",
                 "pending_last")

    def __init__(self, node_id, level, end_code):
        self.node_id = node_id
        self.level = level
        self.end_code = end_code
        self.child_ids = []
        self.pending_last = None  # ins↘ tree lists to emit before closing


class _Peekable:
    """One-event lookahead over the input stream."""

    __slots__ = ("_iter", "_buffer")
    _EMPTY = object()

    def __init__(self, events):
        self._iter = iter(events)
        self._buffer = self._EMPTY

    def __iter__(self):
        return self

    def __next__(self):
        if self._buffer is not self._EMPTY:
            value = self._buffer
            self._buffer = self._EMPTY
            return value
        return next(self._iter)

    def peek(self):
        if self._buffer is self._EMPTY:
            try:
                self._buffer = next(self._iter)
            except StopIteration:
                return None
        return self._buffer


class StreamingEvaluator:
    """Single-pass PUL evaluator over an event stream."""

    def __init__(self, pul, fresh_start=None, labeling=None, check=True):
        if check:
            pul.check_compatible()
        self.plans = _build_plans(pul)
        self.next_id = fresh_start
        self.labeling = labeling
        self._last_code = None
        self._frames = []

    # -- id / label helpers ---------------------------------------------------

    def _assign_ids(self, trees):
        if self.next_id is None:
            return
        for tree in trees:
            for node in tree.iter_subtree():
                if node.node_id is None:
                    node.node_id = self.next_id
                    self.next_id += 1

    def _label_trees(self, trees, right_code):
        """Containment codes for new trees, strictly between the last
        emitted boundary and ``right_code``."""
        if self.labeling is None or not trees:
            return
        frame = self._frames[-1] if self._frames else None
        parent_id = frame.node_id if frame else None
        parent_level = frame.level if frame else -1
        self.labeling.assign_tree(trees, parent_id, parent_level,
                                  self._last_code, right_code)
        self._last_code = self.labeling.label_of(trees[-1].node_id).end

    def _note_code(self, node_id, which):
        if self.labeling is None:
            return
        label = self.labeling.find(node_id)
        if label is not None:
            self._last_code = label.start if which == 0 else label.end

    def _original_label(self, node_id):
        if self.labeling is None:
            return None
        return self.labeling.find(node_id)

    def _forget(self, node_id):
        if self.labeling is not None:
            self.labeling.forget(node_id)

    # -- transformation ---------------------------------------------------------

    def transform(self, events):
        """Yield the transformed event stream."""
        stream = _Peekable(events)
        skip_depth = 0
        suppress_depth = 0  # inside a repC'd element: children suppressed
        for event in stream:
            if isinstance(event, StartElement):
                if skip_depth or suppress_depth:
                    if skip_depth:
                        skip_depth += 1
                    else:
                        suppress_depth += 1
                    self._forget(event.node_id)
                    for attr in event.attributes:
                        self._forget(attr.node_id)
                    continue
                outcome = yield from self._enter_element(event, stream)
                if outcome == "skip":
                    skip_depth = 1
                elif outcome == "suppress":
                    suppress_depth = 1
            elif isinstance(event, TextEvent):
                if skip_depth or suppress_depth:
                    self._forget(event.node_id)
                    continue
                yield from self._text(event)
            elif isinstance(event, EndElement):
                if skip_depth:
                    skip_depth -= 1
                    if skip_depth == 0:
                        self._forget(event.node_id)
                    continue
                if suppress_depth:
                    suppress_depth -= 1
                    if suppress_depth:
                        continue
                    # depth hit zero: close the repC'd element itself
                yield from self._leave_element(event)

    # -- element handling --------------------------------------------------------

    def _emit_trees(self, tree_lists, right_code):
        """Emit new subtrees (id + label assignment + frame bookkeeping)."""
        for trees in tree_lists:
            copies = [tree.deep_copy(keep_ids=True) for tree in trees]
            self._assign_ids(copies)
            self._label_trees(copies, right_code)
            for copy in copies:
                if self._frames:
                    self._frames[-1].child_ids.append(copy.node_id)
                yield from _tree_events(copy)

    def _plan_of(self, node_id):
        return self.plans.get(node_id)

    def _after_code(self, label):
        """The next original boundary after this node's subtree: the right
        sibling's start, or the enclosing (parent) element's end code."""
        if label is None:
            return None
        if label.right_sibling_id is not None:
            sibling = self._original_label(label.right_sibling_id)
            if sibling is not None:
                return sibling.start
        if self._frames:
            return self._frames[-1].end_code
        return None

    def _enter_element(self, event, stream):
        plan = self._plan_of(event.node_id)
        label = self._original_label(event.node_id)
        if plan is not None and plan.ins_before:
            yield from self._emit_trees(
                plan.ins_before, label.start if label else None)
        if plan is not None and (plan.replace_node is not None
                                 or plan.delete):
            bound = self._after_code(label)
            if plan.replace_node is not None:
                yield from self._emit_trees([plan.replace_node], bound)
            if plan.ins_after:
                yield from self._emit_trees(
                    list(reversed(plan.ins_after)), bound)
            self._forget(event.node_id)
            return "skip"
        # the element survives
        name = plan.rename if plan is not None and plan.rename else \
            event.name
        if self._frames:
            self._frames[-1].child_ids.append(event.node_id)
        self._note_code(event.node_id, 0)
        first_bound = self._first_content_bound(event, label, stream)
        attributes = self._transform_attributes(event, plan, label,
                                                first_bound)
        frame = _Frame(
            event.node_id,
            label.level if label is not None else len(self._frames),
            label.end if label is not None else None)
        yield StartElement(name, attributes, node_id=event.node_id)
        self._frames.append(frame)
        if plan is not None and plan.replace_children is not None:
            yield from self._emit_trees(
                [plan.replace_children], frame.end_code)
            return "suppress"
        if plan is not None:
            # in-memory order: ins↙ blocks (reversed) precede ins↓ blocks
            # (reversed) at the children front
            prefix = list(reversed(plan.ins_first)) + \
                list(reversed(plan.ins_into))
            if prefix:
                yield from self._emit_trees(prefix, first_bound)
            frame.pending_last = plan.ins_last
        return None

    def _first_content_bound(self, event, label, stream):
        """Upper bound for codes generated right after the start tag: the
        first original child's start code (one event of lookahead), or the
        element's own end code when it has no children."""
        if self.labeling is None or label is None:
            return None
        upcoming = stream.peek()
        if isinstance(upcoming, (StartElement, TextEvent)):
            child_label = self._original_label(upcoming.node_id)
            if child_label is not None:
                return child_label.start
        return label.end

    def _transform_attributes(self, event, plan, element_label,
                              first_bound):
        result = []
        # advance the code cursor past the original attributes first, so
        # new attribute codes land after them
        if self.labeling is not None:
            for attr in event.attributes:
                attr_label = self.labeling.find(attr.node_id)
                if attr_label is not None and (
                        self._last_code is None
                        or attr_label.end > self._last_code):
                    self._last_code = attr_label.end
        for attr in event.attributes:
            attr_plan = self._plan_of(attr.node_id)
            if attr_plan is None:
                result.append(attr)
                continue
            if attr_plan.replace_node is not None:
                trees = [t.deep_copy(keep_ids=True)
                         for t in attr_plan.replace_node]
                self._assign_ids(trees)
                self._label_attributes(trees, event, element_label,
                                       first_bound)
                self._forget(attr.node_id)
                result.extend(
                    AttributeEvent(t.name, t.value, node_id=t.node_id)
                    for t in trees)
                continue
            if attr_plan.delete:
                self._forget(attr.node_id)
                continue
            name = attr_plan.rename or attr.name
            value = attr.value if attr_plan.replace_value is None \
                else attr_plan.replace_value
            result.append(AttributeEvent(name, value,
                                         node_id=attr.node_id))
        if plan is not None:
            for trees in plan.ins_attributes:
                copies = [t.deep_copy(keep_ids=True) for t in trees]
                self._assign_ids(copies)
                self._label_attributes(copies, event, element_label,
                                       first_bound)
                result.extend(
                    AttributeEvent(t.name, t.value, node_id=t.node_id)
                    for t in copies)
        names = [attr.name for attr in result]
        if len(names) != len(set(names)):
            raise NotApplicableError(
                "duplicate attribute on element {}: {}".format(
                    event.node_id, sorted(names)))
        return result

    def _label_attributes(self, trees, event, element_label, first_bound):
        if self.labeling is None or element_label is None:
            return
        self.labeling.assign_tree(trees, event.node_id,
                                  element_label.level,
                                  self._last_code, first_bound)
        self._last_code = self.labeling.label_of(trees[-1].node_id).end

    def _leave_element(self, event):
        frame = self._frames[-1]
        if frame.pending_last:
            yield from self._emit_trees(frame.pending_last, frame.end_code)
        self._frames.pop()
        self._stitch_children(frame)
        self._note_code(event.node_id, 1)
        plan = self._plan_of(event.node_id)
        name = plan.rename if plan is not None and plan.rename else \
            event.name
        yield EndElement(name, node_id=event.node_id)
        if plan is not None and plan.ins_after:
            label = self._original_label(event.node_id)
            yield from self._emit_trees(
                list(reversed(plan.ins_after)), self._after_code(label))

    def _stitch_children(self, frame):
        """Recompute the sibling pointers of the element's final children."""
        if self.labeling is None:
            return
        previous_id = None
        for child_id in frame.child_ids:
            label = self.labeling.find(child_id)
            if label is None:
                continue
            if label.left_sibling_id != previous_id:
                self.labeling.import_label(
                    label.replaced(left_sibling_id=previous_id))
            if previous_id is not None:
                previous = self.labeling.find(previous_id)
                if previous.right_sibling_id != child_id:
                    self.labeling.import_label(
                        previous.replaced(right_sibling_id=child_id))
            previous_id = child_id
        if previous_id is not None:
            last = self.labeling.find(previous_id)
            if last.right_sibling_id is not None:
                self.labeling.import_label(
                    last.replaced(right_sibling_id=None))

    # -- text nodes ----------------------------------------------------------------

    def _text(self, event):
        plan = self._plan_of(event.node_id)
        if plan is None:
            if self._frames:
                self._frames[-1].child_ids.append(event.node_id)
            self._note_code(event.node_id, 1)
            yield event
            return
        label = self._original_label(event.node_id)
        if plan.ins_before:
            yield from self._emit_trees(
                plan.ins_before, label.start if label else None)
        if plan.replace_node is not None:
            yield from self._emit_trees(
                [plan.replace_node], self._after_code(label))
            self._forget(event.node_id)
        elif plan.delete:
            self._forget(event.node_id)
        else:
            value = event.value if plan.replace_value is None \
                else plan.replace_value
            if self._frames:
                self._frames[-1].child_ids.append(event.node_id)
            self._note_code(event.node_id, 1)
            yield TextEvent(value, node_id=event.node_id)
        if plan.ins_after:
            yield from self._emit_trees(
                list(reversed(plan.ins_after)), self._after_code(label))


def _tree_events(node):
    if node.is_text:
        yield TextEvent(node.value, node_id=node.node_id)
        return
    yield StartElement(
        node.name,
        [AttributeEvent(a.name, a.value, node_id=a.node_id)
         for a in node.attributes],
        node_id=node.node_id)
    for child in node.children:
        yield from _tree_events(child)
    yield EndElement(node.name, node_id=node.node_id)


def apply_streaming(events, pul, fresh_start=None, labeling=None,
                    check=True):
    """Transform ``events`` by ``pul``; returns the output event iterator.

    ``fresh_start``: first identifier for new nodes (the executor's
    allocator position); ``None`` leaves new nodes id-less.
    ``labeling``: a :class:`ContainmentLabeling` of the original document,
    updated in place (labels added for inserted nodes, dropped for removed
    ones; existing codes never change).
    """
    evaluator = StreamingEvaluator(pul, fresh_start=fresh_start,
                                   labeling=labeling, check=check)
    return evaluator.transform(events)
