"""Concurrent per-shard reduction.

:class:`ParallelReducer` reduces the shards produced by
:func:`~repro.pipeline.shard.shard_pul` concurrently and returns them in
shard order. Three backends:

* ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`; shards
  travel pickled (they carry their own labels, so workers reason through a
  :class:`~repro.reasoning.oracle.LabelOracle` without any document);
* ``thread``  — a :class:`concurrent.futures.ThreadPoolExecutor`; useful
  when the reduction is dominated by releasing-the-GIL work or for
  deterministic in-process testing with real concurrency;
* ``serial``  — an in-process loop (baseline and fallback).

A worker failing mid-batch (a crashed process, a poisoned shard, a broken
pool) does not fail the batch: the affected shards are recomputed
in-process and the incident is recorded on the returned
:class:`ReduceOutcome`, so callers can observe degraded-mode execution.
"""

from __future__ import annotations

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ReproError
from repro.pipeline.shard import shard_pul
from repro.reduction.engine import reduce_deterministic, reduce_pul

_BACKENDS = ("process", "thread", "serial")


def _reduce_shard(shard, deterministic):
    """Module-level worker entry point (must be picklable for the process
    backend). Reduces one shard against its own carried labels."""
    if deterministic:
        return reduce_deterministic(shard)
    return reduce_pul(shard)


def _reduce_shard_wire(payload, deterministic):
    """Wire-mode worker: one serialized shard in, one serialized reduced
    shard out. Strings cross the process boundary at memcpy speed, so the
    XML decode + reduce + encode — the whole job of a distributed
    reduction worker — runs on the worker's core."""
    from repro.pul.serialize import pul_from_xml, pul_to_xml
    return pul_to_xml(_reduce_shard(pul_from_xml(payload), deterministic))


class ShardFailure:
    """One worker failure the reducer recovered from."""

    __slots__ = ("shard_index", "error")

    def __init__(self, shard_index, error):
        self.shard_index = shard_index
        self.error = error

    def __repr__(self):
        return "ShardFailure(shard={}, error={!r})".format(
            self.shard_index, self.error)


class ReduceOutcome:
    """Per-shard reduction results, in shard order, plus telemetry."""

    __slots__ = ("shards", "reduced", "failures", "backend", "workers")

    def __init__(self, shards, reduced, failures, backend, workers):
        self.shards = shards
        self.reduced = reduced
        self.failures = failures
        self.backend = backend
        self.workers = workers

    @property
    def input_ops(self):
        return sum(len(s) for s in self.shards)

    @property
    def output_ops(self):
        return sum(len(s) for s in self.reduced)


class ParallelReducer:
    """Shard a PUL and reduce the shards concurrently.

    Parameters
    ----------
    workers:
        Worker count (also the default shard count).
    backend:
        ``process``, ``thread`` or ``serial``.
    deterministic:
        Use ``∆^H`` (:func:`reduce_deterministic`) rather than ``∆^O``.
    retry_serial:
        Recompute shards whose worker failed in-process instead of
        propagating the error.
    """

    def __init__(self, workers=2, backend="process", deterministic=True,
                 retry_serial=True):
        if backend not in _BACKENDS:
            raise ReproError(
                "unknown pipeline backend {!r} (use one of {})".format(
                    backend, "/".join(_BACKENDS)))
        if workers < 1:
            raise ReproError("workers must be >= 1, got {}".format(workers))
        self.workers = workers
        self.backend = backend
        self.deterministic = deterministic
        self.retry_serial = retry_serial
        self._pool = None

    # -- pool lifecycle ------------------------------------------------------
    # the pool is created lazily and kept warm across reduce() calls: an
    # executor serving a stream of PULs must not pay worker start-up and
    # interpreter fork costs per PUL

    def _get_pool(self):
        if self._pool is None:
            pool_class = (
                concurrent.futures.ProcessPoolExecutor
                if self.backend == "process"
                else concurrent.futures.ThreadPoolExecutor)
            self._pool = pool_class(max_workers=self.workers)
        return self._pool

    def close(self):
        """Shut the warm pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- concurrent map with mid-batch failure recovery ----------------------

    def _map(self, worker, items):
        """Run ``worker(item, deterministic)`` over ``items``; returns
        ``(results, failures, backend)`` with results in item order."""
        if self.backend == "serial" or len(items) == 1:
            return ([worker(item, self.deterministic) for item in items],
                    [], "serial")
        results = [None] * len(items)
        failures = []
        try:
            pool = self._get_pool()
            futures = {index: pool.submit(worker, items[index],
                                          self.deterministic)
                       for index in range(len(items))}
            for index, future in futures.items():
                try:
                    results[index] = future.result()
                except ReproError:
                    raise
                except BrokenProcessPool as error:
                    failures.append(ShardFailure(index, error))
                    self.close()  # unusable; a fresh pool next time
                except Exception as error:  # worker died mid-batch
                    failures.append(ShardFailure(index, error))
        except BrokenProcessPool as error:  # raised by submit()
            failures.append(ShardFailure(None, error))
            self.close()
        recovered = [index for index in range(len(items))
                     if results[index] is None]
        if recovered:
            if not self.retry_serial:
                raise ReproError(
                    "pipeline workers failed on shards {} ({})".format(
                        recovered, failures))
            for index in recovered:
                results[index] = worker(items[index], self.deterministic)
        return results, failures, self.backend

    # -- shard-level API -----------------------------------------------------

    def reduce_shards(self, shards):
        """Reduce already-built shards; returns a :class:`ReduceOutcome`."""
        reduced, failures, backend = self._map(_reduce_shard, shards)
        return ReduceOutcome(shards, reduced, failures, backend,
                             self.workers)

    def reduce_wire(self, payloads):
        """Reduce serialized shard payloads (the exchange-format texts of
        a :class:`~repro.distributed.messages.ShardEnvelope` batch)
        without decoding them in the calling process: each worker decodes,
        reduces and re-encodes its shard. Returns
        ``(reduced_payloads, failures)`` in shard order."""
        reduced, failures, __ = self._map(_reduce_shard_wire, payloads)
        return reduced, failures

    # -- PUL-level API -------------------------------------------------------

    def reduce(self, pul, structure=None, num_shards=None):
        """Shard ``pul`` (``num_shards`` defaults to ``workers``) and
        reduce the shards concurrently."""
        shards = shard_pul(pul, num_shards or self.workers,
                           structure=structure)
        return self.reduce_shards(shards)
