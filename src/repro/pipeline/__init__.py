"""Document-partitioned parallel PUL pipeline.

Shard a PUL into structurally independent partitions (containment
intervals of the extended labels), reduce the shards concurrently, merge
the results through the aggregation engine, and apply the merged PUL with
the batched streaming evaluator. The pipeline is an *optimization layer*:
its output is equivalent to the sequential reduce-then-apply path, a
contract the property suite checks differentially.
"""

from repro.pipeline.batch import (
    DEFAULT_BATCH_SIZE,
    apply_batched,
    apply_batched_text,
    serialize_batches,
)
from repro.pipeline.merge import merge_shards
from repro.pipeline.parallel import (
    ParallelReducer,
    ReduceOutcome,
    ShardFailure,
)
from repro.pipeline.runner import PipelineResult, run_pipeline
from repro.pipeline.shard import partition_targets, shard_pul

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "ParallelReducer",
    "PipelineResult",
    "ReduceOutcome",
    "ShardFailure",
    "apply_batched",
    "apply_batched_text",
    "merge_shards",
    "partition_targets",
    "run_pipeline",
    "serialize_batches",
    "shard_pul",
]
