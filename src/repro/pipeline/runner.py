"""The end-to-end sharded pipeline.

``run_pipeline`` chains the stages: label attachment (if the PUL does not
already carry its targets' labels), containment-interval sharding,
concurrent per-shard reduction, merge through the aggregation engine, and
batched streaming apply. The contract — verified by the property suite —
is that the resulting document is byte-identical to sequentially reducing
the whole PUL and applying it, for every worker count.
"""

from __future__ import annotations

from repro.apply.events import document_events
from repro.errors import ReproError
from repro.labeling.scheme import ContainmentLabeling
from repro.pipeline.batch import DEFAULT_BATCH_SIZE, apply_batched
from repro.pipeline.merge import merge_shards
from repro.pipeline.parallel import ParallelReducer
from repro.xdm.document import Document
from repro.xdm.parser import parse_document


class PipelineResult:
    """Everything one pipeline run produced."""

    __slots__ = ("text", "pul", "outcome")

    def __init__(self, text, pul, outcome):
        self.text = text
        self.pul = pul
        self.outcome = outcome

    @property
    def shard_sizes(self):
        return [len(shard) for shard in self.outcome.shards]

    def stats(self):
        outcome = self.outcome
        return {
            "backend": outcome.backend,
            "workers": outcome.workers,
            "shards": len(outcome.shards),
            "shard_sizes": self.shard_sizes,
            "input_ops": outcome.input_ops,
            "reduced_ops": outcome.output_ops,
            "failures": len(outcome.failures),
        }


def run_pipeline(document, pul, workers=2, backend="process",
                 num_shards=None, batch_size=DEFAULT_BATCH_SIZE,
                 deterministic=True, labeling=None, retry_serial=True,
                 reducer=None):
    """Reduce ``pul`` in ``workers`` concurrent shards and apply it to
    ``document`` through the batched streaming path.

    ``document`` may be XML text or a :class:`Document`; it is never
    mutated (the result is the serialized output text). ``labeling`` is
    only consulted when the PUL lacks labels for some of its targets; it
    defaults to a fresh containment labeling of the document. Passing an
    existing ``reducer`` reuses its warm worker pool
    (``workers``/``backend`` are then taken from it).
    """
    if batch_size < 1:
        raise ReproError("batch_size must be >= 1, got {}".format(
            batch_size))
    if not isinstance(document, Document):
        document = parse_document(document)
    if any(target not in pul.labels for target in pul.targets()):
        if labeling is None:
            labeling = ContainmentLabeling().build(document)
        pul = pul.copy()
        pul.attach_labels(labeling)
    owns_reducer = reducer is None
    if owns_reducer:
        reducer = ParallelReducer(workers=workers, backend=backend,
                                  deterministic=deterministic,
                                  retry_serial=retry_serial)
    try:
        outcome = reducer.reduce(pul, num_shards=num_shards)
    finally:
        if owns_reducer:
            reducer.close()
    merged = merge_shards(outcome.reduced)
    chunks = apply_batched(document_events(document), merged,
                           batch_size=batch_size,
                           fresh_start=document.allocator.next_value)
    return PipelineResult("".join(chunks), merged, outcome)
