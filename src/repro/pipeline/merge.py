"""Shard-result merging through the aggregation engine.

Reduced shards target disjoint sets of original-document nodes, and the
identifiers of their parameter trees come from disjoint producer bands, so
feeding them to :func:`repro.aggregation.aggregate` in shard order can
never trigger a cross-record rule: the aggregate is exactly the union of
the shard operations, assembled with the same machinery (and the same
invariant checks) the sequential executor uses. Going through the engine —
rather than naive concatenation — means a sharding bug that *does* leave
related targets in different shards surfaces as a rule application here,
which :func:`merge_shards` turns into a hard error.
"""

from __future__ import annotations

from repro.aggregation import aggregate
from repro.errors import ReproError


def merge_shards(shards, strict=True):
    """Merge reduced shard PULs (in shard order) into a single PUL.

    With ``strict=True`` (the default) the merge verifies the shard
    independence contract: the merged PUL must contain exactly the union
    of the shard operations — nothing collapsed, nothing rewritten.
    """
    shards = list(shards)
    if not shards:
        raise ReproError("cannot merge zero shards")
    merged = aggregate(shards)
    if strict:
        expected = sum(len(shard) for shard in shards)
        if len(merged) != expected:
            raise ReproError(
                "shard merge changed the operation count ({} -> {}): "
                "shards were not independent".format(expected, len(merged)))
    return merged
