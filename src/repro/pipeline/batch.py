"""Batched streaming apply.

The pipeline's final stage makes the merged PUL effective through the
streaming evaluator (:func:`repro.apply.streaming.apply_streaming`), but
instead of materializing either the full output event list or the full
output text, the transformed stream is cut into serialized text chunks of
roughly ``batch_size`` events each. Memory stays proportional to document
depth plus batch size; sinks (files, sockets, hashers) consume chunks as
they are produced. The concatenation of the chunks is byte-identical to
:func:`repro.apply.events.events_to_xml` of the same stream.
"""

from __future__ import annotations

from repro.apply.events import XMLEventWriter
from repro.apply.streaming import apply_streaming
from repro.errors import ReproError

#: default number of output events per serialized chunk
DEFAULT_BATCH_SIZE = 1024


def serialize_batches(events, batch_size=DEFAULT_BATCH_SIZE, with_ids=False,
                      labels=None):
    """Serialize an event stream into XML text chunks of ``batch_size``
    events (the writer is only drained between complete tags)."""
    if batch_size < 1:
        raise ReproError("batch_size must be >= 1, got {}".format(
            batch_size))
    writer = XMLEventWriter(with_ids=with_ids, labels=labels)
    pending = 0
    for event in events:
        writer.write(event)
        pending += 1
        if pending >= batch_size:
            chunk = writer.drain()
            if chunk:
                yield chunk
                pending = 0
    chunk = writer.result()
    if chunk:
        yield chunk


def apply_batched(events, pul, batch_size=DEFAULT_BATCH_SIZE,
                  fresh_start=None, labeling=None, check=True):
    """Apply ``pul`` to the input ``events`` stream, yielding serialized
    XML chunks of the result (see module docstring)."""
    output = apply_streaming(events, pul, fresh_start=fresh_start,
                             labeling=labeling, check=check)
    return serialize_batches(output, batch_size=batch_size)


def apply_batched_text(events, pul, batch_size=DEFAULT_BATCH_SIZE,
                       fresh_start=None, labeling=None, check=True):
    """Like :func:`apply_batched` but joins the chunks into one string."""
    return "".join(apply_batched(events, pul, batch_size=batch_size,
                                 fresh_start=fresh_start, labeling=labeling,
                                 check=check))
