"""Document-partitioned PUL sharding.

Every reduction rule (Figure 2) relates two operations whose targets are
structurally close: the same node, an ancestor/descendant pair (rules
O3/O4), a parent/child or element/attribute pair (the ``ins↓`` and
``insA`` absorption rules, the first-/last-child anchors) or adjacent
siblings (rules I18/IR19/IR20). Two operations whose targets are related
by *none* of those predicates can never interact, so a partition of the
PUL that keeps structurally related targets together makes per-shard
reduction exactly equivalent to reducing the whole PUL — the invariant
the parallel pipeline relies on (and the property suite verifies).

:func:`shard_pul` builds that partition from the containment intervals of
the extended labels (:mod:`repro.labeling.containment`): targets are
unioned with their nearest enclosing target (a sweep over interval start
codes, which transitively connects whole ancestor chains), with their
parent and with their adjacent siblings. The resulting components are
packed into ``num_shards`` bins by greedy longest-processing-time
balancing.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.reasoning.oracle import oracle_for


class _UnionFind:
    """Path-compressing union-find over hashable keys."""

    def __init__(self):
        self._parent = {}

    def add(self, key):
        self._parent.setdefault(key, key)

    def find(self, key):
        parent = self._parent
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    def union(self, key1, key2):
        root1, root2 = self.find(key1), self.find(key2)
        if root1 != root2:
            self._parent[root2] = root1


#: component key grouping every target the oracle has no labels for —
#: their structural relations are unknowable, so they must stay together
#: (the per-shard reducer then fails on them exactly like the sequential
#: reducer would).
_UNKNOWN = object()

#: operations that wipe their whole subtree (rules O3/O4): a target
#: carrying one relates to every target nested inside it
_KILLERS = frozenset({"replaceNode", "delete", "replaceChildren"})
#: parent-side triggers of the parent/child rules: the child-insert
#: absorptions (stages 5-7), the first-/last-child anchors and the
#: insA-absorbing attribute repN (stage 8)
_PARENT_TRIGGERS = frozenset({"insertInto", "insertIntoAsFirst",
                              "insertIntoAsLast", "insertAttributes"})
#: child-side receivers of those same rules
_CHILD_RECEIVERS = frozenset({"insertBefore", "insertAfter",
                              "replaceNode"})


def partition_targets(targets, oracle):
    """Partition ``targets`` into reduction-independent components.

    ``targets`` is either a plain iterable of node ids — partitioned
    conservatively on pure structure (any nesting, parent/child or
    sibling-adjacency link connects) — or a mapping ``node id -> set of
    operation names``, which sharpens the edges to the pairs an actual
    reduction rule can relate:

    * containment only below a target carrying a subtree-wiping operation
      (``repN``/``del``/``repC``, rules O3/O4);
    * parent/child only between a child-insert/``insA`` parent and an
      ``ins←``/``ins→``/``repN`` child (stages 5-8);
    * sibling adjacency only for the ``ins→``/``ins←``/``repN`` joins of
      stage 9 (rules I18/IR19/IR20).

    Returns a list of target lists; two targets share a component iff
    they are connected through admitted edges within the target set.
    """
    if hasattr(targets, "keys"):
        ops_of = {t: frozenset(names) for t, names in targets.items()}
    else:
        ops_of = None
        targets = set(targets)
    uf = _UnionFind()
    known = []
    for target in targets:
        uf.add(target)
        if oracle.knows(target):
            known.append(target)
        else:
            uf.add(_UNKNOWN)
            uf.union(_UNKNOWN, target)

    def has(target, names):
        return ops_of is None or not ops_of[target].isdisjoint(names)

    # containment: sweep the interval starts, keeping a stack of the open
    # subtree-wiping ancestors; unioning with the nearest one transitively
    # links whole killer chains (rules O3/O4)
    decorated = sorted((oracle.interval(t), t) for t in known)
    stack = []  # (hi, target) of still-open (killer) intervals
    for (lo, hi), target in decorated:
        while stack and stack[-1][0] < lo:
            stack.pop()
        if stack:
            uf.union(stack[-1][1], target)
        if has(target, _KILLERS):
            stack.append((hi, target))
    for target in known:
        parent = oracle.parent(target)
        if parent in targets and (
                has(parent, _PARENT_TRIGGERS)
                and has(target, _CHILD_RECEIVERS)):
            uf.union(target, parent)
        right = oracle.right_sibling(target)
        if right in targets and (
                (has(target, ("insertAfter",))
                 and has(right, ("insertBefore", "replaceNode")))
                or (has(target, ("replaceNode",))
                    and has(right, ("insertBefore",)))):
            uf.union(target, right)
    components = {}
    for target in targets:
        components.setdefault(uf.find(target), []).append(target)
    return list(components.values())


def shard_pul(pul, num_shards, structure=None):
    """Split ``pul`` into at most ``num_shards`` independent shard PULs.

    Each shard is a PUL over a union of structurally independent
    components (labels restricted to the shard's targets), so the shards
    can be reduced concurrently and merged without any cross-shard rule
    ever being missed. The concatenation of the shards is a permutation of
    ``pul`` that preserves the relative order of same-shard operations.

    ``structure`` follows the :func:`~repro.reasoning.oracle.oracle_for`
    convention; by default the PUL's own labels are used.
    """
    if num_shards < 1:
        raise ReproError("num_shards must be >= 1, got {}".format(
            num_shards))
    ops = list(pul)
    if not ops:
        return [pul.replace_operations([])]
    oracle = oracle_for(structure if structure is not None else pul)
    by_target = {}
    for op in ops:
        by_target.setdefault(op.target, []).append(op)
    target_ops = {target: {op.op_name for op in group}
                  for target, group in by_target.items()}
    components = partition_targets(target_ops, oracle)
    assignment = _pack_components(components, by_target, num_shards, oracle)
    bins = max(assignment.values()) + 1 if assignment else 1
    shard_ops = [[] for __ in range(bins)]
    for op in ops:
        shard_ops[assignment[op.target]].append(op)
    shards = []
    for group in shard_ops:
        labels = {op.target: pul.labels[op.target]
                  for op in group if op.target in pul.labels}
        shards.append(type(pul)(group, labels=labels, origin=pul.origin))
    return shards


def _pack_components(components, by_target, num_shards, oracle):
    """Greedy LPT packing of components into shards; returns the
    ``target -> shard index`` assignment. Deterministic: components are
    ordered by (op count desc, document-order key) and bins by load."""

    def component_key(component):
        weight = sum(len(by_target[t]) for t in component)
        intervals = [oracle.interval(t) for t in component
                     if oracle.knows(t)]
        anchor = (0, min(intervals)) if intervals else (1,)
        return (-weight, anchor)

    ordered = sorted(components, key=component_key)
    bins = min(num_shards, len(ordered))
    loads = [0] * bins
    assignment = {}
    for index, component in enumerate(ordered):
        bin_index = min(range(bins), key=lambda b: (loads[b], b))
        loads[bin_index] += sum(len(by_target[t]) for t in component)
        for target in component:
            assignment[target] = bin_index
    return assignment
