"""Synthetic PUL generators.

``generate_pul`` draws operations "equally distributed among the operation
types" (Section 4.3) targeting random applicable nodes of a document,
while keeping the PUL applicable: no incompatible pairs, no duplicate
attribute names, no replacement of the root.

``generate_reducible_pul`` additionally plants reducible pairs at a
controlled rate (the reduction experiment uses "approximatively a
successful rule application every 10 operations").

``generate_sequential_puls`` builds a chain ∆1..∆n where each PUL is
applicable on the document updated by its predecessors and a controlled
fraction of operations targets nodes *inserted by earlier PULs* — the
aggregation workload of Figure 6c/6d.
"""

from __future__ import annotations

import random

from repro.errors import ReproError
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.pul.semantics import apply_pul
from repro.xdm.node import Node

_OP_KINDS = (
    "insertBefore", "insertAfter", "insertIntoAsFirst", "insertIntoAsLast",
    "insertInto", "insertAttributes", "delete", "replaceNode",
    "replaceValue", "replaceChildren", "rename",
)


def _depth(node):
    level = 0
    while node.parent is not None:
        node = node.parent
        level += 1
    return level


class _PulBuilder:
    """Accumulates applicability bookkeeping while drawing operations.

    ``min_depth`` restricts the target pools to nodes at least that deep
    (document root at depth 0) — the "record-local edits" workload shape
    where updates never touch the top-level structure, which is what keeps
    the pipeline's shards independent.
    """

    def __init__(self, document, rng, labeling=None, min_depth=0):
        self.document = document
        self.rng = rng
        self.labeling = labeling
        self.elements = []
        self.texts = []
        self.attributes = []
        for node in document.nodes():
            if min_depth and _depth(node) < min_depth:
                continue
            if node.is_element:
                self.elements.append(node)
            elif node.is_text:
                self.texts.append(node)
            else:
                self.attributes.append(node)
        self.used_replace = set()   # (op_name, target) already drawn
        self.deleted = set()        # targets of delete ops
        self.attr_serial = 0
        self.ops = []

    def _fresh_tree(self, tag="new"):
        element = Node.element(tag)
        element.append_child(Node.text(
            "v{}".format(self.rng.randrange(10 ** 6))))
        return element

    def _fresh_attribute(self):
        self.attr_serial += 1
        return Node.attribute("gen{}".format(self.attr_serial),
                              str(self.rng.randrange(1000)))

    def _pick(self, pool, exclude_root=False):
        if not pool:
            return None
        for __ in range(16):
            node = self.rng.choice(pool)
            if exclude_root and node.parent is None:
                continue
            return node
        return None

    def draw(self, kind):
        """Draw one operation of the given kind; returns None when no
        valid target can be found."""
        if kind in ("insertBefore", "insertAfter"):
            pool = self.elements + self.texts
            node = self._pick(pool, exclude_root=True)
            if node is None:
                return None
            op_class = InsertBefore if kind == "insertBefore" \
                else InsertAfter
            return op_class(node.node_id, [self._fresh_tree()])
        if kind in ("insertIntoAsFirst", "insertIntoAsLast", "insertInto"):
            node = self._pick(self.elements)
            if node is None:
                return None
            op_class = {"insertIntoAsFirst": InsertIntoAsFirst,
                        "insertIntoAsLast": InsertIntoAsLast,
                        "insertInto": InsertInto}[kind]
            return op_class(node.node_id, [self._fresh_tree()])
        if kind == "insertAttributes":
            node = self._pick(self.elements)
            if node is None:
                return None
            return InsertAttributes(node.node_id,
                                    [self._fresh_attribute()])
        if kind == "delete":
            node = self._pick(self.elements + self.texts + self.attributes,
                              exclude_root=True)
            if node is None:
                return None
            self.deleted.add(node.node_id)
            return Delete(node.node_id)
        if kind == "replaceNode":
            node = self._pick(self.elements + self.texts,
                              exclude_root=True)
            if node is None or ("replaceNode", node.node_id) in \
                    self.used_replace:
                return None
            self.used_replace.add(("replaceNode", node.node_id))
            return ReplaceNode(node.node_id, [self._fresh_tree()])
        if kind == "replaceValue":
            pool = self.texts + self.attributes
            if not pool:
                return None
            node = self._pick(pool)
            if ("replaceValue", node.node_id) in self.used_replace:
                return None
            self.used_replace.add(("replaceValue", node.node_id))
            return ReplaceValue(node.node_id,
                                "rv{}".format(self.rng.randrange(10 ** 6)))
        if kind == "replaceChildren":
            node = self._pick(self.elements)
            if node is None or ("replaceChildren", node.node_id) in \
                    self.used_replace:
                return None
            self.used_replace.add(("replaceChildren", node.node_id))
            return ReplaceChildren(node.node_id,
                                   "rc{}".format(self.rng.randrange(1000)))
        if kind == "rename":
            pool = self.elements + self.attributes
            node = self._pick(pool, exclude_root=False)
            if node is None or ("rename", node.node_id) in \
                    self.used_replace:
                return None
            self.used_replace.add(("rename", node.node_id))
            return Rename(node.node_id,
                          "rn{}".format(self.rng.randrange(10 ** 6)))
        raise ValueError("unknown op kind: {}".format(kind))

    def build(self, origin=None):
        pul = PUL(self.ops, origin=origin)
        if self.labeling is not None:
            pul.attach_labels(self.labeling)
        return pul


def generate_pul(document, size, seed=0, labeling=None, origin=None,
                 min_depth=0):
    """A PUL of ``size`` operations, evenly mixed over the 11 primitives,
    applicable on ``document``. ``min_depth > 0`` keeps every target at
    least that deep (record-local edits; see :class:`_PulBuilder`)."""
    rng = random.Random(seed)
    builder = _PulBuilder(document, rng, labeling=labeling,
                          min_depth=min_depth)
    _fill(builder, size)
    rng.shuffle(builder.ops)
    return builder.build(origin=origin)


def _fill(builder, size):
    """Draw operations round-robin over the kinds until ``size`` is
    reached; on a successful draw the attempt count equals the operation
    count, so the kind sequence matches the historical generator. Bails
    out when the (possibly ``min_depth``-filtered) pools cannot yield the
    requested mix instead of spinning forever."""
    kinds = list(_OP_KINDS)
    attempts = 0
    limit = 16 * (size + len(kinds))
    while len(builder.ops) < size:
        if attempts >= limit:
            raise ReproError(
                "cannot draw {} applicable operations: the target pools "
                "are too small ({} elements, {} texts, {} attributes "
                "after filtering)".format(
                    size, len(builder.elements), len(builder.texts),
                    len(builder.attributes)))
        kind = kinds[attempts % len(kinds)]
        attempts += 1
        op = builder.draw(kind)
        if op is not None:
            builder.ops.append(op)


_REDUCIBLE_RECIPES = ("override-del", "override-desc", "collapse-insert",
                      "repn-before", "into-first")


def generate_reducible_pul(document, size, hit_ratio=0.1, seed=0,
                           labeling=None, origin=None):
    """A PUL of ``size`` operations where about ``hit_ratio * size``
    reduction-rule applications succeed (planted reducible pairs)."""
    rng = random.Random(seed)
    builder = _PulBuilder(document, rng, labeling=labeling)
    pairs = int(size * hit_ratio)
    for index in range(pairs):
        recipe = _REDUCIBLE_RECIPES[index % len(_REDUCIBLE_RECIPES)]
        _plant_pair(builder, recipe, rng)
    _fill(builder, size)
    rng.shuffle(builder.ops)
    return builder.build(origin=origin)


def _plant_pair(builder, recipe, rng):
    """Append a pair of operations a Figure 2 rule collapses."""
    if recipe == "override-del":
        node = builder._pick(builder.elements, exclude_root=True)
        if node is None:
            return
        if ("rename", node.node_id) not in builder.used_replace:
            builder.used_replace.add(("rename", node.node_id))
            builder.ops.append(Rename(node.node_id, "dead"))
        builder.ops.append(Delete(node.node_id))                 # rule O1
        builder.deleted.add(node.node_id)
    elif recipe == "override-desc":
        node = builder._pick(builder.elements, exclude_root=True)
        if node is None or not node.children:
            return
        child = node.children[0]
        builder.ops.append(Delete(child.node_id))
        builder.ops.append(Delete(node.node_id))                 # rule O3
        builder.deleted.update((child.node_id, node.node_id))
    elif recipe == "collapse-insert":
        node = builder._pick(builder.elements)
        builder.ops.append(InsertIntoAsLast(node.node_id,
                                            [builder._fresh_tree()]))
        builder.ops.append(InsertIntoAsLast(node.node_id,
                                            [builder._fresh_tree()]))
        # rule I5
    elif recipe == "repn-before":
        node = builder._pick(builder.elements, exclude_root=True)
        if node is None or ("replaceNode", node.node_id) in \
                builder.used_replace:
            return
        builder.used_replace.add(("replaceNode", node.node_id))
        builder.ops.append(ReplaceNode(node.node_id,
                                       [builder._fresh_tree()]))
        builder.ops.append(InsertBefore(node.node_id,
                                        [builder._fresh_tree()]))
        # rule IR8
    elif recipe == "into-first":
        node = builder._pick(builder.elements)
        builder.ops.append(InsertInto(node.node_id,
                                      [builder._fresh_tree()]))
        builder.ops.append(InsertIntoAsFirst(node.node_id,
                                             [builder._fresh_tree()]))
        # rule I6


def generate_sequential_puls(document, count, size, new_node_ratio=0.5,
                             seed=0, origin=None):
    """A chain of ``count`` PULs of ``size`` ops each, where roughly
    ``new_node_ratio`` of the operations of later PULs target nodes
    inserted by earlier PULs — the aggregation workload of Figure 6c/6d.

    New nodes carry producer-assigned identifiers (Section 4.1: the
    producer assigns ids from its identification space when it applies a
    PUL locally); here ids are stamped directly on the parameter trees, so
    later PULs can target them.

    Returns ``(puls, final_document)``; ``document`` is not modified.
    """
    rng = random.Random(seed)
    working = document.copy()
    next_new = working.max_id() + 1
    puls = []
    inserted_ids = []

    def fresh_tree(tag, with_text):
        nonlocal next_new
        element = Node.element(tag, node_id=next_new)
        next_new += 1
        if with_text:
            element.append_child(Node.text(
                "t{}".format(rng.randrange(10 ** 6)), node_id=next_new))
            next_new += 1
        return element

    for index in range(count):
        ops = []
        old_pool = [n.node_id for n in working.nodes()
                    if n.is_element and n.node_id in document]
        live_inserted = [i for i in inserted_ids if i in working]
        while len(ops) < size:
            use_new = live_inserted and rng.random() < new_node_ratio
            if use_new:
                target = rng.choice(live_inserted)
            else:
                target = rng.choice(old_pool)
            choice = rng.random()
            if choice < 0.5:
                tree = fresh_tree("n{}".format(index % 7), True)
            else:
                tree = fresh_tree("m{}".format(index % 5), False)
            # no ins↓ here: its placement freedom makes the aggregate
            # merely substitutable (not tie-break-identical) to the
            # sequence, which would defeat byte-comparison oracles built
            # on this workload; small-case property tests cover ins↓
            if choice < 0.5:
                ops.append(InsertIntoAsLast(target, [tree]))
            else:
                ops.append(InsertIntoAsFirst(target, [tree]))
            # only elements are valid targets for the child inserts drawn
            # above, so text-node ids stay out of the target pool
            inserted_ids.append(tree.node_id)
        pul = PUL(ops, origin=origin)
        apply_pul(working, pul, preserve_ids=True)
        puls.append(pul)
    return puls, working
