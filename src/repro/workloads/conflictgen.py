"""Conflict-controlled integration workloads (Figure 6e).

The paper's integration experiment uses 10 PULs where half of the
operations are involved in conflicts, conflicts contain an average of
5 operations, only 1/5 of the conflicts are solved through the removal of
operations in other conflicts (cascades), and the remaining conflicts are
equally distributed over the conflict types.

``generate_conflicting_puls`` reproduces those knobs: it plants conflict
groups of a chosen size over distinct target nodes, spreading the members
across the PULs, plants cascades as type-5 conflicts whose overridden
operations already belong to another conflict, and fills the rest with
conflict-free operations kept away from every planted delete's subtree
(so no accidental extra conflicts appear).
"""

from __future__ import annotations

import random

from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertInto,
    InsertIntoAsLast,
    Rename,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.xdm.node import Node


def _subtree_ids(node):
    return {item.node_id for item in node.iter_subtree()}


def generate_conflicting_puls(document, pul_count=10, ops_per_pul=400,
                              conflict_fraction=0.5, ops_per_conflict=5,
                              cascade_fraction=0.2, seed=0, labeling=None):
    """Build ``pul_count`` PULs with controlled integration conflicts.

    Returns ``(puls, planted)`` — the PUL list and the number of planted
    conflict groups.
    """
    rng = random.Random(seed)
    elements = [n for n in document.nodes()
                if n.is_element and n.parent is not None]
    texts = [n for n in document.nodes() if n.is_text]
    rng.shuffle(elements)
    pool = iter(elements)

    total_ops = pul_count * ops_per_pul
    conflicted_ops = int(total_ops * conflict_fraction)
    group_count = max(1, conflicted_ops // max(2, ops_per_conflict))
    cascade_count = int(group_count * cascade_fraction)

    ops_by_pul = [[] for __ in range(pul_count)]
    serial = 0
    used = set()       # targets consumed by planted groups
    forbidden = set()  # nodes under a planted delete (off limits for all)

    def spread(ops):
        nonlocal serial
        start = serial % pul_count
        for offset, op in enumerate(ops):
            ops_by_pul[(start + offset) % pul_count].append(op)
        serial += 1

    def take(subtree_free=False, with_element_child=False):
        """Next unused target element honoring the exclusion sets."""
        for candidate in pool:
            if candidate.node_id in used or \
                    candidate.node_id in forbidden:
                continue
            ids = _subtree_ids(candidate)
            if subtree_free and (ids & used or ids & forbidden):
                continue
            if with_element_child and not any(
                    child.is_element for child in candidate.children):
                continue
            return candidate
        return None

    planted = 0
    # members of one conflict group go to distinct PULs (two renames of
    # the same node inside one PUL would make it invalid), so group size
    # is capped by the number of PULs
    members = min(max(2, ops_per_conflict), pul_count)
    kinds = ("modification", "attribute", "order", "override")
    for index in range(group_count - cascade_count):
        kind = kinds[index % len(kinds)]
        target = take(subtree_free=(kind == "override"))
        if target is None:
            break
        if kind == "modification":
            ops = [Rename(target.node_id, "name{}".format(i))
                   for i in range(members)]
        elif kind == "attribute":
            ops = [InsertAttributes(
                target.node_id,
                [Node.attribute("clash", str(i))]) for i in range(members)]
        elif kind == "order":
            ops = [InsertAfter(
                target.node_id,
                [Node.element("ord{}".format(i))]) for i in range(members)]
        else:  # local override: a delete against child inserts; the
            # victims use ins↓ (not an *ordered* insert) so the group
            # yields exactly one type-4 conflict and no type-3 byproduct
            ops = [Delete(target.node_id)]
            ops.extend(InsertInto(
                target.node_id,
                [Node.element("kid{}".format(i))])
                for i in range(members - 1))
            forbidden.update(_subtree_ids(target))
        used.add(target.node_id)
        spread(ops)
        planted += 1

    # cascades: a delete on a parent (type 5 overriding the child's
    # renames) combined with a type-1 conflict on the child, so solving
    # the ancestor conflict auto-solves the descendant one
    for __ in range(cascade_count):
        parent = take(subtree_free=True, with_element_child=True)
        if parent is None:
            break
        child = next(c for c in parent.children if c.is_element)
        ops = [Delete(parent.node_id)]
        ops.extend(Rename(child.node_id, "casc{}".format(i))
                   for i in range(members - 1))
        used.update((parent.node_id, child.node_id))
        forbidden.update(_subtree_ids(parent))
        spread(ops)
        planted += 2  # one type-5 conflict plus the cascaded type-1

    # conflict-free filler: one producer each, outside every delete subtree
    filler_texts = iter([t for t in texts
                         if t.node_id not in forbidden])
    filler_elements = iter([e for e in elements
                            if e.node_id not in used
                            and e.node_id not in forbidden])
    for pul_index in range(pul_count):
        bucket = ops_by_pul[pul_index]
        while len(bucket) < ops_per_pul:
            text = next(filler_texts, None)
            if text is not None:
                bucket.append(ReplaceValue(text.node_id, "f"))
                continue
            element = next(filler_elements, None)
            if element is None:
                break
            bucket.append(InsertIntoAsLast(
                element.node_id, [Node.element("fill")]))

    puls = []
    for index, ops in enumerate(ops_by_pul):
        pul = PUL(ops, origin="producer{}".format(index))
        if labeling is not None:
            pul.attach_labels(labeling)
        puls.append(pul)
    return puls, planted
