"""A seeded, XMark-shaped synthetic document generator.

The paper's evaluation uses documents produced by the XMark data generator
(auction site: regions/items, categories, people, open and closed
auctions). This module reproduces that document *shape* — element names,
nesting, attribute usage and rough fan-out — with sizes controlled by a
scale factor, deterministically from a seed. Scale 1.0 yields a document
of roughly 1 MB serialized; sizes grow linearly with scale.
"""

from __future__ import annotations

import random

from repro.xdm.document import Document
from repro.xdm.node import Node
from repro.xdm.serializer import serialize

_WORDS = (
    "auction bid price seller buyer lot antique painting book stamp coin "
    "vintage rare mint condition shipping international reserve gavel "
    "catalogue estimate provenance signed limited edition original frame "
    "canvas porcelain silver bronze oak walnut decorative restored"
).split()

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

_CITIES = ("Genova", "Milano", "Uppsala", "Paris", "Lisbon", "Athens",
           "Oslo", "Dublin", "Prague", "Vienna")


class _Gen:
    def __init__(self, seed):
        self.rng = random.Random(seed)

    def words(self, low, high):
        count = self.rng.randint(low, high)
        return " ".join(self.rng.choice(_WORDS) for __ in range(count))

    def digits(self, count):
        return "".join(str(self.rng.randint(0, 9)) for __ in range(count))

    def date(self):
        return "{:02d}/{:02d}/{}".format(
            self.rng.randint(1, 12), self.rng.randint(1, 28),
            self.rng.randint(1998, 2001))


def _text_element(name, value):
    element = Node.element(name)
    element.append_child(Node.text(value))
    return element


def _item(gen, item_id, category_count):
    item = Node.element("item")
    item.append_attribute(Node.attribute("id", "item{}".format(item_id)))
    item.append_child(_text_element("location", gen.rng.choice(_CITIES)))
    item.append_child(_text_element("quantity",
                                    str(gen.rng.randint(1, 5))))
    item.append_child(_text_element("name", gen.words(2, 4)))
    payment = _text_element("payment", "Creditcard")
    item.append_child(payment)
    description = Node.element("description")
    parlist = Node.element("parlist")
    for __ in range(gen.rng.randint(1, 3)):
        listitem = Node.element("listitem")
        listitem.append_child(_text_element("text", gen.words(8, 25)))
        parlist.append_child(listitem)
    description.append_child(parlist)
    item.append_child(description)
    item.append_child(_text_element("shipping",
                                    "Will ship internationally"))
    incategory = Node.element("incategory")
    incategory.append_attribute(Node.attribute(
        "category", "category{}".format(
            gen.rng.randrange(max(1, category_count)))))
    item.append_child(incategory)
    return item


def _person(gen, person_id):
    person = Node.element("person")
    person.append_attribute(Node.attribute(
        "id", "person{}".format(person_id)))
    person.append_child(_text_element(
        "name", "{} {}".format(gen.words(1, 1).capitalize(),
                               gen.words(1, 1).capitalize())))
    person.append_child(_text_element(
        "emailaddress", "mailto:user{}@example.org".format(person_id)))
    person.append_child(_text_element(
        "phone", "+39 ({}) {}".format(gen.digits(2), gen.digits(7))))
    address = Node.element("address")
    address.append_child(_text_element(
        "street", "{} {} St".format(gen.rng.randint(1, 99),
                                    gen.words(1, 1).capitalize())))
    address.append_child(_text_element("city", gen.rng.choice(_CITIES)))
    address.append_child(_text_element("country", "Italy"))
    address.append_child(_text_element("zipcode", gen.digits(5)))
    person.append_child(address)
    person.append_child(_text_element("creditcard",
                                      " ".join(gen.digits(4)
                                               for __ in range(4))))
    profile = Node.element("profile")
    profile.append_attribute(Node.attribute(
        "income", str(gen.rng.randint(20000, 100000))))
    interest = Node.element("interest")
    interest.append_attribute(Node.attribute(
        "category", "category{}".format(gen.rng.randrange(10))))
    profile.append_child(interest)
    profile.append_child(_text_element("education", "Graduate School"))
    profile.append_child(_text_element(
        "gender", gen.rng.choice(("male", "female"))))
    profile.append_child(_text_element("age",
                                       str(gen.rng.randint(18, 80))))
    person.append_child(profile)
    return person


def _open_auction(gen, auction_id, person_count, item_count):
    auction = Node.element("open_auction")
    auction.append_attribute(Node.attribute(
        "id", "open_auction{}".format(auction_id)))
    auction.append_child(_text_element(
        "initial", "{}.{:02d}".format(gen.rng.randint(1, 300),
                                      gen.rng.randint(0, 99))))
    for __ in range(gen.rng.randint(0, 4)):
        bidder = Node.element("bidder")
        bidder.append_child(_text_element("date", gen.date()))
        bidder.append_child(_text_element(
            "time", "{:02d}:{:02d}:{:02d}".format(
                gen.rng.randint(0, 23), gen.rng.randint(0, 59),
                gen.rng.randint(0, 59))))
        personref = Node.element("personref")
        personref.append_attribute(Node.attribute(
            "person", "person{}".format(
                gen.rng.randrange(max(1, person_count)))))
        bidder.append_child(personref)
        bidder.append_child(_text_element(
            "increase", "{}.00".format(gen.rng.randint(1, 30))))
        auction.append_child(bidder)
    auction.append_child(_text_element(
        "current", "{}.00".format(gen.rng.randint(10, 400))))
    itemref = Node.element("itemref")
    itemref.append_attribute(Node.attribute(
        "item", "item{}".format(gen.rng.randrange(max(1, item_count)))))
    auction.append_child(itemref)
    seller = Node.element("seller")
    seller.append_attribute(Node.attribute(
        "person", "person{}".format(
            gen.rng.randrange(max(1, person_count)))))
    auction.append_child(seller)
    annotation = Node.element("annotation")
    author = Node.element("author")
    author.append_attribute(Node.attribute(
        "person", "person{}".format(
            gen.rng.randrange(max(1, person_count)))))
    annotation.append_child(author)
    description = Node.element("description")
    description.append_child(_text_element("text", gen.words(6, 18)))
    annotation.append_child(description)
    auction.append_child(annotation)
    auction.append_child(_text_element("quantity", "1"))
    auction.append_child(_text_element(
        "type", gen.rng.choice(("Regular", "Featured"))))
    interval = Node.element("interval")
    interval.append_child(_text_element("start", gen.date()))
    interval.append_child(_text_element("end", gen.date()))
    auction.append_child(interval)
    return auction


def generate_xmark(scale=0.1, seed=0):
    """Generate an XMark-shaped :class:`Document`.

    ``scale=1.0`` corresponds to roughly 1 MB serialized, matching the
    XMark convention that sizes scale linearly with the factor.
    """
    gen = _Gen(seed)
    item_count = max(2, int(1100 * scale))
    person_count = max(2, int(700 * scale))
    auction_count = max(2, int(330 * scale))
    category_count = max(2, int(70 * scale))

    site = Node.element("site")
    regions = Node.element("regions")
    per_region = max(1, item_count // len(_REGIONS))
    item_id = 0
    for region_name in _REGIONS:
        region = Node.element(region_name)
        for __ in range(per_region):
            region.append_child(_item(gen, item_id, category_count))
            item_id += 1
        regions.append_child(region)
    site.append_child(regions)

    categories = Node.element("categories")
    for index in range(category_count):
        category = Node.element("category")
        category.append_attribute(Node.attribute(
            "id", "category{}".format(index)))
        category.append_child(_text_element("name", gen.words(1, 2)))
        description = Node.element("description")
        description.append_child(_text_element("text", gen.words(5, 12)))
        category.append_child(description)
        categories.append_child(category)
    site.append_child(categories)

    people = Node.element("people")
    for index in range(person_count):
        people.append_child(_person(gen, index))
    site.append_child(people)

    auctions = Node.element("open_auctions")
    for index in range(auction_count):
        auctions.append_child(
            _open_auction(gen, index, person_count, item_id))
    site.append_child(auctions)

    return Document(root=site)


def xmark_text(scale=0.1, seed=0):
    """Serialized XMark-shaped document."""
    return serialize(generate_xmark(scale=scale, seed=seed))
