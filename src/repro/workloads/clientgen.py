"""Concurrent-client store workloads.

``generate_client_batches`` produces the traffic shape the document store
serves: rounds of mutually compatible PULs, each round split across
``clients`` concurrent submitters, every round applicable on the document
as updated by the previous rounds. It simulates the store's own
coalescing (per-client PULs are unioned in client order, reduced
sequentially, applied with preserved identifiers) to keep its working
copy — and therefore the target identifiers of later rounds — in
lockstep with a resident :class:`~repro.store.store.DocumentStore` and
with the stateless baseline, which is exactly what the differential
harness needs.

Compatibility across a round is by construction: each round is drawn as
one applicable PUL (:func:`~repro.workloads.pulgen.generate_pul`, which
admits no incompatible pairs) and then dealt round-robin to the clients,
so the union the store rebuilds is the original PUL up to the reordering
the coalescer performs. Attribute names are prefixed per round, keeping
``insA`` parameters unique across the whole session.
"""

from __future__ import annotations

from repro.pul.ops import InsertAttributes
from repro.pul.pul import PUL
from repro.pul.semantics import apply_pul
from repro.reduction import reduce_deterministic
from repro.workloads.pulgen import generate_pul


def generate_client_batches(document, clients=4, rounds=5,
                            ops_per_round=20, seed=0, min_depth=0):
    """Build a concurrent-client workload against ``document``.

    Returns ``(batches, final_document)``: ``batches`` is a list of
    rounds, each round a list of ``(client name, PUL)`` submissions, and
    ``final_document`` is the document every correct executor must reach
    after flushing the rounds in order (``document`` itself is never
    modified).
    """
    if clients < 1:
        raise ValueError("clients must be >= 1, got {}".format(clients))
    working = document.copy()
    batches = []
    for round_index in range(rounds):
        pul = generate_pul(working, ops_per_round,
                           seed=seed * 10007 + round_index,
                           min_depth=min_depth)
        _namespace_attributes(pul, round_index)
        per_client = [[] for __ in range(clients)]
        for position, op in enumerate(pul):
            per_client[position % clients].append(op)
        submissions = []
        merged_ops = []
        for index, ops in enumerate(per_client):
            if not ops:
                continue
            name = "client-{}".format(index)
            submissions.append((name, PUL(ops, origin=name)))
            merged_ops.extend(ops)
        batches.append(submissions)
        # advance the working copy exactly the way the store coalesces:
        # client unions in client order, sequential reduction, apply with
        # producer identifiers preserved
        reduced = reduce_deterministic(
            PUL(merged_ops), structure=working)
        apply_pul(working, reduced, check=False, preserve_ids=True)
    return batches, working


def _namespace_attributes(pul, round_index):
    """Prefix generated attribute names with the round, so ``insA``
    parameters of later rounds never collide with attributes inserted by
    earlier ones (the per-round generator only guarantees uniqueness
    within its own round)."""
    for op in pul:
        if isinstance(op, InsertAttributes):
            for tree in op.trees:
                tree.name = "r{}{}".format(round_index, tree.name)
