"""Synthetic workloads for the experimental evaluation (Section 4.3).

* :mod:`repro.workloads.xmark` — a seeded XMark-shaped document generator
  (the paper uses the XMark data generator, 1MB–256MB documents);
* :mod:`repro.workloads.pulgen` — synthetic PULs with an even operation
  mix, controllable size, reducible-pair ratio and new-node ratio;
* :mod:`repro.workloads.conflictgen` — families of PULs with a controlled
  number/type/size of integration conflicts;
* :mod:`repro.workloads.clientgen` — concurrent-client store traffic
  (rounds of compatible PULs split over many submitters, with the
  expected final document).
"""

from repro.workloads.xmark import generate_xmark, xmark_text
from repro.workloads.pulgen import (
    generate_pul,
    generate_reducible_pul,
    generate_sequential_puls,
)
from repro.workloads.conflictgen import generate_conflicting_puls
from repro.workloads.clientgen import generate_client_batches

__all__ = [
    "generate_xmark",
    "xmark_text",
    "generate_pul",
    "generate_reducible_pul",
    "generate_sequential_puls",
    "generate_conflicting_puls",
    "generate_client_batches",
]
