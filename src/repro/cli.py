"""Command-line interface: PUL operations on files.

Subcommands mirror the library's pipeline (``-`` reads stdin):

* ``produce``   — evaluate an XQuery Update expression against a document,
  print the PUL exchange document (labels attached);
* ``reduce``    — reduce a PUL (``--deterministic`` / ``--canonical``);
* ``integrate`` — integrate parallel PULs; report conflicts or, with
  ``--reconcile``, resolve them under per-producer policies;
* ``aggregate`` — aggregate a sequence of PULs into one delta;
* ``apply``     — make a PUL effective on a document (streaming by
  default);
* ``pipeline``  — shard a PUL, reduce the shards in parallel
  (``--workers N``), merge and apply through the batched streaming path;
* ``invert``    — compute the inverse of a PUL against its document;
* ``store``     — the resident multi-document update store:
  ``store serve --listen host:port|unix:PATH`` serves the versioned
  network protocol of :mod:`repro.api` (asyncio, many concurrent
  clients, pipelined requests); without ``--listen`` it speaks the
  line protocol of :mod:`repro.store.service` on stdin/stdout (or
  ``--script FILE``) as the compatibility transport — either way
  optionally durable (``--wal-dir``, ``--durability log+snapshot:N``);
  ``store recover`` rebuilds state from a durability directory
  (``--verify`` byte-compares against the stateless replay oracle);
  ``store bench`` reports resident-incremental vs parse+full-relabel
  throughput; ``store import``/``store export`` are the streaming bulk
  ETL pair — chunked group-committed loads of XML corpora, and
  filtered resumable dumps whose resume token anchors a CDC
  subscription (``--target`` a running server or ``--wal-dir`` a local
  directory); ``store metrics`` dumps the observability series
  (Prometheus text or ``--json``) and ``store top`` is a live,
  curses-free dashboard over a running server (ops/sec, latency
  percentiles, fsync rate, replication lag);
* ``cluster``   — the replicated multi-node deployment:
  ``cluster serve --role leader|replica`` runs one node (leaders ship
  their write-ahead log, replicas stream it and serve reads),
  ``cluster promote --node HOST:PORT`` manually fails over to a
  caught-up replica, ``cluster status`` reports role, stream position
  and replication lag per node.

Examples::

    python -m repro.cli produce doc.xml 'delete nodes //draft' > p1.pul
    python -m repro.cli reduce --canonical doc.xml p1.pul
    python -m repro.cli integrate --reconcile doc.xml p1.pul p2.pul
    python -m repro.cli apply doc.xml p1.pul > updated.xml
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.aggregation import aggregate
from repro.apply.events import events_to_xml, parse_events
from repro.apply.inmemory import apply_in_memory
from repro.apply.streaming import apply_streaming
from repro.errors import ReproError
from repro.etl.importer import DEFAULT_CHUNK_DOCS
from repro.integration import ProducerPolicy, integrate, reconcile
from repro.labeling import ContainmentLabeling
from repro.pipeline import DEFAULT_BATCH_SIZE, run_pipeline
from repro.pul.inverse import invert_pul
from repro.pul.serialize import pul_from_xml, pul_to_xml
from repro.reasoning import DocumentOracle
from repro.reduction import canonical_form, reduce_deterministic, reduce_pul
from repro.store import (
    DEFAULT_MAX_CODE_LENGTH,
    DocumentStore,
    DurabilityPolicy,
    StoreService,
    replay_oracle,
)
from repro.store.bench import run_store_benchmark
from repro.xdm.parser import parse_document
from repro.xquery import compile_pul


def _read(path):
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _load_document(path):
    return parse_document(_read(path))


def _load_pul(path):
    return pul_from_xml(_read(path))


def _parse_policy(spec):
    """``producer:flag[,flag...]`` with flags order/inserted/removed."""
    name, __, flags = spec.partition(":")
    known = {"order": "preserve_insertion_order",
             "inserted": "preserve_inserted_data",
             "removed": "preserve_removed_data"}
    values = {}
    for flag in filter(None, flags.split(",")):
        if flag not in known:
            raise argparse.ArgumentTypeError(
                "unknown policy flag {!r} (use order/inserted/removed)"
                .format(flag))
        values[known[flag]] = True
    return name, ProducerPolicy(**values)


def cmd_produce(args, out):
    document = _load_document(args.document)
    labeling = ContainmentLabeling().build(document)
    pul = compile_pul(args.query, document, labeling=labeling,
                      origin=args.origin)
    out.write(pul_to_xml(pul) + "\n")
    return 0


def cmd_reduce(args, out):
    pul = _load_pul(args.pul)
    structure = None
    if args.document:
        structure = DocumentOracle(_load_document(args.document))
    if args.canonical:
        reduced = canonical_form(pul, structure)
    elif args.deterministic:
        reduced = reduce_deterministic(pul, structure)
    else:
        reduced = reduce_pul(pul, structure)
    out.write(pul_to_xml(reduced) + "\n")
    sys.stderr.write("{} -> {} operations\n".format(len(pul),
                                                    len(reduced)))
    return 0


def cmd_integrate(args, out):
    puls = [_load_pul(path) for path in args.puls]
    structure = None
    if args.document:
        structure = DocumentOracle(_load_document(args.document))
    if args.reconcile:
        policies = dict(args.policy or [])
        result = reconcile(puls, policies=policies, structure=structure)
        out.write(pul_to_xml(result) + "\n")
        return 0
    outcome = integrate(puls, structure=structure)
    for conflict in outcome.conflicts:
        sys.stderr.write("conflict: {}\n".format(conflict.describe()))
    out.write(pul_to_xml(outcome.pul) + "\n")
    return 1 if outcome.has_conflicts else 0


def cmd_aggregate(args, out):
    puls = [_load_pul(path) for path in args.puls]
    combined = aggregate(puls, generalized_repc=not args.strict)
    out.write(pul_to_xml(combined) + "\n")
    sys.stderr.write("{} PULs / {} ops -> {} ops\n".format(
        len(puls), sum(len(p) for p in puls), len(combined)))
    return 0


def cmd_apply(args, out):
    text = _read(args.document)
    pul = _load_pul(args.pul)
    if args.in_memory:
        result = apply_in_memory(text, pul)
    else:
        document = parse_document(text)
        result = events_to_xml(apply_streaming(
            parse_events(text), pul,
            fresh_start=document.allocator.next_value))
    out.write(result + "\n")
    return 0


def cmd_pipeline(args, out):
    text = _read(args.document)
    pul = _load_pul(args.pul)
    if args.sequential:
        workers, backend, shards = 1, "serial", 1
    else:
        workers, backend, shards = args.workers, args.backend, args.shards
    result = run_pipeline(text, pul, workers=workers, backend=backend,
                          num_shards=shards, batch_size=args.batch_size)
    out.write(result.text + "\n")
    stats = result.stats()
    sys.stderr.write(
        "{shards} shards {shard_sizes} | {input_ops} -> {reduced_ops} ops "
        "| backend={backend} workers={workers} failures={failures}\n"
        .format(**stats))
    return 0


def _durability_policy(args):
    """Resolve the --wal-dir/--durability/--snapshot-every flags."""
    if args.wal_dir is None:
        if args.durability not in (None, "off"):
            raise ReproError(
                "--durability {} needs --wal-dir".format(args.durability))
        if args.snapshot_every is not None:
            raise ReproError("--snapshot-every needs --wal-dir")
        return None, None
    policy = DurabilityPolicy.parse(args.durability or "log")
    if args.snapshot_every is not None:
        if args.durability is not None and policy.mode != "snapshot":
            # an explicit non-snapshot mode contradicts the interval;
            # dropping the flag silently would leave the user running
            # an unbounded log they asked to have compacted
            raise ReproError(
                "--snapshot-every needs a snapshot durability mode, "
                "but --durability is {!r} (use log+snapshot)".format(
                    args.durability))
        policy = DurabilityPolicy(mode="snapshot",
                                  snapshot_every=args.snapshot_every)
    return policy, args.wal_dir


def _parse_listen(spec):
    """``host:port`` or ``unix:PATH`` -> (host, port, unix_path)."""
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ReproError("--listen unix: needs a socket path")
        return None, 0, path
    host, sep, port = spec.rpartition(":")
    if not sep:
        raise ReproError(
            "--listen takes host:port or unix:PATH, got {!r}".format(
                spec))
    try:
        port = int(port)
    except ValueError:
        raise ReproError(
            "--listen port must be an integer, got {!r}".format(port))
    return host or "127.0.0.1", port, None


def _parse_metrics_listen(spec):
    """``host:port`` for the opt-in Prometheus HTTP endpoint."""
    host, port, unix_path = _parse_listen(spec)
    if unix_path is not None:
        raise ReproError("--metrics-listen takes HOST:PORT (scrapers "
                         "speak HTTP over TCP)")
    return host, port


def _observability_kwargs(args):
    """The store-construction kwargs behind the observability flags."""
    return dict(metrics=not args.no_metrics,
                slow_query_s=args.slow_query_s,
                slow_flush_s=args.slow_flush_s,
                slow_log_path=args.slow_log)


def cmd_store_serve(args, out):
    policy, wal_dir = _durability_policy(args)
    if args.listen and args.script:
        raise ReproError("--script drives the line protocol; it cannot "
                         "be combined with --listen")
    if args.metrics_listen and not args.listen:
        raise ReproError("--metrics-listen rides the network server; "
                         "it needs --listen")
    store = DocumentStore(workers=args.workers, backend=args.backend,
                          max_code_length=args.max_code_length,
                          on_conflict=args.on_conflict,
                          durability=policy, wal_dir=wal_dir,
                          **_observability_kwargs(args))
    if getattr(args, "replicate", False):
        # standalone CDC: publish the WAL as a change feed so
        # `subscribe`/`export` work without a cluster deployment
        store.enable_replication()
    if store.recovery is not None:
        # the report goes to stderr so the protocol stream stays a pure
        # one-response-per-command channel
        for line in store.recovery.lines():
            sys.stderr.write("recover: {}\n".format(line))
    if args.listen:
        import asyncio

        from repro.api.server import StoreServer

        host, port, unix_path = _parse_listen(args.listen)
        server = StoreServer(store, host=host, port=port,
                             unix_path=unix_path,
                             max_pipeline=args.max_pipeline,
                             metrics_listen=(
                                 _parse_metrics_listen(args.metrics_listen)
                                 if args.metrics_listen else None))

        async def _serve():
            await server.start()
            address = server.tcp_address
            # the bound address goes to stdout (and flushes) so a
            # supervisor using port 0 can discover the ephemeral port
            if address is not None:
                out.write("listening tcp {}:{}\n".format(*address))
            if unix_path is not None:
                out.write("listening unix {}\n".format(unix_path))
            metrics_address = server.metrics_http_address
            if metrics_address is not None:
                out.write("metrics http {}:{}\n".format(*metrics_address))
            out.flush()
            await server.serve_forever()

        asyncio.run(_serve())
        return 0
    service = StoreService(store)
    if args.script:
        with open(args.script, "r", encoding="utf-8") as handle:
            return service.serve(handle, out)
    return service.serve(sys.stdin, out)


def cmd_store_recover(args, out):
    if not os.path.isdir(args.wal_dir):
        # recover inspects existing state; creating the directory here
        # would turn a path typo into fresh, durable-looking emptiness
        raise ReproError(
            "--wal-dir {} does not exist".format(args.wal_dir))
    policy = DurabilityPolicy.parse(args.durability or "log")
    store = DocumentStore(workers=args.workers, backend=args.backend,
                          max_code_length=args.max_code_length,
                          durability=policy, wal_dir=args.wal_dir)
    try:
        report = store.recovery
        if report is None:
            out.write("nothing to recover: {} holds no durable state\n"
                      .format(args.wal_dir))
            return 0
        for line in report.lines():
            out.write(line + "\n")
        if args.dump_dir is not None:
            os.makedirs(args.dump_dir, exist_ok=True)
            for doc_id, __ in report.documents:
                path = os.path.join(args.dump_dir,
                                    "{}.xml".format(doc_id))
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(store.text(doc_id))
                out.write("wrote {}\n".format(path))
        if args.verify:
            oracle = replay_oracle(args.wal_dir)
            failures = []
            for doc_id, version in report.documents:
                expected_text, expected_version = oracle[doc_id]
                if (store.text(doc_id) != expected_text
                        or version != expected_version):
                    failures.append(doc_id)
            if failures:
                out.write("verify: FAILED for {}\n".format(
                    ", ".join(repr(d) for d in failures)))
                return 1
            out.write("verify: recovered state matches the stateless "
                      "replay oracle byte-for-byte\n")
    finally:
        store.close()
    return 0


def cmd_store_bench(args, out):
    report = run_store_benchmark(
        scale=args.scale, clients=args.clients, rounds=args.rounds,
        ops_per_round=args.ops, workers=args.workers,
        backend=args.backend, max_code_length=args.max_code_length,
        seed=args.seed, min_depth=args.min_depth)
    for line in report.lines():
        out.write(line + "\n")
    return 0


def _etl_store(args):
    """Open the local store an ETL command targets (``--wal-dir``)."""
    policy, wal_dir = _durability_policy(args)
    if wal_dir is None:
        raise ReproError("store import/export/query/metrics needs "
                         "--target host:port (a running server) or "
                         "--wal-dir (a durability directory)")
    store = DocumentStore(workers=args.workers, backend=args.backend,
                          max_code_length=args.max_code_length,
                          durability=policy, wal_dir=wal_dir)
    if store.recovery is not None:
        for line in store.recovery.lines():
            sys.stderr.write("recover: {}\n".format(line))
    return store


def cmd_store_import(args, out):
    from repro.etl import BulkImporter

    def progress(line):
        if args.verbose:
            out.write(line + "\n")

    store = client = None
    try:
        if args.target:
            from repro.api.client import StoreClient
            from repro.cluster import parse_address

            host, port = parse_address(args.target)
            client = StoreClient.connect(host=host, port=port)
            load = client.bulk_import
        else:
            store = _etl_store(args)
            load = store.bulk_load
        importer = BulkImporter(load, chunk_docs=args.chunk_docs,
                                max_errors=args.max_errors,
                                doc_prefix=args.doc_prefix,
                                progress=progress)
        report = importer.run(args.paths)
    finally:
        if client is not None:
            client.close()
        if store is not None:
            store.close()
    for reject in report.rejected:
        out.write("reject {}: {}\n".format(reject["source"],
                                           reject["reason"]))
    out.write("imported {} of {} document(s) ({} nodes, {} chunk(s), "
              "{} rejected)\n".format(
                  report.loaded, report.scanned, report.nodes,
                  report.chunks, len(report.rejected)))
    return 0


def cmd_store_export(args, out):
    from repro.etl import export_corpus

    def progress(line):
        if args.verbose:
            out.write(line + "\n")

    store = client = None
    try:
        if args.target:
            from repro.api.client import StoreClient
            from repro.cluster import parse_address

            host, port = parse_address(args.target)
            client = StoreClient.connect(host=host, port=port)
            export = client.export
        else:
            from repro.api.dispatch import StoreDispatcher

            store = _etl_store(args)
            export = StoreDispatcher(store).export
        result = export_corpus(export, out_dir=args.out_dir,
                               doc_ids=args.docs or None,
                               page_size=args.page_size,
                               form=args.format, progress=progress)
    finally:
        if client is not None:
            client.close()
        if store is not None:
            store.close()
    out.write("exported {} document(s) in {} page(s) to {}\n".format(
        result["docs"], result["pages"],
        args.out_dir if args.out_dir else "stdout report"))
    if result["token"]:
        out.write("resume token: {}\n".format(result["token"]))
    return 0


def _write_plan(plan, out):
    """Render an ``explain`` plan: one line per step with the choice
    the cost model made and the numbers it compared."""
    header = "plan: {} execution".format(plan.get("mode"))
    if plan.get("reason"):
        header += " ({})".format(plan["reason"])
    out.write(header + "\n")
    for number, record in enumerate(plan.get("steps", ()), 1):
        line = "  step {} {}: {}".format(
            number, record["step"], record["choice"])
        if "bucket" in record:
            line += " (bucket={}, est index={} vs walk={})".format(
                record["bucket"], record["est_index"],
                record["est_walk"])
        if record.get("reason"):
            line += " [{}]".format(record["reason"])
        if record.get("predicates"):
            line += " predicates: {}".format(
                ", ".join(record["predicates"]))
        if "out" in record:
            line += " -> {} node(s)".format(record["out"])
        out.write(line + "\n")


def cmd_store_query(args, out):
    store = client = None
    try:
        if args.target:
            from repro.api.client import StoreClient
            from repro.cluster import parse_address

            host, port = parse_address(args.target)
            client = StoreClient.connect(host=host, port=port)
            surface = client
        else:
            from repro.api.dispatch import StoreDispatcher

            store = _etl_store(args)
            surface = StoreDispatcher(store)
        if args.explain:
            result = surface.explain(args.doc, args.path)
        else:
            result = surface.query(args.doc, args.path)
    finally:
        if client is not None:
            client.close()
        if store is not None:
            store.close()
    out.write("doc {} version {}: {} node(s)\n".format(
        result["doc_id"], result["version"], result["count"]))
    if args.explain:
        _write_plan(result["plan"], out)
    else:
        for node in result["nodes"]:
            out.write(node + "\n")
    return 0


def cmd_store_metrics(args, out):
    store = client = None
    try:
        if args.target:
            from repro.api.client import StoreClient
            from repro.cluster import parse_address

            host, port = parse_address(args.target)
            client = StoreClient.connect(host=host, port=port,
                                         retries=args.retries)
            surface = client
        else:
            from repro.api.dispatch import StoreDispatcher

            store = _etl_store(args)
            surface = StoreDispatcher(store)
        if args.json:
            result = surface.metrics(traces=args.traces,
                                     slow=args.slow)
            out.write(json.dumps(result, indent=2, sort_keys=True)
                      + "\n")
        else:
            out.write(surface.metrics(format="prometheus")["text"])
    finally:
        if client is not None:
            client.close()
        if store is not None:
            store.close()
    return 0


def _ms(seconds):
    return "-" if seconds is None else "{:.2f}".format(seconds * 1000)


def _top_rate(snap, previous, name, elapsed):
    """Per-second rate of one counter over the sample window (since
    process start on the first sample)."""
    now = snap.get("counters", {}).get(name, 0)
    base = (previous or {}).get("counters", {}).get(name, 0)
    return (now - base) / elapsed


def render_top_frame(snap, stats, previous):
    """One ``repro store top`` screen from a ``metrics`` snapshot, the
    server's ``stats`` and the previous snapshot (``None`` on the
    first poll: rates then average over the whole uptime)."""
    from repro.obs import percentile_from_buckets

    uptime = snap.get("uptime_seconds") or 0.0
    elapsed = (uptime - (previous.get("uptime_seconds") or 0.0)
               if previous else uptime)
    elapsed = max(elapsed, 1e-9)
    hists = snap.get("histograms", {})
    prev_hists = (previous or {}).get("histograms", {})
    lines = ["repro store top — uptime {:.0f}s, {} doc(s), "
             "window {:.1f}s".format(
                 uptime, len(stats.get("stats", [])), elapsed), ""]
    lines.append("{:<10}{:>10}{:>10}{:>10}{:>12}".format(
        "op", "ops/s", "p50 ms", "p99 ms", "total"))
    prefix = 'repro_store_op_latency_seconds{op="'
    for key in sorted(hists):
        if not key.startswith(prefix):
            continue
        series = hists[key]
        counts = series["counts"]
        prev_counts = prev_hists.get(key, {}).get("counts")
        if prev_counts and len(prev_counts) == len(counts):
            counts = [a - b for a, b in zip(counts, prev_counts)]
        lines.append("{:<10}{:>10.1f}{:>10}{:>10}{:>12}".format(
            key[len(prefix):-2], sum(counts) / elapsed,
            _ms(percentile_from_buckets(series["buckets"], counts,
                                        0.5)),
            _ms(percentile_from_buckets(series["buckets"], counts,
                                        0.99)),
            series["count"]))
    gauges = snap.get("gauges", {})
    lines.append("")
    lines.append(
        "fsyncs/s {:.1f}   wal KB/s {:.1f}   frames in/s {:.1f}   "
        "connections {}   pending {}".format(
            _top_rate(snap, previous, "repro_wal_fsyncs_total",
                      elapsed),
            _top_rate(snap, previous, "repro_wal_bytes_total",
                      elapsed) / 1024.0,
            sum(_top_rate(snap, previous, key, elapsed)
                for key in snap.get("counters", {})
                if key.startswith("repro_server_frames_in_total")),
            gauges.get("repro_server_connections", 0),
            gauges.get("repro_store_pending_submissions", 0)))
    replication = stats.get("replication")
    if replication is None:
        lines.append("replication: off")
    elif replication.get("role") == "leader":
        lines.append(
            "replication: leader seq={} subscribers={} "
            "max_lag_records={}".format(
                replication.get("seq"),
                len(replication.get("subscribers", {})),
                gauges.get("repro_replication_max_lag_records", 0)))
    else:
        lines.append(
            "replication: replica of {} behind={} lag={}s "
            "connected={}".format(
                replication.get("leader"), replication.get("behind"),
                replication.get(
                    "lag_seconds",
                    gauges.get("repro_replication_lag_seconds", 0)),
                "yes" if replication.get("connected") else "no"))
    return "\n".join(lines) + "\n"


def cmd_store_top(args, out):
    from repro.api.client import StoreClient
    from repro.cluster import parse_address

    host, port = parse_address(args.target)
    with StoreClient.connect(host=host, port=port,
                             retries=args.retries) as client:
        previous = None
        polls = 0
        while args.iterations is None or polls < args.iterations:
            if polls:
                time.sleep(args.interval)
            snap = client.metrics()
            stats = client.stats()
            frame = render_top_frame(snap, stats, previous)
            if not args.no_clear:
                out.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            out.write(frame)
            out.flush()
            previous = snap
            polls += 1
    return 0


def cmd_invert(args, out):
    document = _load_document(args.document)
    pul = _load_pul(args.pul)
    forward, inverse = invert_pul(pul, document)
    if args.forward:
        out.write(pul_to_xml(forward) + "\n")
    else:
        out.write(pul_to_xml(inverse) + "\n")
    return 0


def cmd_cluster_serve(args, out):
    import asyncio

    from repro.api.server import StoreServer
    from repro.cluster import ReplicaStore, ReplicaSync

    policy, wal_dir = _durability_policy(args)
    host, port, unix_path = _parse_listen(args.listen)
    common = dict(workers=args.workers, backend=args.backend,
                  max_code_length=args.max_code_length,
                  durability=policy, wal_dir=wal_dir,
                  **_observability_kwargs(args))
    sync = None
    if args.role == "leader":
        if wal_dir is None:
            raise ReproError(
                "a leader ships its write-ahead log: --wal-dir is "
                "required with --role leader")
        store = DocumentStore(on_conflict=args.on_conflict, **common)
        store.enable_replication(backlog=args.backlog)
    else:
        if not args.leader:
            raise ReproError("--role replica needs --leader HOST:PORT")
        store = ReplicaStore(leader_address=args.leader, **common)
        replica_id = args.replica_id or "replica-{}".format(os.getpid())
        sync = ReplicaSync(store, args.leader, replica_id,
                           wait_s=args.poll_wait)
    if store.recovery is not None:
        for line in store.recovery.lines():
            sys.stderr.write("recover: {}\n".format(line))
    server = StoreServer(store, host=host, port=port,
                         unix_path=unix_path,
                         max_pipeline=args.max_pipeline,
                         metrics_listen=(
                             _parse_metrics_listen(args.metrics_listen)
                             if args.metrics_listen else None))

    async def _serve():
        await server.start()
        address = server.tcp_address
        if address is not None:
            out.write("listening tcp {}:{}\n".format(*address))
        if unix_path is not None:
            out.write("listening unix {}\n".format(unix_path))
        metrics_address = server.metrics_http_address
        if metrics_address is not None:
            out.write("metrics http {}:{}\n".format(*metrics_address))
        out.write("role {}\n".format(store.role))
        out.flush()
        # the sync loop starts after the listeners are up, so a peer
        # probing this node's status can already reach it while the
        # leader connection is still backing off
        if sync is not None:
            sync.start()
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    finally:
        if sync is not None:
            sync.stop()
    return 0


def cmd_cluster_promote(args, out):
    from repro.cluster import parse_address

    from repro.api.client import StoreClient

    host, port = parse_address(args.node)
    with StoreClient.connect(host=host, port=port,
                             retries=args.retries) as client:
        result = client.promote(
            allow_non_durable=args.allow_non_durable)
    out.write("{} is now {} (applied_seq={}{})\n".format(
        args.node, result.get("role"), result.get("applied_seq"),
        "" if result.get("promoted") else "; was already promoted"))
    return 0


def cmd_cluster_status(args, out):
    from repro.api.client import StoreClient
    from repro.cluster import parse_address

    failures = 0
    for node in args.nodes:
        host, port = parse_address(node)
        try:
            with StoreClient.connect(host=host, port=port,
                                     retries=args.retries) as client:
                stats = client.stats()
        except (ReproError, OSError) as error:
            out.write("node {}: unreachable ({})\n".format(node, error))
            failures += 1
            continue
        docs = len(stats.get("stats", []))
        replication = stats.get("replication")
        if replication is None:
            out.write("node {}: standalone, {} doc(s)\n".format(node,
                                                                docs))
        elif replication.get("role") == "leader":
            subscribers = replication.get("subscribers", {})
            lags = ", ".join(
                "{} lag={}".format(name, state.get("lag"))
                for name, state in sorted(subscribers.items())) or "-"
            out.write(
                "node {}: leader seq={} wal=gen{}@{} {} doc(s), "
                "subscribers: {}\n".format(
                    node, replication.get("seq"),
                    replication.get("wal", {}).get("generation"),
                    replication.get("wal", {}).get("offset"),
                    docs, lags))
        else:
            out.write(
                "node {}: replica of {} applied_seq={} behind={} "
                "connected={} {} doc(s){}\n".format(
                    node, replication.get("leader"),
                    replication.get("applied_seq"),
                    replication.get("behind"),
                    "yes" if replication.get("connected") else "no",
                    docs,
                    " last_error={!r}".format(replication["last_error"])
                    if replication.get("last_error") else ""))
    return 1 if failures else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)

    produce = commands.add_parser(
        "produce", help="compile an XQuery Update expression into a PUL")
    produce.add_argument("document")
    produce.add_argument("query")
    produce.add_argument("--origin", default=None,
                         help="producer name recorded in the PUL")
    produce.set_defaults(func=cmd_produce)

    reduce_cmd = commands.add_parser("reduce", help="reduce a PUL")
    reduce_cmd.add_argument("document", nargs="?", default=None,
                            help="document for structural information "
                                 "(defaults to the PUL's labels)")
    reduce_cmd.add_argument("pul")
    group = reduce_cmd.add_mutually_exclusive_group()
    group.add_argument("--deterministic", action="store_true")
    group.add_argument("--canonical", action="store_true")
    reduce_cmd.set_defaults(func=cmd_reduce)

    integrate_cmd = commands.add_parser(
        "integrate", help="integrate parallel PULs")
    integrate_cmd.add_argument("--document", default=None)
    integrate_cmd.add_argument("puls", nargs="+")
    integrate_cmd.add_argument("--reconcile", action="store_true")
    integrate_cmd.add_argument(
        "--policy", action="append", type=_parse_policy, metavar="P:FLAGS",
        help="producer policy, e.g. alice:order,inserted")
    integrate_cmd.set_defaults(func=cmd_integrate)

    aggregate_cmd = commands.add_parser(
        "aggregate", help="aggregate sequential PULs")
    aggregate_cmd.add_argument("puls", nargs="+")
    aggregate_cmd.add_argument("--strict", action="store_true",
                               help="refuse the generalized-repC extension")
    aggregate_cmd.set_defaults(func=cmd_aggregate)

    apply_cmd = commands.add_parser("apply", help="apply a PUL")
    apply_cmd.add_argument("document")
    apply_cmd.add_argument("pul")
    apply_cmd.add_argument("--in-memory", action="store_true",
                           help="use the in-memory evaluator")
    apply_cmd.set_defaults(func=cmd_apply)

    pipeline_cmd = commands.add_parser(
        "pipeline",
        help="reduce a PUL in parallel shards and apply it (streaming)")
    pipeline_cmd.add_argument("document")
    pipeline_cmd.add_argument("pul")
    pipeline_cmd.add_argument("--workers", type=int, default=2,
                              help="concurrent reduction workers")
    pipeline_cmd.add_argument("--backend", default="process",
                              choices=("process", "thread", "serial"))
    pipeline_cmd.add_argument("--shards", type=int, default=None,
                              help="shard count (defaults to --workers)")
    pipeline_cmd.add_argument("--batch-size", type=int,
                              default=DEFAULT_BATCH_SIZE,
                              help="output events per serialized batch")
    pipeline_cmd.add_argument("--sequential", action="store_true",
                              help="single-shard serial reference run")
    pipeline_cmd.set_defaults(func=cmd_pipeline)

    store_cmd = commands.add_parser(
        "store", help="resident multi-document update store")
    store_commands = store_cmd.add_subparsers(dest="store_command",
                                              required=True)

    def _store_options(parser_):
        parser_.add_argument("--workers", type=int, default=2,
                             help="concurrent reduction workers")
        parser_.add_argument("--backend", default="thread",
                             choices=("process", "thread", "serial"))
        parser_.add_argument("--max-code-length", type=int,
                             default=DEFAULT_MAX_CODE_LENGTH,
                             help="containment-code headroom budget "
                                  "before a full relabel")

    def _durability_options(parser_):
        parser_.add_argument("--wal-dir", default=None,
                             help="durability directory (write-ahead "
                                  "log + snapshots); existing state is "
                                  "recovered on start")
        parser_.add_argument("--durability", default=None,
                             help="off, log, or log+snapshot[:N] "
                                  "(default: log when --wal-dir is set)")
        parser_.add_argument("--snapshot-every", type=int, default=None,
                             help="batches between snapshot compactions "
                                  "(log+snapshot mode)")

    def _observability_options(parser_):
        parser_.add_argument("--no-metrics", action="store_true",
                             help="disable the metrics registry "
                                  "(instrumentation sites become "
                                  "no-ops)")
        parser_.add_argument("--metrics-listen", default=None,
                             metavar="HOST:PORT",
                             help="also serve GET /metrics (Prometheus "
                                  "text exposition) over HTTP "
                                  "(network mode)")
        parser_.add_argument("--slow-query-s", type=float, default=None,
                             metavar="S",
                             help="log queries slower than S seconds "
                                  "(with their recorded plans)")
        parser_.add_argument("--slow-flush-s", type=float, default=None,
                             metavar="S",
                             help="log flushes slower than S seconds "
                                  "(with per-stage timings)")
        parser_.add_argument("--slow-log", default=None, metavar="FILE",
                             help="append slow-log entries to FILE as "
                                  "JSONL (default: in-memory ring "
                                  "only)")

    serve_cmd = store_commands.add_parser(
        "serve", help="drive the store over the line protocol "
                      "(stdin/stdout)")
    _store_options(serve_cmd)
    _durability_options(serve_cmd)
    _observability_options(serve_cmd)
    serve_cmd.add_argument("--script", default=None,
                           help="read commands from a file instead of "
                                "stdin")
    serve_cmd.add_argument("--listen", default=None,
                           metavar="HOST:PORT|unix:PATH",
                           help="serve the network protocol instead of "
                                "the stdin/stdout line protocol "
                                "(port 0 picks an ephemeral port, "
                                "reported on stdout)")
    serve_cmd.add_argument("--max-pipeline", type=int, default=32,
                           help="per-connection bound on queued "
                                "pipelined requests (network mode)")
    serve_cmd.add_argument("--on-conflict", default="error",
                           choices=("error", "reconcile"))
    serve_cmd.add_argument("--replicate", action="store_true",
                           help="publish the write-ahead log as a "
                                "change feed (enables subscribe/export "
                                "CDC ops; needs --wal-dir)")
    serve_cmd.set_defaults(func=cmd_store_serve)

    recover_cmd = store_commands.add_parser(
        "recover", help="rebuild store state from a durability "
                        "directory and report it")
    _store_options(recover_cmd)
    recover_cmd.add_argument("--wal-dir", required=True,
                             help="durability directory to recover")
    recover_cmd.add_argument("--durability", default=None,
                             help="policy to reopen the directory "
                                  "under (default: log)")
    recover_cmd.add_argument("--verify", action="store_true",
                             help="byte-compare the recovered state "
                                  "against the stateless replay oracle")
    recover_cmd.add_argument("--dump-dir", default=None,
                             help="write each recovered document's XML "
                                  "into this directory")
    recover_cmd.set_defaults(func=cmd_store_recover)

    store_bench_cmd = store_commands.add_parser(
        "bench", help="resident-incremental vs parse+full-relabel "
                      "throughput")
    _store_options(store_bench_cmd)
    store_bench_cmd.add_argument("--scale", type=float, default=0.05,
                                 help="XMark document scale")
    store_bench_cmd.add_argument("--clients", type=int, default=4)
    store_bench_cmd.add_argument("--rounds", type=int, default=8)
    store_bench_cmd.add_argument("--ops", type=int, default=50,
                                 help="operations per round")
    store_bench_cmd.add_argument("--seed", type=int, default=11)
    store_bench_cmd.add_argument("--min-depth", type=int, default=0)
    store_bench_cmd.set_defaults(func=cmd_store_bench)

    def _etl_target_options(parser_):
        parser_.add_argument("--target", default=None,
                             metavar="HOST:PORT",
                             help="a running store server (the leader "
                                  "in a cluster); mutually exclusive "
                                  "with --wal-dir")
        parser_.add_argument("--verbose", action="store_true",
                             help="report per-chunk/per-page progress")

    import_cmd = store_commands.add_parser(
        "import", help="streaming bulk load: XML files/directories -> "
                       "parse -> label -> group-committed chunks")
    _store_options(import_cmd)
    _durability_options(import_cmd)
    _etl_target_options(import_cmd)
    import_cmd.add_argument("paths", nargs="+",
                            help=".xml files or directories (walked "
                                 "recursively); doc id = file stem")
    import_cmd.add_argument("--doc-prefix", default="",
                            help="prefix prepended to every doc id")
    import_cmd.add_argument("--chunk-docs", type=int,
                            default=DEFAULT_CHUNK_DOCS,
                            help="documents per group-committed chunk")
    import_cmd.add_argument("--max-errors", type=int, default=None,
                            help="abort (import-aborted) after this "
                                 "many rejects (default: tolerate all; "
                                 "rejects are reported either way)")
    import_cmd.set_defaults(func=cmd_store_import)

    export_cmd = store_commands.add_parser(
        "export", help="filtered, resumable corpus dump from pinned "
                       "MVCC versions")
    _store_options(export_cmd)
    _durability_options(export_cmd)
    _etl_target_options(export_cmd)
    export_cmd.add_argument("--out-dir", default=None,
                            help="write each document's XML here "
                                 "(default: report only)")
    export_cmd.add_argument("--docs", nargs="*", default=None,
                            help="restrict the dump to these doc ids")
    export_cmd.add_argument("--page-size", type=int, default=64,
                            help="documents per export page")
    export_cmd.add_argument("--format", default="xml",
                            choices=("xml", "state"),
                            help="payload form: serialized xml or "
                                 "snapshot-form state (mirrors)")
    export_cmd.set_defaults(func=cmd_store_export)

    query_cmd = store_commands.add_parser(
        "query", help="read-only path query against a pinned MVCC "
                      "version (server or local WAL directory); "
                      "--explain prints the chosen plan per step")
    _store_options(query_cmd)
    _durability_options(query_cmd)
    _etl_target_options(query_cmd)
    query_cmd.add_argument("doc", help="document id")
    query_cmd.add_argument("path",
                           help="abbreviated-XPath path expression")
    query_cmd.add_argument("--explain", action="store_true",
                           help="print the per-step plan the cost "
                                "model chose instead of the nodes")
    query_cmd.set_defaults(func=cmd_store_query)

    metrics_cmd = store_commands.add_parser(
        "metrics", help="dump the observability metrics (Prometheus "
                        "text exposition by default)")
    _store_options(metrics_cmd)
    _durability_options(metrics_cmd)
    metrics_cmd.add_argument("--target", default=None,
                             metavar="HOST:PORT",
                             help="a running store server; mutually "
                                  "exclusive with --wal-dir")
    metrics_cmd.add_argument("--retries", type=int, default=1,
                             help="connect retries with backoff")
    metrics_cmd.add_argument("--json", action="store_true",
                             help="print the JSON snapshot instead of "
                                  "the Prometheus text form")
    metrics_cmd.add_argument("--traces", type=int, default=None,
                             metavar="N",
                             help="include the last N recorded span "
                                  "trees (--json only)")
    metrics_cmd.add_argument("--slow", type=int, default=None,
                             metavar="N",
                             help="include the last N slow-log entries "
                                  "(--json only)")
    metrics_cmd.set_defaults(func=cmd_store_metrics)

    top_cmd = store_commands.add_parser(
        "top", help="live dashboard over a running server: ops/sec, "
                    "latency percentiles, fsync rate, replication lag")
    top_cmd.add_argument("--target", required=True, metavar="HOST:PORT",
                         help="the server to watch")
    top_cmd.add_argument("--interval", type=float, default=2.0,
                         help="seconds between polls")
    top_cmd.add_argument("--iterations", type=int, default=None,
                         metavar="N",
                         help="stop after N frames (default: poll "
                              "until interrupted)")
    top_cmd.add_argument("--no-clear", action="store_true",
                         help="append frames instead of redrawing the "
                              "screen (log-friendly)")
    top_cmd.add_argument("--retries", type=int, default=1,
                         help="connect retries with backoff")
    top_cmd.set_defaults(func=cmd_store_top)

    cluster_cmd = commands.add_parser(
        "cluster", help="replicated multi-node deployment "
                        "(WAL-shipping leaders, read replicas)")
    cluster_commands = cluster_cmd.add_subparsers(dest="cluster_command",
                                                  required=True)

    cluster_serve_cmd = cluster_commands.add_parser(
        "serve", help="serve one cluster node (leader or replica) on "
                      "the network protocol")
    _store_options(cluster_serve_cmd)
    _durability_options(cluster_serve_cmd)
    _observability_options(cluster_serve_cmd)
    cluster_serve_cmd.add_argument("--role", required=True,
                                   choices=("leader", "replica"))
    cluster_serve_cmd.add_argument("--listen", required=True,
                                   metavar="HOST:PORT|unix:PATH",
                                   help="listen address (port 0 picks "
                                        "an ephemeral port, reported "
                                        "on stdout)")
    cluster_serve_cmd.add_argument("--leader", default=None,
                                   metavar="HOST:PORT",
                                   help="leader to stream from "
                                        "(replicas only)")
    cluster_serve_cmd.add_argument("--replica-id", default=None,
                                   help="name announced to the leader "
                                        "(default: replica-<pid>)")
    cluster_serve_cmd.add_argument("--backlog", type=int, default=None,
                                   help="records the leader retains "
                                        "for followers before they "
                                        "must re-bootstrap")
    cluster_serve_cmd.add_argument("--poll-wait", type=float,
                                   default=2.0,
                                   help="replica long-poll window in "
                                        "seconds")
    cluster_serve_cmd.add_argument("--max-pipeline", type=int,
                                   default=32,
                                   help="per-connection bound on "
                                        "queued pipelined requests")
    cluster_serve_cmd.add_argument("--on-conflict", default="error",
                                   choices=("error", "reconcile"))
    cluster_serve_cmd.set_defaults(func=cmd_cluster_serve)

    promote_cmd = cluster_commands.add_parser(
        "promote", help="convert a caught-up replica into a leader "
                        "(manual failover)")
    promote_cmd.add_argument("--node", required=True, metavar="HOST:PORT",
                             help="the replica to promote")
    promote_cmd.add_argument("--retries", type=int, default=2,
                             help="connect retries with backoff")
    promote_cmd.add_argument("--allow-non-durable", action="store_true",
                             help="salvage-promote a replica that has "
                                  "no write-ahead log (its acked "
                                  "batches die with the process)")
    promote_cmd.set_defaults(func=cmd_cluster_promote)

    status_cmd = cluster_commands.add_parser(
        "status", help="replication role, stream position and lag of "
                       "each node")
    status_cmd.add_argument("nodes", nargs="+", metavar="HOST:PORT")
    status_cmd.add_argument("--retries", type=int, default=1,
                            help="connect retries with backoff")
    status_cmd.set_defaults(func=cmd_cluster_status)

    invert_cmd = commands.add_parser(
        "invert", help="compute the inverse of a PUL")
    invert_cmd.add_argument("document")
    invert_cmd.add_argument("pul")
    invert_cmd.add_argument("--forward", action="store_true",
                            help="print the pinned forward PUL instead")
    invert_cmd.set_defaults(func=cmd_invert)
    return parser


def main(argv=None, out=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    out = out or sys.stdout
    try:
        return args.func(args, out)
    except ReproError as error:
        # the stable code keeps scripted callers' stderr greppable
        sys.stderr.write("error [{}]: {}\n".format(error.code, error))
        return 2
    except OSError as error:
        sys.stderr.write("error [os]: {}\n".format(error))
        return 2


if __name__ == "__main__":
    sys.exit(main())
