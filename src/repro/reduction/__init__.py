"""PUL reduction (Section 3.1).

* :func:`reduce_pul` — a reduction ``∆^O`` (Definition 7);
* :func:`reduce_deterministic` — the deterministic reduction ``∆^H``
  (Definition 8; stage 10 turns surviving ``ins↓`` into ``ins↙``);
* :func:`canonical_form` — the unique canonical form ``∆^H̄``
  (Definition 9; rule applications ordered by ``<p``).

Two engines are provided: the optimized staged engine of Section 3.1
(O(k log k), the default) and a naive reference engine that literally
searches rule applications pair-by-pair (used by tests and by the
ablation benchmark).
"""

from repro.reduction.rules import REDUCTION_RULES, RULES_BY_STAGE
from repro.reduction.engine import (
    canonical_form,
    reduce_deterministic,
    reduce_pul,
)
from repro.reduction.naive import reduce_naive

__all__ = [
    "REDUCTION_RULES",
    "RULES_BY_STAGE",
    "reduce_pul",
    "reduce_deterministic",
    "canonical_form",
    "reduce_naive",
]
