"""Reference (naive) reduction engine.

Implements Definitions 7–9 literally: at each stage, repeatedly search all
ordered operation pairs for an applicable rule and apply it; for the
canonical form, always apply the rule on the ``<p``-minimal pair
(Definition 9). Quadratic per step — kept as the executable specification
against which the optimized engine is property-tested, and as the baseline
of the reduction ablation benchmark.
"""

from __future__ import annotations

from repro.pul.ops import InsertInto, InsertIntoAsFirst
from repro.reasoning.oracle import oracle_for
from repro.reduction.rules import LAST_RULE_STAGE, RULES_BY_STAGE


def _pair_key(op1, op2, oracle):
    """``<p`` of Definition 9: document order of targets, then
    lexicographic order of serialized parameters."""
    return (oracle.order_key(op1.target), op1.param_key(),
            oracle.order_key(op2.target), op2.param_key())


def reduce_naive(pul, structure=None, deterministic=False, canonical=False):
    """Reduce ``pul`` by exhaustive rule search.

    ``structure`` is anything :func:`~repro.reasoning.oracle.oracle_for`
    accepts (defaults to the PUL's own labels). ``canonical`` implies the
    ``<p``-minimal application order (and stage 10); ``deterministic``
    adds stage 10 only.
    """
    oracle = oracle_for(structure if structure is not None else pul)
    ops = [op for op in pul]
    for stage in range(1, LAST_RULE_STAGE + 1):
        rules = RULES_BY_STAGE.get(stage, ())
        while True:
            applications = []
            for op1 in ops:
                for op2 in ops:
                    if op1 is op2:
                        continue
                    for rule in rules:
                        result = rule.match(op1, op2, oracle)
                        if result is not None:
                            applications.append((op1, op2, result))
            if not applications:
                break
            if canonical:
                op1, op2, result = min(
                    applications,
                    key=lambda item: _pair_key(item[0], item[1], oracle))
            else:
                op1, op2, result = applications[0]
            position = next(i for i, op in enumerate(ops) if op is op2)
            ops = [op for op in ops if op is not op1 and op is not op2]
            if result is op2:
                ops.insert(min(position, len(ops)), op2)
            else:
                ops.insert(min(position, len(ops)), result)
    if deterministic or canonical:
        ops = [InsertIntoAsFirst(op.target, [t.deep_copy()
                                             for t in op.trees])
               if isinstance(op, InsertInto) else op
               for op in ops]
    return pul.replace_operations(ops)
