"""Optimized staged reduction engine (Section 3.1).

Exploits the observations the paper makes about the rules: O3/O4 are the
only rules relating targets across ancestor-descendant distance (handled by
a single sweep over targets sorted in document order), stage 10 is a plain
rewriting, and every other rule relates operations on the same, sibling,
parent-child or element-attribute nodes — all constant-time joins through
the extended labels. Overall O(k log k) in the PUL size ``k``.

After stage 1 every (variant, target) pair holds at most one operation
(same-variant inserts were collapsed by I5; same-variant replacements are
incompatible; duplicate deletes are deduplicated), which is what makes the
later stages single-pass.
"""

from __future__ import annotations

from repro.pul.ops import InsertIntoAsFirst
from repro.reasoning.oracle import oracle_for
from repro.reduction.rules import (
    DEL,
    INS_A,
    INS_ATTR,
    INS_B,
    INS_F,
    INS_I,
    INS_L,
    REP_C,
    REP_N,
    _O2_VICTIMS,
)

_INSERT_NAMES = frozenset({INS_B, INS_A, INS_F, INS_L, INS_I, INS_ATTR})


class _Engine:
    """One reduction run over a PUL."""

    def __init__(self, pul, oracle, canonical):
        self.oracle = oracle
        self.canonical = canonical
        self.ops = list(pul)
        if canonical:
            self.ops.sort(key=self._op_key)
        #: (op_name, target) -> op; valid from the end of stage 1 on
        self.singles = {}

    def _op_key(self, op):
        return (self.oracle.order_key(op.target), op.op_name,
                op.param_key())

    # -- stage 1 -------------------------------------------------------------

    def stage1(self):
        by_target = {}
        for op in self.ops:
            by_target.setdefault(op.target, []).append(op)
        survivors = []
        for target, group in by_target.items():
            survivors.extend(self._stage1_local(group))
        survivors = self._stage1_sweep(survivors)
        self._stage1_collapse(survivors)

    def _stage1_local(self, group):
        """O1/O2 on one same-target group."""
        rep_n = next((op for op in group if op.op_name == REP_N), None)
        deletion = next((op for op in group if op.op_name == DEL), None)
        killer = rep_n if rep_n is not None else deletion
        if killer is not None:
            # O1: everything in the victim set dies; sibling inserts live.
            return [killer] + [op for op in group
                               if op.op_name in (INS_B, INS_A)]
        rep_c = next((op for op in group if op.op_name == REP_C), None)
        if rep_c is not None:
            # O2: child inserts die under a same-target repC.
            return [op for op in group if op.op_name not in _O2_VICTIMS]
        return group

    def _stage1_sweep(self, ops):
        """O3/O4: drop operations targeted inside a repN/del subtree (or a
        repC subtree, attributes of the repC target excepted)."""
        decorated = sorted(
            ((self.oracle.interval(op.target), op) for op in ops),
            key=lambda item: item[0][0])
        survivors = []
        hard = []   # stack of (hi, target) for repN/del killers
        soft = []   # stack of (hi, target) for repC killers
        for (lo, hi), op in decorated:
            while hard and hard[-1][0] < lo:
                hard.pop()
            while soft and soft[-1][0] < lo:
                soft.pop()
            # every remaining stack entry spans lo, hence (by interval
            # nesting) strictly contains op unless it sits on op's target
            dropped = any(
                target != op.target and hi < s_hi
                for s_hi, target in hard)                      # O3
            if not dropped:
                dropped = any(
                    target != op.target and hi < s_hi
                    and not self.oracle.is_attribute_of(op.target, target)
                    for s_hi, target in soft)                  # O4
            if not dropped:
                survivors.append(op)
            if op.op_name in (REP_N, DEL):
                hard.append((hi, op.target))
            elif op.op_name == REP_C:
                soft.append((hi, op.target))
        return survivors

    def _stage1_collapse(self, ops):
        """I5: fold same-variant same-target inserts; fill `singles`."""
        order = []
        grouped = {}
        for op in ops:
            key = (op.op_name, op.target)
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append(op)
        for key in order:
            name, target = key
            group = grouped[key]
            if len(group) == 1:
                self.singles[key] = group[0]
                continue
            if name in _INSERT_NAMES:
                if self.canonical:
                    group.sort(key=lambda op: op.param_key())
                trees = []
                for op in group:
                    trees.extend(op.trees)
                self.singles[key] = group[0].with_trees(trees)
            else:
                # duplicate deletes (or equal ops) collapse to one
                self.singles[key] = group[0]

    # -- helper access --------------------------------------------------------

    def _alive(self, name, target):
        return self.singles.get((name, target))

    def _drop(self, name, target):
        del self.singles[(name, target)]

    def _replace(self, op, merged):
        self.singles[(op.op_name, op.target)] = merged
        return merged

    def _iter_kind(self, name):
        """Alive operations of a variant, canonical order when needed."""
        found = [op for (n, __), op in self.singles.items() if n == name]
        found.sort(key=self._op_key)
        return found

    # -- stages 2-9 ------------------------------------------------------------

    def stage2(self):
        for ins_i in self._iter_kind(INS_I):
            ins_f = self._alive(INS_F, ins_i.target)
            if ins_f is not None:
                self._replace(ins_f, ins_f.with_trees(
                    list(ins_f.trees) + list(ins_i.trees)))
                self._drop(INS_I, ins_i.target)

    def stage3(self):
        for ins_i in self._iter_kind(INS_I):
            ins_l = self._alive(INS_L, ins_i.target)
            if ins_l is not None:
                self._replace(ins_l, ins_l.with_trees(
                    list(ins_i.trees) + list(ins_l.trees)))
                self._drop(INS_I, ins_i.target)

    def stage4(self):
        for rep_n in self._iter_kind(REP_N):
            if self.oracle.is_attribute(rep_n.target):
                continue
            ins_b = self._alive(INS_B, rep_n.target)
            if ins_b is not None:
                rep_n = self._replace(rep_n, rep_n.with_trees(
                    list(ins_b.trees) + list(rep_n.trees)))
                self._drop(INS_B, ins_b.target)
            ins_a = self._alive(INS_A, rep_n.target)
            if ins_a is not None:
                self._replace(rep_n, rep_n.with_trees(
                    list(rep_n.trees) + list(ins_a.trees)))
                self._drop(INS_A, ins_a.target)

    def _children_index(self, name):
        """parent id -> alive `name` operations on its children."""
        index = {}
        for op in self._iter_kind(name):
            if self.oracle.is_attribute(op.target):
                continue
            parent = self.oracle.parent(op.target)
            if parent is not None:
                index.setdefault(parent, []).append(op)
        return index

    def stage5(self):
        index = self._children_index(INS_B)
        for ins_i in self._iter_kind(INS_I):
            candidates = [op for op in index.get(ins_i.target, ())
                          if (INS_B, op.target) in self.singles]
            if not candidates:
                continue
            ins_b = min(candidates, key=self._op_key)
            self._replace(ins_b, ins_b.with_trees(
                list(ins_i.trees) + list(ins_b.trees)))
            self._drop(INS_I, ins_i.target)

    def stage6(self):
        index = self._children_index(INS_A)
        for ins_i in self._iter_kind(INS_I):
            candidates = [op for op in index.get(ins_i.target, ())
                          if (INS_A, op.target) in self.singles]
            if not candidates:
                continue
            ins_a = min(candidates, key=self._op_key)
            self._replace(ins_a, ins_a.with_trees(
                list(ins_a.trees) + list(ins_i.trees)))
            self._drop(INS_I, ins_i.target)

    def stage7(self):
        index = self._children_index(REP_N)
        for ins_i in self._iter_kind(INS_I):
            candidates = [op for op in index.get(ins_i.target, ())
                          if (REP_N, op.target) in self.singles]
            if not candidates:
                continue
            rep_n = min(candidates, key=self._op_key)
            self._replace(rep_n, rep_n.with_trees(
                list(rep_n.trees) + list(ins_i.trees)))
            self._drop(INS_I, ins_i.target)

    def stage8(self):
        # IR13: repN on an attribute absorbs the element's insA
        attr_rep_n = {}
        for op in self._iter_kind(REP_N):
            if self.oracle.is_attribute(op.target):
                attr_rep_n.setdefault(
                    self.oracle.parent(op.target), []).append(op)
        for ins_attr in self._iter_kind(INS_ATTR):
            candidates = [op for op in attr_rep_n.get(ins_attr.target, ())
                          if (REP_N, op.target) in self.singles]
            if not candidates:
                continue
            rep_n = min(candidates, key=self._op_key)
            self._replace(rep_n, rep_n.with_trees(
                list(rep_n.trees) + list(ins_attr.trees)))
            self._drop(INS_ATTR, ins_attr.target)
        # I14/IR16 and I15/IR17: edge-of-children adjacency
        first_anchor, last_anchor = {}, {}
        for name in (INS_B, INS_A, REP_N):
            for op in self._iter_kind(name):
                if self.oracle.is_attribute(op.target):
                    continue
                parent = self.oracle.parent(op.target)
                if parent is None:
                    continue
                if self.oracle.left_sibling(op.target) is None:
                    first_anchor.setdefault(parent, {})[name] = op
                if self.oracle.right_sibling(op.target) is None:
                    last_anchor.setdefault(parent, {})[name] = op
        for ins_f in self._iter_kind(INS_F):
            anchors = first_anchor.get(ins_f.target, {})
            receiver = anchors.get(INS_B) or anchors.get(REP_N)
            if receiver is None:
                continue
            receiver = self._alive(receiver.op_name, receiver.target)
            if receiver is None:
                continue
            self._replace(receiver, receiver.with_trees(
                list(ins_f.trees) + list(receiver.trees)))
            self._drop(INS_F, ins_f.target)
        for ins_l in self._iter_kind(INS_L):
            anchors = last_anchor.get(ins_l.target, {})
            receiver = anchors.get(INS_A) or anchors.get(REP_N)
            if receiver is None:
                continue
            receiver = self._alive(receiver.op_name, receiver.target)
            if receiver is None:
                continue
            self._replace(receiver, receiver.with_trees(
                list(receiver.trees) + list(ins_l.trees)))
            self._drop(INS_L, ins_l.target)

    def stage9(self):
        # I18 / IR19: an ins→ merges into the right sibling's ins← or repN
        for ins_a in self._iter_kind(INS_A):
            right = self.oracle.right_sibling(ins_a.target)
            if right is None:
                continue
            receiver = self._alive(INS_B, right)
            if receiver is None:
                receiver = self._alive(REP_N, right)
                if receiver is not None and \
                        self.oracle.is_attribute(receiver.target):
                    receiver = None
            if receiver is None:
                continue
            self._replace(receiver, receiver.with_trees(
                list(ins_a.trees) + list(receiver.trees)))
            self._drop(INS_A, ins_a.target)
        # IR20: an ins← merges into the left sibling's repN
        for ins_b in self._iter_kind(INS_B):
            ins_b = self._alive(INS_B, ins_b.target)  # I18 may have merged
            if ins_b is None:
                continue
            left = self.oracle.left_sibling(ins_b.target)
            if left is None:
                continue
            rep_n = self._alive(REP_N, left)
            if rep_n is None or self.oracle.is_attribute(rep_n.target):
                continue
            self._replace(rep_n, rep_n.with_trees(
                list(rep_n.trees) + list(ins_b.trees)))
            self._drop(INS_B, ins_b.target)

    def stage10(self):
        for ins_i in self._iter_kind(INS_I):
            self._drop(INS_I, ins_i.target)
            self.singles[(INS_F, ins_i.target)] = InsertIntoAsFirst(
                ins_i.target, [t.deep_copy() for t in ins_i.trees])

    # -- driver ----------------------------------------------------------------

    def run(self, deterministic):
        self.stage1()
        self.stage2()
        self.stage3()
        self.stage4()
        self.stage5()
        self.stage6()
        self.stage7()
        self.stage8()
        self.stage9()
        if deterministic:
            self.stage10()
        result = list(self.singles.values())
        if self.canonical:
            result.sort(key=self._op_key)
        return result


def reduce_pul(pul, structure=None):
    """A reduction ``∆^O`` of ``pul`` (Definition 7)."""
    oracle = oracle_for(structure if structure is not None else pul)
    ops = _Engine(pul, oracle, canonical=False).run(deterministic=False)
    return pul.replace_operations(ops)


def reduce_deterministic(pul, structure=None):
    """The deterministic reduction ``∆^H`` (Definition 8)."""
    oracle = oracle_for(structure if structure is not None else pul)
    ops = _Engine(pul, oracle, canonical=False).run(deterministic=True)
    return pul.replace_operations(ops)


def canonical_form(pul, structure=None):
    """The canonical form ``∆^H̄`` (Definition 9): unique for the PUL,
    independent of the operations' list order."""
    oracle = oracle_for(structure if structure is not None else pul)
    ops = _Engine(pul, oracle, canonical=True).run(deterministic=True)
    return pul.replace_operations(ops)
