"""The reduction rules of Figure 2, in declarative form.

Each rule matches an ordered pair of operations ``(op1, op2)`` from the
same PUL and yields the single operation replacing them. For the
*overriding* rules (O1–O4) the result is ``op2`` itself (``op1`` is simply
dropped). Rules are grouped in the nine stages given by the figure's
``O``-operator subscripts.

Two printed-rule corrections are implemented (see DESIGN.md "Errata"):
I10/I11 target the child ``v'`` (not ``v``), and the parameter orders of
IR19/IR20 are swapped with respect to the printed text; the corrected
versions are the ones whose results are substitutable to the original PUL
(checked by property tests).
"""

from __future__ import annotations

from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    OpClass,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)

# convenient wire-name tokens
INS_B = InsertBefore.op_name
INS_A = InsertAfter.op_name
INS_F = InsertIntoAsFirst.op_name
INS_L = InsertIntoAsLast.op_name
INS_I = InsertInto.op_name
INS_ATTR = InsertAttributes.op_name
DEL = Delete.op_name
REP_N = ReplaceNode.op_name
REP_V = ReplaceValue.op_name
REP_C = ReplaceChildren.op_name
REN = Rename.op_name

#: o(op1) sets of the overriding rules
_O1_VICTIMS = frozenset(
    {REN, REP_V, REP_C, DEL, INS_F, INS_L, INS_I, INS_ATTR})
_O2_VICTIMS = frozenset({INS_F, INS_I, INS_L})
_KILLERS = frozenset({REP_N, DEL})


class ReductionRule:
    """A Figure 2 rule: ``(op1, op2) -> merged`` under a side condition."""

    def __init__(self, rule_id, stage, matcher, description):
        self.rule_id = rule_id
        self.stage = stage
        self._matcher = matcher
        self.description = description

    def match(self, op1, op2, oracle):
        """The replacement operation, or ``None`` when the rule does not
        apply to the ordered pair. For O-rules the result *is* ``op2``."""
        if op1 is op2:
            return None
        return self._matcher(op1, op2, oracle)

    def __repr__(self):
        return "ReductionRule({})".format(self.rule_id)


def _cat(op, trees_before, trees_after):
    """``op`` with parameter ``[trees_before, trees_after]``."""
    return op.with_trees(list(trees_before) + list(trees_after))


def _non_attribute_target(oracle, node_id):
    return not oracle.is_attribute(node_id)


# -- stage 1 ------------------------------------------------------------------


def _o1(op1, op2, oracle):
    if (op1.target == op2.target
            and op1.op_name in _O1_VICTIMS
            and op2.op_name in _KILLERS):
        return op2
    return None


def _o2(op1, op2, oracle):
    if (op1.target == op2.target
            and op1.op_name in _O2_VICTIMS
            and op2.op_name == REP_C):
        return op2
    return None


def _o3(op1, op2, oracle):
    if (op2.op_name in _KILLERS
            and oracle.is_descendant(op1.target, op2.target)):
        return op2
    return None


def _o4(op1, op2, oracle):
    if (op2.op_name == REP_C
            and oracle.is_nonattr_descendant(op1.target, op2.target)):
        return op2
    return None


def _i5(op1, op2, oracle):
    if (op1.op_class is OpClass.INSERT
            and op1.op_name == op2.op_name
            and op1.target == op2.target):
        return _cat(op1, op1.trees, op2.trees)
    return None


# -- stages 2-3: ins↓ against ins↙ / ins↘ on the same node -------------------


def _i6(op1, op2, oracle):
    if (op1.op_name == INS_I and op2.op_name == INS_F
            and op1.target == op2.target):
        return _cat(op2, op2.trees, op1.trees)
    return None


def _i7(op1, op2, oracle):
    if (op1.op_name == INS_I and op2.op_name == INS_L
            and op1.target == op2.target):
        return _cat(op2, op1.trees, op2.trees)
    return None


# -- stage 4: repN absorbs same-target sibling inserts -----------------------


def _ir8(op1, op2, oracle):
    if (op1.op_name == REP_N and op2.op_name == INS_B
            and op1.target == op2.target):
        return _cat(op1, op2.trees, op1.trees)
    return None


def _ir9(op1, op2, oracle):
    if (op1.op_name == REP_N and op2.op_name == INS_A
            and op1.target == op2.target):
        return _cat(op1, op1.trees, op2.trees)
    return None


# -- stages 5-6: ins↓ anchored at a child's sibling insert -------------------
# (printed rules target v; the merged operation must target v' — erratum)


def _i10(op1, op2, oracle):
    if (op1.op_name == INS_I and op2.op_name == INS_B
            and oracle.is_child(op2.target, op1.target)):
        return _cat(op2, op1.trees, op2.trees)
    return None


def _i11(op1, op2, oracle):
    if (op1.op_name == INS_I and op2.op_name == INS_A
            and oracle.is_child(op2.target, op1.target)):
        return _cat(op2, op2.trees, op1.trees)
    return None


# -- stage 7: a child's repN absorbs the parent's ins↓ ------------------------


def _ir12(op1, op2, oracle):
    if (op1.op_name == REP_N and op2.op_name == INS_I
            and oracle.is_child(op1.target, op2.target)
            and _non_attribute_target(oracle, op1.target)):
        return _cat(op1, op1.trees, op2.trees)
    return None


# -- stage 8: first/last-child and attribute adjacency ------------------------


def _ir13(op1, op2, oracle):
    if (op1.op_name == REP_N and op2.op_name == INS_ATTR
            and oracle.is_attribute_of(op1.target, op2.target)):
        return _cat(op1, op1.trees, op2.trees)
    return None


def _i14(op1, op2, oracle):
    if (op1.op_name == INS_B and op2.op_name == INS_F
            and oracle.is_first_child(op1.target, op2.target)):
        return _cat(op1, op2.trees, op1.trees)
    return None


def _i15(op1, op2, oracle):
    if (op1.op_name == INS_A and op2.op_name == INS_L
            and oracle.is_last_child(op1.target, op2.target)):
        return _cat(op1, op1.trees, op2.trees)
    return None


def _ir16(op1, op2, oracle):
    if (op1.op_name == REP_N and op2.op_name == INS_F
            and oracle.is_first_child(op1.target, op2.target)):
        return _cat(op1, op2.trees, op1.trees)
    return None


def _ir17(op1, op2, oracle):
    if (op1.op_name == REP_N and op2.op_name == INS_L
            and oracle.is_last_child(op1.target, op2.target)):
        return _cat(op1, op1.trees, op2.trees)
    return None


# -- stage 9: adjacent-sibling adjacency --------------------------------------
# (IR19/IR20 parameter orders corrected — erratum)


def _i18(op1, op2, oracle):
    if (op1.op_name == INS_B and op2.op_name == INS_A
            and oracle.is_left_sibling(op2.target, op1.target)):
        return _cat(op1, op2.trees, op1.trees)
    return None


def _ir19(op1, op2, oracle):
    if (op1.op_name == REP_N and op2.op_name == INS_A
            and oracle.is_left_sibling(op2.target, op1.target)
            and _non_attribute_target(oracle, op1.target)):
        return _cat(op1, op2.trees, op1.trees)
    return None


def _ir20(op1, op2, oracle):
    if (op1.op_name == REP_N and op2.op_name == INS_B
            and oracle.is_left_sibling(op1.target, op2.target)
            and _non_attribute_target(oracle, op1.target)):
        return _cat(op1, op1.trees, op2.trees)
    return None


REDUCTION_RULES = [
    ReductionRule("O1", 1, _o1,
                  "same-target op overridden by repN/del"),
    ReductionRule("O2", 1, _o2,
                  "same-target child insert overridden by repC"),
    ReductionRule("O3", 1, _o3,
                  "op on a descendant overridden by repN/del"),
    ReductionRule("O4", 1, _o4,
                  "op on a non-attribute descendant overridden by repC"),
    ReductionRule("I5", 1, _i5,
                  "same-variant same-target inserts collapse"),
    ReductionRule("I6", 2, _i6, "ins↓ merged into same-target ins↙"),
    ReductionRule("I7", 3, _i7, "ins↓ merged into same-target ins↘"),
    ReductionRule("IR8", 4, _ir8, "repN absorbs same-target ins←"),
    ReductionRule("IR9", 4, _ir9, "repN absorbs same-target ins→"),
    ReductionRule("I10", 5, _i10, "ins↓ merged into a child's ins←"),
    ReductionRule("I11", 6, _i11, "ins↓ merged into a child's ins→"),
    ReductionRule("IR12", 7, _ir12, "child repN absorbs parent ins↓"),
    ReductionRule("IR13", 8, _ir13, "attribute repN absorbs insA"),
    ReductionRule("I14", 8, _i14, "first-child ins← absorbs ins↙"),
    ReductionRule("I15", 8, _i15, "last-child ins→ absorbs ins↘"),
    ReductionRule("IR16", 8, _ir16, "first-child repN absorbs ins↙"),
    ReductionRule("IR17", 8, _ir17, "last-child repN absorbs ins↘"),
    ReductionRule("I18", 9, _i18, "ins← absorbs left sibling's ins→"),
    ReductionRule("IR19", 9, _ir19, "repN absorbs left sibling's ins→"),
    ReductionRule("IR20", 9, _ir20, "left sibling repN absorbs ins←"),
]

#: rules grouped by their stage (1..9)
RULES_BY_STAGE = {}
for _rule in REDUCTION_RULES:
    RULES_BY_STAGE.setdefault(_rule.stage, []).append(_rule)

#: number of staged passes performed by reduction (stage 10 is the
#: ins↓ -> ins↙ rewriting of the deterministic reduction)
LAST_RULE_STAGE = 9
