"""Extended Zhang containment labels.

A node's label is the pair of containment codes ``(start, end)`` plus its
``level``; an ancestor's interval strictly contains every descendant's
interval and document order coincides with ``start`` order.

Per Section 4.1, plain containment cannot decide the left-sibling
relationship nor tell attributes from children, so the paper extends the
label with the node type and the identifier of the left sibling. We
additionally record the parent and right-sibling identifiers, which makes
the first-child / last-child predicates (``/<-c`` and ``/->c`` of Table 1)
constant-time lookups as well.
"""

from __future__ import annotations

from repro.errors import LabelingError
from repro.xdm.node import NodeType

#: sentinel encoding "no sibling" in the serialized form
_NONE = "-"


class ExtendedLabel:
    """Immutable-by-convention label of a document node.

    Attributes
    ----------
    node_id: identifier of the labeled node.
    node_type: :class:`~repro.xdm.node.NodeType` of the node.
    start, end: containment codes (digit strings, lexicographic order).
    level: depth of the node (document root at level 0).
    parent_id: identifier of the parent node (``None`` for the root).
    left_sibling_id / right_sibling_id:
        identifiers of the adjacent non-attribute siblings (``None`` when
        absent, and always ``None`` for attributes).
    """

    __slots__ = ("node_id", "node_type", "start", "end", "level",
                 "parent_id", "left_sibling_id", "right_sibling_id")

    def __init__(self, node_id, node_type, start, end, level,
                 parent_id=None, left_sibling_id=None,
                 right_sibling_id=None):
        if not start < end:
            raise LabelingError(
                "label interval is empty: [{!r}, {!r}]".format(start, end))
        self.node_id = node_id
        self.node_type = node_type
        self.start = start
        self.end = end
        self.level = level
        self.parent_id = parent_id
        self.left_sibling_id = left_sibling_id
        self.right_sibling_id = right_sibling_id

    # -- serialization (labels travel inside PUL documents) ----------------

    def to_string(self):
        """Compact textual form used in the PUL exchange format."""
        fields = [
            str(self.node_id),
            self.node_type.value,
            self.start,
            self.end,
            str(self.level),
            _NONE if self.parent_id is None else str(self.parent_id),
            _NONE if self.left_sibling_id is None
            else str(self.left_sibling_id),
            _NONE if self.right_sibling_id is None
            else str(self.right_sibling_id),
        ]
        return ";".join(fields)

    @classmethod
    def from_string(cls, text):
        parts = text.split(";")
        if len(parts) != 8:
            raise LabelingError("malformed label: {!r}".format(text))
        def _opt(token):
            return None if token == _NONE else int(token)
        return cls(
            node_id=int(parts[0]),
            node_type=NodeType.from_code(parts[1]),
            start=parts[2],
            end=parts[3],
            level=int(parts[4]),
            parent_id=_opt(parts[5]),
            left_sibling_id=_opt(parts[6]),
            right_sibling_id=_opt(parts[7]),
        )

    def replaced(self, **changes):
        """A copy of this label with some fields changed (labels behave as
        values; sibling-pointer maintenance goes through the scheme)."""
        fields = {slot: getattr(self, slot) for slot in self.__slots__}
        fields.update(changes)
        return ExtendedLabel(**fields)

    def __eq__(self, other):
        if not isinstance(other, ExtendedLabel):
            return NotImplemented
        return all(getattr(self, slot) == getattr(other, slot)
                   for slot in self.__slots__)

    def __hash__(self):
        return hash((self.node_id, self.start, self.end))

    def __str__(self):
        return self.to_string()

    def __repr__(self):
        return "ExtendedLabel({})".format(self.to_string())
