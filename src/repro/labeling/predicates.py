"""The structural predicates of Table 1, computed on labels alone.

Every predicate is O(1) (code comparisons are O(code length), which is
O(log n) and treated as constant, as in [14]/[15]). The reasoning modules
(:mod:`repro.reduction`, :mod:`repro.integration`, :mod:`repro.aggregation`)
call only these functions — never the document.

Naming follows Table 1, first argument first: ``precedes(l1, l2)`` is
``v1 << v2``, ``is_descendant(l1, l2)`` is ``v1 //d v2`` ("v1 is a
descendant of v2"), and so on.
"""

from __future__ import annotations

from repro.xdm.node import NodeType


def precedes(label1, label2):
    """``v1 << v2``: v1 precedes v2 in document order (preorder; an
    ancestor precedes its descendants)."""
    return label1.start < label2.start


def is_descendant(label1, label2):
    """``v1 //d v2``: v1 is a (proper) descendant of v2."""
    return label2.start < label1.start and label1.end < label2.end


def is_ancestor(label1, label2):
    """``v1`` is a (proper) ancestor of ``v2``."""
    return is_descendant(label2, label1)


def is_child(label1, label2):
    """``v1 /c v2``: v1 is a child of v2 (attributes excluded)."""
    return (label1.node_type is not NodeType.ATTRIBUTE
            and is_descendant(label1, label2)
            and label1.level == label2.level + 1)


def is_attribute_of(label1, label2):
    """``v1 /a v2``: v1 is an attribute of v2."""
    return (label1.node_type is NodeType.ATTRIBUTE
            and is_descendant(label1, label2)
            and label1.level == label2.level + 1)


def is_left_sibling(label1, label2):
    """``v1 s v2``: v1 is the left sibling of v2."""
    return (label2.left_sibling_id is not None
            and label2.left_sibling_id == label1.node_id)


def is_first_child(label1, label2):
    """``v1 /<-c v2``: v1 is the first child of v2."""
    return is_child(label1, label2) and label1.left_sibling_id is None


def is_last_child(label1, label2):
    """``v1 /->c v2``: v1 is the last child of v2."""
    return is_child(label1, label2) and label1.right_sibling_id is None


def is_nonattribute_descendant(label1, label2):
    """``v1 //¬a_d v2``: v1 is a descendant of v2 but not an attribute
    *of v2* (deeper attributes still qualify) — the reach of a ``repC``."""
    return is_descendant(label1, label2) and \
        not is_attribute_of(label1, label2)
