"""Update-tolerant labeling of document nodes (Section 4.1).

The paper's reasoning never navigates documents; it evaluates the structural
predicates of Table 1 on *labels* attached to the operations' target nodes.
The adopted scheme is Zhang containment encoded with the CDBS or CDQS
dynamic encoders ([14], [15]), extended with the node type and sibling
identifiers so that every Table 1 relationship is decidable in constant
time and document updates never force a relabeling.
"""

from repro.labeling.codes import CDBSEncoder, CDQSEncoder, code_between
from repro.labeling.containment import ExtendedLabel
from repro.labeling.scheme import ContainmentLabeling
from repro.labeling import predicates

__all__ = [
    "CDBSEncoder",
    "CDQSEncoder",
    "code_between",
    "ExtendedLabel",
    "ContainmentLabeling",
    "predicates",
]
