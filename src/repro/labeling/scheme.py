"""The containment labeling scheme: construction and update-tolerant
maintenance.

A :class:`ContainmentLabeling` instance owns the ``node id -> label`` map of
one document. Building it bulk-assigns balanced codes; after the document is
updated, :meth:`sync` assigns codes to the *new* nodes only, generated
between the surviving neighbor codes — existing codes are never modified,
which is the update-tolerance property the paper requires (Section 4.1:
"document updates should not lead to relabeling of nodes").
"""

from __future__ import annotations

from repro.errors import LabelingError
from repro.labeling.codes import CDBSEncoder, code_str, intern_code
from repro.labeling.containment import ExtendedLabel
from repro.xdm.navigation import depth as node_depth


class ContainmentLabeling:
    """Zhang containment labels with CDBS/CDQS codes for one document."""

    def __init__(self, encoder=None):
        self.encoder = encoder or CDBSEncoder()
        self._labels = {}
        self._max_code_len = 0

    # -- lookup -------------------------------------------------------------

    def __contains__(self, node_id):
        return node_id in self._labels

    def __len__(self):
        return len(self._labels)

    def label_of(self, node_id):
        """Return the label of ``node_id``."""
        try:
            return self._labels[node_id]
        except KeyError:
            raise LabelingError(
                "no label for node id {!r}".format(node_id)) from None

    def find(self, node_id):
        """Return the label of ``node_id`` or ``None``."""
        return self._labels.get(node_id)

    def as_mapping(self):
        """Read-only view of the id -> label map (for serializers)."""
        return dict(self._labels)

    def import_label(self, label):
        """Register a label received from a peer (PUL deserialization)."""
        self._labels[label.node_id] = label
        self._track(label.start, label.end)
        return label

    def copy(self):
        """Structural copy sharing the (immutable) labels.

        :class:`~repro.labeling.containment.ExtendedLabel` instances are
        never mutated in place — maintenance replaces map entries — so a
        copy only needs its own map and watermark. This is what makes an
        MVCC working copy of a labeled document cheap: O(nodes) dict
        duplication, no code re-derivation.
        """
        clone = ContainmentLabeling(encoder=self.encoder)
        clone._labels = dict(self._labels)
        clone._max_code_len = self._max_code_len
        return clone

    # -- code headroom -------------------------------------------------------

    @property
    def max_code_length(self):
        """Length of the longest containment code ever installed.

        Repeated insertions between adjacent codes grow code length by
        roughly one digit each, so this is the headroom indicator the
        update-tolerance property trades on: once it crosses a caller's
        budget, a full :meth:`build` rebalances every code back to
        ``O(log n)`` digits. The counter is monotone under incremental
        maintenance (dropping long-coded nodes does not shrink it — a
        deliberately conservative reading of the remaining headroom) and
        resets on :meth:`build`.
        """
        return self._max_code_len

    def _track(self, *codes):
        for code in codes:
            if len(code) > self._max_code_len:
                self._max_code_len = len(code)

    def note_code_length(self, length):
        """Raise the max-code-length watermark to ``length``.

        Restoring a labeling from a durability snapshot must preserve the
        watermark exactly: the tracker is monotone between rebuilds, so it
        may exceed the longest code currently installed, and recomputing
        it from the imported labels would under-read the spent headroom.
        """
        if length > self._max_code_len:
            self._max_code_len = length

    # -- construction --------------------------------------------------------

    def build(self, document):
        """Label every node of ``document`` with balanced fresh codes."""
        self._labels = {}
        self._max_code_len = 0
        if document.root is None:
            return self
        slots = _boundary_slots(document.root)
        codes = self.encoder.initial_codes(len(slots))
        self._install(document.root, slots, codes, base_level=0)
        self._refresh_pointers(document.root)
        return self

    def sync(self, document):
        """Incrementally label the nodes of ``document`` lacking a label.

        Existing labels keep their codes; runs of unlabeled boundary slots
        receive codes generated strictly between the neighboring existing
        codes. Labels of nodes no longer in the document are dropped, and
        sibling pointers are refreshed where adjacency changed.
        """
        if document.root is None:
            self._labels = {}
            self._max_code_len = 0
            return self
        slots = _boundary_slots(document.root)
        live = {node.node_id for node, _ in slots}
        for node_id in list(self._labels):
            if node_id not in live:
                del self._labels[node_id]
        codes = self._fill_codes(slots)
        self._install(document.root, slots, codes, base_level=0,
                      only_missing=True)
        self._refresh_pointers(document.root)
        return self

    def _fill_codes(self, slots):
        """Produce the full code sequence for ``slots``, reusing existing
        codes and generating fresh ones for unlabeled runs."""
        codes = [None] * len(slots)
        for index, (node, which) in enumerate(slots):
            existing = self._labels.get(node.node_id)
            if existing is not None:
                codes[index] = existing.start if which == 0 else existing.end
        index = 0
        while index < len(codes):
            if codes[index] is not None:
                index += 1
                continue
            run_start = index
            while index < len(codes) and codes[index] is None:
                index += 1
            left = codes[run_start - 1] if run_start > 0 else None
            right = codes[index] if index < len(codes) else None
            fresh = self.encoder.codes_between(left, right,
                                               index - run_start)
            codes[run_start:index] = fresh
        return codes

    def _install(self, root, slots, codes, base_level, only_missing=False):
        """Create labels from the boundary sequence."""
        open_code = {}
        for index, (node, which) in enumerate(slots):
            if which == 0:
                open_code[id(node)] = codes[index]
            else:
                start = open_code.pop(id(node))
                if only_missing and node.node_id in self._labels:
                    continue
                self._labels[node.node_id] = ExtendedLabel(
                    node_id=node.node_id,
                    node_type=node.node_type,
                    start=start,
                    end=codes[index],
                    level=base_level + node_depth(node),
                    parent_id=(node.parent.node_id
                               if node.parent is not None else None),
                )
                self._track(start, codes[index])
        if open_code:
            raise LabelingError("unbalanced boundary sequence")

    def _refresh_pointers(self, root):
        """Recompute the sibling pointers of every label under ``root``."""
        for node in root.iter_subtree():
            if node.is_element:
                previous = None
                for child in node.children:
                    self._set_pointers(child, previous)
                    previous = child
                if previous is not None:
                    self._point(previous, right_sibling_id=None)

    def _set_pointers(self, child, previous):
        left_id = previous.node_id if previous is not None else None
        self._point(child, left_sibling_id=left_id)
        if previous is not None:
            self._point(previous, right_sibling_id=child.node_id)

    def _point(self, node, **changes):
        label = self._labels.get(node.node_id)
        if label is None:
            return
        updated = {key: value for key, value in changes.items()
                   if getattr(label, key) != value}
        if updated:
            self._labels[node.node_id] = label.replaced(**updated)

    # -- direct assignment (used by the streaming evaluator) ----------------

    def assign_tree(self, trees, parent_id, parent_level, left_code,
                    right_code):
        """Label the detached ``trees`` (ids already assigned), with codes
        strictly between ``left_code`` and ``right_code``.

        Sibling pointers are set among the trees themselves; the caller is
        responsible for stitching the outer pointers (the trees' neighbors
        in the final document).
        """
        slots = []
        for tree in trees:
            if tree.parent is not None:
                raise LabelingError("assign_tree requires detached trees")
            slots.extend(_boundary_slots(tree))
        codes = self.encoder.codes_between(left_code, right_code, len(slots))
        open_code = {}
        for index, (node, which) in enumerate(slots):
            if which == 0:
                open_code[id(node)] = codes[index]
            else:
                start = open_code.pop(id(node))
                self._labels[node.node_id] = ExtendedLabel(
                    node_id=node.node_id,
                    node_type=node.node_type,
                    start=start,
                    end=codes[index],
                    level=parent_level + 1 + node_depth(node),
                    parent_id=(node.parent.node_id
                               if node.parent is not None else parent_id),
                )
                self._track(start, codes[index])
        for tree in trees:
            self._refresh_pointers(tree)
        previous = None
        for tree in trees:
            self._set_pointers(tree, previous)
            previous = tree

    def drop_subtree(self, node):
        """Forget the labels of ``node``'s subtree (after a delete)."""
        for item in node.iter_subtree():
            self._labels.pop(item.node_id, None)

    def forget(self, node_id):
        """Forget one node's label (streaming evaluator: removed nodes)."""
        self._labels.pop(node_id, None)

    # -- per-site maintenance (used by the in-place batch applier) ----------

    def assign_run(self, parent_label, nodes, left_code, right_code):
        """Label a run of freshly inserted *attached* subtrees.

        ``nodes`` are consecutive unlabeled attributes and/or children of
        the element labeled ``parent_label``, already attached and with
        node ids assigned; their subtree boundaries receive codes strictly
        between ``left_code`` and ``right_code`` (both codes of existing
        neighbors inside the parent's interval, so containment holds by
        construction). This is the per-site counterpart of a whole-tree
        :meth:`sync` — the in-place applier calls it once per insertion
        site. Code generation runs on the interned representation and
        renders strings once at install time. Sibling pointers are *not*
        touched; callers finish the site with :meth:`repoint_children`.
        """
        slots = []
        base_level = parent_label.level + 1
        for node in nodes:
            _leveled_slots(node, base_level, slots)
        codes = self.encoder.codes_between_interned(
            intern_code(left_code), intern_code(right_code), len(slots))
        labels = self._labels
        open_code = {}
        for index, (node, which, level) in enumerate(slots):
            if which == 0:
                open_code[id(node)] = codes[index]
            else:
                start = code_str(open_code.pop(id(node)))
                end = code_str(codes[index])
                labels[node.node_id] = ExtendedLabel(
                    node_id=node.node_id,
                    node_type=node.node_type,
                    start=start,
                    end=end,
                    level=level,
                    parent_id=(node.parent.node_id
                               if node.parent is not None else None),
                )
                self._track(start, end)
        if open_code:
            raise LabelingError("unbalanced boundary sequence")

    def repoint_children(self, parent):
        """Recompute the sibling pointers of ``parent``'s direct children
        (one element's worth of :meth:`_refresh_pointers`, for sites whose
        child list an in-place batch changed)."""
        previous = None
        for child in parent.children:
            self._set_pointers(child, previous)
            previous = child
        if previous is not None:
            self._point(previous, right_sibling_id=None)


def _leveled_slots(root, base_level, slots):
    """Append ``root``'s boundary slots as ``(node, which, level)`` triples
    (document order, attribute boundaries right after the owner's start).
    ``base_level`` is the absolute level of ``root`` itself."""
    slots.append((root, 0, base_level))
    if root.is_element:
        for attr in root.attributes:
            slots.append((attr, 0, base_level + 1))
            slots.append((attr, 1, base_level + 1))
        for child in root.children:
            _leveled_slots(child, base_level + 1, slots)
    slots.append((root, 1, base_level))


def _boundary_slots(root):
    """The (node, 0=start / 1=end) boundary sequence of a subtree, in
    document order; attributes contribute both boundaries right after their
    owner's start."""
    slots = []

    def visit(node):
        slots.append((node, 0))
        if node.is_element:
            for attr in node.attributes:
                slots.append((attr, 0))
                slots.append((attr, 1))
            for child in node.children:
                visit(child)
        slots.append((node, 1))

    visit(root)
    return slots
