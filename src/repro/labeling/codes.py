"""Dynamic code encoders: CDBS and CDQS.

Both encoders produce strings over a digit alphabet, compared
lexicographically, with the *completely dynamic* property of [14]/[15]:
between any two existing codes (and before the first / after the last) a new
code can always be generated, without ever touching existing codes. This is
what makes the containment labeling update-tolerant.

* :class:`CDBSEncoder` — Compact Dynamic Binary String ([14]): binary
  digits, every code ends with ``1``, insertion via the published
  length-comparison rules.
* :class:`CDQSEncoder` — Compact Dynamic Quaternary String ([15]): base-4
  digits (two bits per digit on the wire), insertion via a midpoint search;
  codes are shorter at equal fan-out, trading slightly more work per digit.

Two representations coexist. The *string* form (``"1011"``) is canonical:
it is what labels store, what travels on the wire and in snapshots, and —
because single-character digits without trailing zeros compare as their
fractional values — ordering is a plain ``str`` comparison (a memcmp, the
fastest comparison CPython has; an int-tuple form would compare slower).
The *interned* form (``(1, 0, 1, 1)``, a tuple of digit ints) backs the
code *arithmetic*: midpoint search and neighbor construction work on
digits, and reconstructing them with ``int(code[index])`` on every call is
where the string form loses. ``intern_code``/``code_str`` convert, and the
encoders expose interned variants of every generator; string and interned
generators are defined to produce identical codes (the differential the
hypothesis suite pins).
"""

from __future__ import annotations

from repro.errors import LabelingError

#: digit characters, indexed by digit value (bases beyond 10 would need a
#: wider alphabet; both paper encoders use base <= 4)
_DIGITS = "0123456789"


def intern_code(code):
    """The interned (tuple-of-ints) form of a digit-string code.

    ``None`` (an open bound) interns to ``None``.
    """
    if code is None:
        return None
    return tuple(code if isinstance(code, tuple)
                 else (int(ch) for ch in code))


def code_str(interned):
    """Render an interned code back to its canonical string form."""
    if interned is None:
        return None
    if isinstance(interned, str):
        return interned
    return "".join(_DIGITS[d] for d in interned)


def code_between(left, right, base):
    """Return the shortest-ish code strictly between ``left`` and ``right``.

    Generic midpoint construction valid for any ``base >= 2``. ``left`` and
    ``right`` are digit strings (or ``None`` for an open end) compared
    lexicographically; results never end with the digit ``0`` so that
    further insertions after them stay possible.
    """
    top = base - 1
    if left is None and right is None:
        return "1"
    if left is None:
        return _before(right)
    if right is None:
        return _after(left, top)
    if not left < right:
        raise LabelingError(
            "cannot insert between {!r} and {!r}".format(left, right))
    # scan with zero-padding on the left code, since e.g. "1" and "1001"
    # agree on the first three (virtual) digits
    index = 0
    while True:
        if index >= len(right):
            raise LabelingError(
                "right code {!r} does not exceed left code {!r}".format(
                    right, left))
        a = int(left[index]) if index < len(left) else 0
        b = int(right[index])
        if a != b:
            break
        index += 1
    prefix = right[:index]
    if b - a >= 2:
        return prefix + str((a + b) // 2)
    # Adjacent digits: keep left's digit and make something bigger than
    # left's remainder.
    rest = left[index + 1:] if index < len(left) else ""
    return prefix + str(a) + _after(rest, top)


def _after(code, top):
    """A code strictly greater than ``code`` (open right end), not growing
    in length when the last digit can simply be bumped."""
    if not code:
        return "1"
    last = int(code[-1])
    if last < top:
        return code[:-1] + str(last + 1)
    return code + "1"


def _before(code):
    """A code strictly smaller than ``code`` (open left end)."""
    # Replace the final nonzero digit d with (d-1) and append "1" when the
    # result would end in 0 (codes must not end with 0).
    last = int(code[-1])
    if last >= 2:
        return code[:-1] + str(last - 1)
    # last == 1 -> prepend a 0 level: x...x1 -> x...x01
    return code[:-1] + "01"


# -- interned arithmetic ------------------------------------------------------
#
# Digit-for-digit mirrors of the string constructions above, operating on
# tuples of ints. No ``int(...)`` per digit, no string slicing: the hot
# incremental-fill path (labels for freshly inserted subtrees) runs here
# and converts to the canonical string form once, at install time.

def code_between_interned(left, right, base):
    """Interned-form :func:`code_between`; bounds and result are tuples."""
    top = base - 1
    if left is None and right is None:
        return (1,)
    if left is None:
        return _before_interned(right)
    if right is None:
        return _after_interned(left, top)
    if not left < right:
        raise LabelingError(
            "cannot insert between {!r} and {!r}".format(left, right))
    index = 0
    len_left = len(left)
    while True:
        if index >= len(right):
            raise LabelingError(
                "right code {!r} does not exceed left code {!r}".format(
                    right, left))
        a = left[index] if index < len_left else 0
        b = right[index]
        if a != b:
            break
        index += 1
    prefix = right[:index]
    if b - a >= 2:
        return prefix + ((a + b) // 2,)
    rest = left[index + 1:] if index < len_left else ()
    return prefix + (a,) + _after_interned(rest, top)


def _after_interned(code, top):
    """Interned-form :func:`_after`."""
    if not code:
        return (1,)
    last = code[-1]
    if last < top:
        return code[:-1] + (last + 1,)
    return code + (1,)


def _before_interned(code):
    """Interned-form :func:`_before`."""
    last = code[-1]
    if last >= 2:
        return code[:-1] + (last - 1,)
    return code[:-1] + (0, 1)


class _EncoderBase:
    """Shared behaviour of the two encoders."""

    #: digit base; subclasses override.
    base = 2

    def initial_codes(self, count):
        """Assign ``count`` codes in increasing order, balanced so code
        length grows logarithmically with ``count`` (bulk loading)."""
        codes = [None] * count

        def assign(lo, hi, left, right):
            if lo > hi:
                return
            mid = (lo + hi) // 2
            code = self.between(left, right)
            codes[mid] = code
            assign(lo, mid - 1, left, code)
            assign(mid + 1, hi, code, right)

        assign(0, count - 1, None, None)
        return codes

    def between(self, left, right):
        """A fresh code strictly between ``left`` and ``right``."""
        raise NotImplementedError

    def codes_between(self, left, right, count):
        """``count`` fresh increasing codes strictly between the bounds."""
        codes = [None] * count

        def assign(lo, hi, lo_code, hi_code):
            if lo > hi:
                return
            mid = (lo + hi) // 2
            code = self.between(lo_code, hi_code)
            codes[mid] = code
            assign(lo, mid - 1, lo_code, code)
            assign(mid + 1, hi, code, hi_code)

        assign(0, count - 1, left, right)
        return codes

    # -- interned variants ---------------------------------------------------

    def between_interned(self, left, right):
        """Interned-form :meth:`between` (bounds and result are tuples)."""
        raise NotImplementedError

    def codes_between_interned(self, left, right, count):
        """Interned-form :meth:`codes_between`: ``count`` increasing
        interned codes strictly between the interned bounds. Produces the
        same code sequence as the string variant (the property the
        hypothesis differential pins)."""
        codes = [None] * count
        between = self.between_interned

        def assign(lo, hi, lo_code, hi_code):
            if lo > hi:
                return
            mid = (lo + hi) // 2
            code = between(lo_code, hi_code)
            codes[mid] = code
            assign(lo, mid - 1, lo_code, code)
            assign(mid + 1, hi, code, hi_code)

        assign(0, count - 1, left, right)
        return codes

    def initial_codes_interned(self, count):
        """Interned-form :meth:`initial_codes`."""
        return self.codes_between_interned(None, None, count)


class CDBSEncoder(_EncoderBase):
    """Compact Dynamic Binary String encoder ([14]).

    Codes are binary strings ending in ``1``. Insertion between adjacent
    codes follows the published CDBS rules:

    * ``between(L, R)`` with ``len(L) >= len(R)`` -> ``L + "1"``;
    * ``between(L, R)`` with ``len(L) <  len(R)`` -> ``R[:-1] + "01"``;
    * open left end -> ``R[:-1] + "01"``; open right end -> ``L + "1"``.
    """

    base = 2

    def between(self, left, right):
        if left is None and right is None:
            return "1"
        if left is None:
            return right[:-1] + "01"
        if right is None:
            return left + "1"
        if not left < right:
            raise LabelingError(
                "cannot insert between {!r} and {!r}".format(left, right))
        if len(left) >= len(right):
            return left + "1"
        return right[:-1] + "01"

    def between_interned(self, left, right):
        if left is None and right is None:
            return (1,)
        if left is None:
            return right[:-1] + (0, 1)
        if right is None:
            return left + (1,)
        if not left < right:
            raise LabelingError(
                "cannot insert between {!r} and {!r}".format(left, right))
        if len(left) >= len(right):
            return left + (1,)
        return right[:-1] + (0, 1)


class CDQSEncoder(_EncoderBase):
    """Compact Dynamic Quaternary String encoder ([15]).

    Base-4 digit strings; the VLDB-J paper encodes each digit on two bits,
    yielding codes roughly half the length of CDBS for the same positions.
    Insertion uses the generic midpoint construction.
    """

    base = 4

    def between(self, left, right):
        return code_between(left, right, self.base)

    def between_interned(self, left, right):
        return code_between_interned(left, right, self.base)
