"""Pending Update Lists: the update primitives of the XQuery Update
Facility (Table 2), PUL containers (Definitions 3–5), their five-stage
semantics and obtainable-document sets (Definition 2 and Example 3), the
equivalence/substitutability relations (Definition 6), and the XML exchange
format for shipping PULs between producers and executors (Section 4).
"""

from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    OpClass,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
    UpdateOperation,
)
from repro.pul.pul import PUL, merge
from repro.pul.semantics import apply_pul, apply_operation, obtainable_set
from repro.pul.equivalence import (
    equivalent,
    equivalent_by_canonical,
    substitutable,
    obtainable_strings,
)
from repro.pul.serialize import pul_to_xml, pul_from_xml
from repro.pul.inverse import invert_pul

__all__ = [
    "UpdateOperation", "OpClass",
    "InsertBefore", "InsertAfter", "InsertIntoAsFirst", "InsertIntoAsLast",
    "InsertInto", "InsertAttributes", "Delete", "ReplaceNode",
    "ReplaceValue", "ReplaceChildren", "Rename",
    "PUL", "merge",
    "apply_pul", "apply_operation", "obtainable_set",
    "equivalent", "equivalent_by_canonical", "substitutable",
    "obtainable_strings",
    "pul_to_xml", "pul_from_xml",
    "invert_pul",
]
