"""The update primitives of Table 2.

Each primitive targets a single node, identified by its id, and carries a
parameter: a list of trees ``P``, a value ``s`` or a name ``l``. Static
(parameter-shape) conditions are enforced at construction; the dynamic
conditions involving the target's type are checked against a document by
:meth:`UpdateOperation.applicability_errors` (Definition 1).

The operation classes are ``i`` (all insertion variants), ``d`` (delete)
and ``r`` (all replacements, including rename) — ``c(op)`` in the paper.

Extension (flagged): the XQUF restricts ``repC`` parameters to nothing or a
single text node. ``ReplaceChildren`` accepts arbitrary trees when
``strict=False``, which is what makes the ``repC``+insert aggregation case
(deferred by the paper to its extended version) expressible — see
DESIGN.md.
"""

from __future__ import annotations

import enum

from repro.errors import InvalidOperationError, NotApplicableError
from repro.xdm.compare import canonical_string
from repro.xdm.node import Node
from repro.xdm.serializer import serialize_forest


class OpClass(enum.Enum):
    """``c(op)``: the three operation classes."""

    INSERT = "i"
    DELETE = "d"
    REPLACE = "r"

    def __str__(self):
        return self.value


def _check_trees(trees, what):
    checked = []
    for tree in trees:
        if isinstance(tree, str):
            raise InvalidOperationError(
                "{} parameter must contain nodes, got a string; "
                "parse it first".format(what))
        if not isinstance(tree, Node):
            raise InvalidOperationError(
                "{} parameter must contain nodes".format(what))
        if tree.parent is not None:
            raise InvalidOperationError(
                "{} parameter trees must be detached".format(what))
        checked.append(tree)
    return tuple(checked)


class UpdateOperation:
    """Base class of the eleven primitives.

    Subclasses define ``op_name`` (stable wire name), ``symbol`` (the
    paper's notation, for messages), ``op_class`` and ``stage`` (the
    application stage, 1–5, of Section 2.2).
    """

    op_name = None
    symbol = None
    op_class = None
    stage = None

    #: whether the parameter is a list of trees
    has_trees = False

    def __init__(self, target):
        if not isinstance(target, int):
            raise InvalidOperationError(
                "operation target must be a node id (int), got {!r}"
                .format(target))
        self.target = target

    # -- accessors mirroring the paper's t(op), o(op), p(op), c(op) --------

    @property
    def trees(self):
        """The parameter trees ``P`` (empty for non-tree operations)."""
        return ()

    def parameter(self):
        """``p(op)``: the second parameter (``None`` for del)."""
        return None

    # -- applicability ------------------------------------------------------

    def applicability_errors(self, document):
        """Conditions of Table 2 against ``document``; empty list = applicable."""
        node = document.find(self.target)
        if node is None:
            return ["target {} not in document".format(self.target)]
        return self._conditions(node)

    def is_applicable(self, document):
        return not self.applicability_errors(document)

    def require_applicable(self, document):
        errors = self.applicability_errors(document)
        if errors:
            raise NotApplicableError(
                "{} not applicable: {}".format(
                    self.describe(), "; ".join(errors)))

    def _conditions(self, node):
        return []

    # -- identity -----------------------------------------------------------

    def param_key(self):
        """Serialization of the parameter, for the lexicographic order
        ``<lex`` used by the canonical form (Definition 9)."""
        return ""

    def sort_key(self):
        """Stable total order on operations (name, target, parameter)."""
        return (self.op_name, self.target, self.param_key())

    def describe(self):
        """Human-readable rendering in the paper's notation."""
        param = self.param_key()
        if param:
            return "{}({}, {})".format(self.symbol, self.target, param)
        return "{}({})".format(self.symbol, self.target)

    def copy(self):
        """Deep copy (parameter trees are duplicated)."""
        raise NotImplementedError

    def __eq__(self, other):
        if not isinstance(other, UpdateOperation):
            return NotImplemented
        return (self.op_name == other.op_name
                and self.target == other.target
                and self._param_canonical() == other._param_canonical())

    def __hash__(self):
        return hash((self.op_name, self.target, self._param_canonical()))

    def _param_canonical(self):
        return self.param_key()

    def __repr__(self):
        return self.describe()


class _TreeParameterOperation(UpdateOperation):
    """Shared behaviour of operations parameterized by a list of trees."""

    has_trees = True
    #: constraint on the roots of the parameter trees:
    #: "non-attribute", "attribute", "uniform" (repN) or None
    root_constraint = None
    #: whether an empty parameter list is allowed
    allow_empty = True

    def __init__(self, target, trees):
        super().__init__(target)
        trees = _check_trees(trees, self.op_name)
        if not trees and not self.allow_empty:
            raise InvalidOperationError(
                "{} requires at least one tree".format(self.op_name))
        self._validate_roots(trees)
        self._trees = trees

    def _validate_roots(self, trees):
        if self.root_constraint == "non-attribute":
            if any(t.is_attribute for t in trees):
                raise InvalidOperationError(
                    "{} parameter roots must not be attributes"
                    .format(self.op_name))
        elif self.root_constraint == "attribute":
            if any(not t.is_attribute for t in trees):
                raise InvalidOperationError(
                    "{} parameter roots must be attributes"
                    .format(self.op_name))
        elif self.root_constraint == "uniform":
            kinds = {t.is_attribute for t in trees}
            if len(kinds) > 1:
                raise InvalidOperationError(
                    "{} parameter roots must be all attributes or all "
                    "non-attributes".format(self.op_name))

    @property
    def trees(self):
        return self._trees

    def parameter(self):
        return self._trees

    def param_key(self):
        return serialize_forest(self._trees)

    def _param_canonical(self):
        return "".join(canonical_string(t) for t in self._trees)

    def copy(self):
        return type(self)(self.target, [t.deep_copy() for t in self._trees])

    def with_trees(self, trees):
        """Same operation with a different parameter (used by reduction and
        aggregation when collapsing operations)."""
        return type(self)(self.target, trees)

    def inserts_attributes(self):
        """Whether the parameter roots are attribute nodes."""
        return bool(self._trees) and self._trees[0].is_attribute


# -- insertions --------------------------------------------------------------


class InsertBefore(_TreeParameterOperation):
    """``ins<-(v, P)``: insert the trees in P before node v."""

    op_name = "insertBefore"
    symbol = "ins←"
    op_class = OpClass.INSERT
    stage = 2
    root_constraint = "non-attribute"
    allow_empty = False

    def _conditions(self, node):
        errors = []
        if node.is_attribute:
            errors.append("target must not be an attribute")
        if node.parent is None:
            errors.append("target must have a parent")
        return errors


class InsertAfter(InsertBefore):
    """``ins->(v, P)``: insert the trees in P after node v."""

    op_name = "insertAfter"
    symbol = "ins→"


class InsertIntoAsFirst(_TreeParameterOperation):
    """``ins_first(v, P)``: insert the trees in P as first children of v."""

    op_name = "insertIntoAsFirst"
    symbol = "ins↙"
    op_class = OpClass.INSERT
    stage = 2
    root_constraint = "non-attribute"
    allow_empty = False

    def _conditions(self, node):
        if not node.is_element:
            return ["target must be an element"]
        return []


class InsertIntoAsLast(InsertIntoAsFirst):
    """``ins_last(v, P)``: insert the trees in P as last children of v."""

    op_name = "insertIntoAsLast"
    symbol = "ins↘"


class InsertInto(InsertIntoAsFirst):
    """``ins_into(v, P)``: insert the trees in P as children of v at an
    implementation-defined position — the source of non-determinism
    (Definition 2)."""

    op_name = "insertInto"
    symbol = "ins↓"
    stage = 1


class InsertAttributes(_TreeParameterOperation):
    """``insA(v, P)``: insert the trees in P as attributes of v."""

    op_name = "insertAttributes"
    symbol = "insA"
    op_class = OpClass.INSERT
    stage = 1
    root_constraint = "attribute"
    allow_empty = False

    def _conditions(self, node):
        if not node.is_element:
            return ["target must be an element"]
        return []

    def attribute_names(self):
        """Names of the inserted attributes (conflict type 2 detection)."""
        return [tree.name for tree in self._trees]


# -- deletion -----------------------------------------------------------------


class Delete(UpdateOperation):
    """``del(v)``: delete node v."""

    op_name = "delete"
    symbol = "del"
    op_class = OpClass.DELETE
    stage = 5

    def copy(self):
        return Delete(self.target)


# -- replacements -------------------------------------------------------------


class ReplaceNode(_TreeParameterOperation):
    """``repN(v, P)``: replace node v with the trees in P (possibly none).

    ``repN(v, [])`` is equivalent to ``del(v)`` (footnote 3 of the paper);
    :meth:`repro.pul.pul.PUL.normalized` performs that rewriting.
    """

    op_name = "replaceNode"
    symbol = "repN"
    op_class = OpClass.REPLACE
    stage = 3
    root_constraint = "uniform"
    allow_empty = True

    def _conditions(self, node):
        errors = []
        if node.parent is None:
            errors.append("target must have a parent")
        for tree in self._trees:
            same_kind = (tree.is_attribute and node.is_attribute) or \
                (not tree.is_attribute and not node.is_attribute)
            if not same_kind:
                errors.append(
                    "replacement trees must match the target kind")
                break
        return errors

    def is_empty(self):
        return not self._trees


class ReplaceValue(UpdateOperation):
    """``repV(v, s)``: replace the value of text/attribute node v with s."""

    op_name = "replaceValue"
    symbol = "repV"
    op_class = OpClass.REPLACE
    stage = 1

    def __init__(self, target, value):
        super().__init__(target)
        if not isinstance(value, str):
            raise InvalidOperationError("repV value must be a string")
        self.value = value

    def parameter(self):
        return self.value

    def param_key(self):
        return self.value

    def _conditions(self, node):
        if node.is_element:
            return ["target must be a text or attribute node"]
        return []

    def copy(self):
        return ReplaceValue(self.target, self.value)


class ReplaceChildren(_TreeParameterOperation):
    """``repC(v, t)``: replace the children of element v with text node t,
    or with nothing.

    In strict XQUF mode the parameter is ``[]`` or a single text node; with
    ``strict=False`` arbitrary non-attribute trees are accepted (library
    extension, see module docstring).
    """

    op_name = "replaceChildren"
    symbol = "repC"
    op_class = OpClass.REPLACE
    stage = 4
    root_constraint = "non-attribute"
    allow_empty = True

    def __init__(self, target, trees, strict=True):
        if isinstance(trees, str):
            trees = [Node.text(trees)] if trees else []
        super().__init__(target, trees)
        if strict:
            if len(self._trees) > 1 or \
                    (self._trees and not self._trees[0].is_text):
                raise InvalidOperationError(
                    "strict repC takes nothing or a single text node")
        self.strict = strict

    def _conditions(self, node):
        if not node.is_element:
            return ["target must be an element"]
        return []

    def copy(self):
        return ReplaceChildren(
            self.target, [t.deep_copy() for t in self._trees],
            strict=self.strict)

    def with_trees(self, trees):
        return ReplaceChildren(self.target, trees, strict=False)


class Rename(UpdateOperation):
    """``ren(v, l)``: rename element/attribute node v to l."""

    op_name = "rename"
    symbol = "ren"
    op_class = OpClass.REPLACE
    stage = 1

    def __init__(self, target, name):
        super().__init__(target)
        if not isinstance(name, str) or not name:
            raise InvalidOperationError("ren name must be a nonempty string")
        self.name = name

    def parameter(self):
        return self.name

    def param_key(self):
        return self.name

    def _conditions(self, node):
        if node.is_text:
            return ["target must be an element or attribute node"]
        return []

    def copy(self):
        return Rename(self.target, self.name)


#: wire-name -> class registry (used by the PUL deserializer)
OPERATION_TYPES = {
    cls.op_name: cls for cls in (
        InsertBefore, InsertAfter, InsertIntoAsFirst, InsertIntoAsLast,
        InsertInto, InsertAttributes, Delete, ReplaceNode, ReplaceValue,
        ReplaceChildren, Rename,
    )
}

#: the insertion variants anchored at a *sibling* position
SIBLING_INSERTS = (InsertBefore, InsertAfter)
#: the insertion variants anchored *inside* the target element
CHILD_INSERTS = (InsertIntoAsFirst, InsertIntoAsLast, InsertInto)


def compatible(op1, op2):
    """Definition 3: ``op1``/``op2`` are compatible unless they share the
    target and the name and are replacements."""
    return not (op1.target == op2.target
                and op1.op_name == op2.op_name
                and op1.op_class is OpClass.REPLACE)


def is_insert(op):
    return op.op_class is OpClass.INSERT


def same_insert_kind(op1, op2):
    """Same insertion variant on the same target (the groups whose relative
    order is not fixed by the semantics)."""
    return (is_insert(op1) and op1.op_name == op2.op_name
            and op1.target == op2.target)
