"""PUL equivalence and substitutability (Definition 6).

``∆1 ≃_D ∆2``  iff  ``O(∆1, D) = O(∆2, D)``
``∆1 ⊑_D ∆2``  iff  ``O(∆1, D) ⊆ O(∆2, D)``

Both are decided by enumerating the obtainable sets, which is exact (and
exponential in the worst case — these functions are reasoning/testing
oracles, not part of the O(k log k) operational algorithms).

Comparison is value-based on documents: new nodes carry no identity before
application, matching the paper's Example 4 where ``repV`` on an existing
text node and ``repC`` installing a fresh text node with the same value
yield *equivalent* PULs.
"""

from __future__ import annotations

from repro.pul.semantics import obtainable_set


def obtainable_strings(document, pul, limit=20000, with_ids=False,
                       preserve_ids=False):
    """The canonical strings of ``O(pul, document)`` as a set."""
    return set(obtainable_set(document, pul, limit=limit,
                              with_ids=with_ids,
                              preserve_ids=preserve_ids).keys())


def equivalent(pul1, pul2, document, limit=20000, with_ids=False):
    """``pul1 ≃_document pul2``."""
    set1 = obtainable_strings(document, pul1, limit=limit, with_ids=with_ids)
    set2 = obtainable_strings(document, pul2, limit=limit, with_ids=with_ids)
    return set1 == set2


def substitutable(pul1, pul2, document, limit=20000, with_ids=False):
    """``pul1 ⊑_document pul2``: every outcome of ``pul1`` is an outcome of
    ``pul2`` (so ``pul1`` may stand in for ``pul2``)."""
    set1 = obtainable_strings(document, pul1, limit=limit, with_ids=with_ids)
    set2 = obtainable_strings(document, pul2, limit=limit, with_ids=with_ids)
    return set1 <= set2


def equivalent_by_canonical(pul1, pul2, structure=None):
    """Sufficient syntactic test for equivalence: equal canonical forms
    (Definition 9) imply equal obtainable sets on any document both PULs
    are applicable on.

    This is the executor-friendly check the paper motivates the canonical
    form with — it needs only the labels the PULs carry, never the
    document, and runs in O(k log k) instead of enumerating outcomes.
    ``False`` means "not syntactically identical", NOT "inequivalent":
    semantically equal PULs of different shapes (Example 4) need the exact
    :func:`equivalent` oracle.
    """
    from repro.reduction import canonical_form

    first = canonical_form(pul1, structure if structure is not None
                           else pul1)
    second = canonical_form(pul2, structure if structure is not None
                            else pul2)
    return first == second


def sequential_obtainable_strings(document, puls, limit=20000,
                                  with_ids=False, preserve_ids=False):
    """Canonical strings of ``O(∆1; ...; ∆n, D)`` — the obtainable set of a
    *sequence* of PULs, each applied to every outcome of the previous ones
    (Section 2.2: ``O(∆1;∆2, D) = O(∆2, O(∆1, D))``)."""
    current = {None: document}
    keys = set()
    for index, pul in enumerate(puls):
        last = index == len(puls) - 1
        following = {}
        for doc in current.values():
            outcomes = obtainable_set(doc, pul, limit=limit,
                                      with_ids=with_ids,
                                      preserve_ids=preserve_ids)
            if last:
                keys.update(outcomes.keys())
            else:
                following.update(outcomes)
            if len(following) > limit or len(keys) > limit:
                raise RuntimeError("sequential enumeration exceeded limit")
        current = following
    if not puls:
        from repro.xdm.compare import canonical_string
        keys = {canonical_string(document.root, with_ids=with_ids)
                if document.root is not None else ""}
    return keys
