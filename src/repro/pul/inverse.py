"""PUL inversion (the paper's Section 6 future work).

    "Another interesting topic we will consider as future work is the
    study of PUL inversion, but this requires either the extension of the
    PUL production algorithm or the access to the document the PUL refers
    to."

This module takes the second route: given the document a PUL refers to,
:func:`invert_pul` produces the PUL that undoes it. Undo information is
captured *before* application (the removed subtrees, the old values and
names); inserted nodes' identifiers are pinned ahead of application so the
inverse can delete exactly them.

The input PUL is first deterministically reduced (Definition 8): reduction
removes operations overridden inside removed subtrees — whose individual
inverses would target nodes absent from the updated document — and fixes
the ``ins↓`` placement, making the forward semantics deterministic.
Adjacent deleted siblings are restored by a single insertion anchored at
the nearest *surviving* left sibling (or as first children), so their
relative order comes back exactly.

Guarantee (checked by the test suite): with ``forward, inverse =
invert_pul(pul, document)``, applying ``forward`` then ``inverse`` (both
with ``preserve_ids=True``) restores a document value-equal to the
original, with every surviving original node keeping its identity.
"""

from __future__ import annotations

from repro.errors import NotApplicableError
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL

_INSERT_NAMES = frozenset({
    InsertInto.op_name, InsertIntoAsFirst.op_name,
    InsertIntoAsLast.op_name, InsertBefore.op_name, InsertAfter.op_name,
    InsertAttributes.op_name,
})


class _IdPinner:
    """Assigns the identifiers the evaluator *will* assign, ahead of time.

    The deterministic evaluator gives fresh ids to new nodes in final-
    document order; pinning them explicitly (producer-style) keeps the
    inverse's targets valid without a post-application diff.
    """

    def __init__(self, document):
        self.next_id = document.allocator.next_value

    def pin(self, trees):
        pinned = []
        for tree in trees:
            copy = tree.deep_copy(keep_ids=True)
            for node in copy.iter_subtree():
                if node.node_id is None:
                    node.node_id = self.next_id
                    self.next_id += 1
            pinned.append(copy)
        return pinned


def _deleted_sibling_runs(document, delete_targets):
    """Group deleted non-attribute nodes into runs of adjacent siblings;
    returns ``[(parent, anchor_or_None, [nodes...]), ...]`` where
    ``anchor`` is the nearest left sibling surviving the forward PUL."""
    by_parent = {}
    for target_id in delete_targets:
        node = document.get(target_id)
        if node.is_attribute or node.parent is None:
            continue
        by_parent.setdefault(id(node.parent), (node.parent, set()))[1].add(
            target_id)
    runs = []
    for parent, removed in by_parent.values():
        current = None
        for child in parent.children:
            if child.node_id in removed:
                if current is None:
                    index = parent.children.index(child)
                    anchor = None
                    if index > 0:
                        anchor = parent.children[index - 1]
                    current = (parent, anchor, [])
                    runs.append(current)
                current[2].append(child)
            else:
                current = None
    return runs


def invert_pul(pul, document):
    """Build ``(forward, inverse)``: the deterministic reduction of
    ``pul`` with pinned new-node identifiers, and the PUL undoing it.

    Apply both with ``preserve_ids=True``::

        forward, inverse = invert_pul(pul, document)
        apply_pul(document, forward, preserve_ids=True)
        apply_pul(document, inverse, preserve_ids=True)   # back to start

    Raises :class:`NotApplicableError` when ``pul`` is not applicable on
    ``document`` or deletes the document root (nothing to anchor the
    restore at).
    """
    from repro.reasoning import DocumentOracle
    from repro.reduction import reduce_deterministic

    pul.require_applicable(document)
    reduced = reduce_deterministic(
        pul.normalized(), DocumentOracle(document))
    pinner = _IdPinner(document)
    forward_ops = []
    inverse_ops = []
    delete_targets = []
    replaced_anchor = {}  # deleted-or-replaced left neighbor -> new anchor

    for op in reduced:
        target = document.get(op.target)
        name = op.op_name

        if name in _INSERT_NAMES:
            pinned = pinner.pin(op.trees)
            forward_ops.append(op.with_trees(pinned))
            inverse_ops.extend(Delete(tree.node_id) for tree in pinned)

        elif name == Delete.op_name:
            forward_ops.append(op)
            if target.is_attribute:
                inverse_ops.append(InsertAttributes(
                    target.parent.node_id,
                    [target.deep_copy(keep_ids=True)]))
            elif target.parent is None:
                raise NotApplicableError(
                    "cannot invert the deletion of the document root")
            else:
                delete_targets.append(op.target)  # restored run-wise below

        elif name == ReplaceNode.op_name:
            pinned = pinner.pin(op.trees)
            forward_ops.append(op.with_trees(pinned))
            restore = [target.deep_copy(keep_ids=True)]
            # nonempty after normalization: an empty repN became a del
            inverse_ops.append(ReplaceNode(pinned[0].node_id, restore))
            inverse_ops.extend(Delete(tree.node_id)
                               for tree in pinned[1:])
            replaced_anchor[op.target] = pinned[0].node_id

        elif name == ReplaceValue.op_name:
            forward_ops.append(op)
            inverse_ops.append(ReplaceValue(op.target, target.value))

        elif name == ReplaceChildren.op_name:
            pinned = pinner.pin(op.trees)
            forward_ops.append(
                ReplaceChildren(op.target, pinned, strict=False))
            restore = [child.deep_copy(keep_ids=True)
                       for child in target.children]
            inverse_ops.append(
                ReplaceChildren(op.target, restore, strict=False))

        elif name == Rename.op_name:
            forward_ops.append(op)
            inverse_ops.append(Rename(op.target, target.name))

        else:  # pragma: no cover - the primitive set is closed
            raise NotApplicableError(
                "cannot invert operation {!r}".format(op))

    for parent, anchor, nodes in _deleted_sibling_runs(document,
                                                       delete_targets):
        copies = [node.deep_copy(keep_ids=True) for node in nodes]
        if anchor is None:
            inverse_ops.append(InsertIntoAsFirst(parent.node_id, copies))
        else:
            # a replaced anchor is gone after the forward PUL; its first
            # replacement tree occupies the position instead
            anchor_id = replaced_anchor.get(anchor.node_id,
                                            anchor.node_id)
            inverse_ops.append(InsertAfter(anchor_id, copies))

    forward = PUL(forward_ops, labels=pul.labels, origin=pul.origin)
    inverse = PUL(inverse_ops, origin=pul.origin)
    return forward, inverse
