"""PUL application semantics (Section 2.2).

The judgement ``D |= ∆ ~> D'`` is realized by applying the operations in
five stages, which encode the precedence prescribed by the XQuery Update
Facility:

1. ``ins↓``, ``insA``, ``repV``, ``ren``
2. ``ins←``, ``ins→``, ``ins↙``, ``ins↘``
3. ``repN``
4. ``repC``
5. ``del``

Within a stage the order is not prescribed; the observable nondeterminism
is (a) the placement of ``ins↓`` blocks and (b) the relative order of the
inserted groups of multiple same-variant insertions on the same target.
:func:`apply_pul` resolves both deterministically (``ins↓`` as-first,
groups in PUL order); :func:`obtainable_set` enumerates every outcome —
the set ``O(∆, D)`` of Definition 2 / Example 3.

Operations are applied *by node object*: targets are resolved before any
mutation, so an operation whose target was meanwhile detached (e.g. by a
replacement higher up) still executes, but on an invisible tree — exactly
the "overridden operation" behaviour the reduction rules exploit.
"""

from __future__ import annotations

from repro.errors import NotApplicableError
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.xdm.compare import canonical_string
from repro.xdm.document import Document, IdAllocator

#: stage -> the op stage attribute is defined on the classes themselves
STAGES = (1, 2, 3, 4, 5)


class Scope:
    """Mutable holder of the forest being updated.

    Holds one tree for whole-document application, or the parameter forest
    of an operation when aggregation applies a PUL *inside* another
    operation's parameter (rule D6).
    """

    def __init__(self, roots):
        self.roots = list(roots)

    def replace_top(self, node, trees):
        index = self.roots.index(node)
        self.roots[index:index + 1] = trees

    def contains_top(self, node):
        return any(root is node for root in self.roots)


def _detach(scope, node):
    if node.parent is None:
        if scope.contains_top(node):
            scope.replace_top(node, [])
    else:
        node.detach()


def _insert_siblings(scope, anchor, trees, after):
    parent = anchor.parent
    if parent is None:
        index = scope.roots.index(anchor) + (1 if after else 0)
        scope.roots[index:index] = trees
        for tree in trees:
            tree.parent = None
        return
    index = parent.children.index(anchor) + (1 if after else 0)
    for offset, tree in enumerate(trees):
        parent.insert_child(index + offset, tree)


def apply_to_node(scope, node, op, gap=None, preserve_ids=False):
    """Apply ``op`` to its resolved target ``node`` within ``scope``.

    ``gap`` selects the children gap for ``ins↓`` (``None`` = as first).
    Parameter trees are deep-copied, so operations stay reusable;
    ``preserve_ids`` keeps the identifiers carried by the parameter trees
    (aggregation needs them — later PULs refer to those nodes).

    Dispatch is on the operation's wire name: the insertion variants are
    subclasses of each other, so ``isinstance`` chains would misroute.
    """
    trees = [t.deep_copy(keep_ids=preserve_ids) for t in op.trees]
    kind = op.op_name
    if kind == InsertInto.op_name:
        index = 0 if gap is None else gap
        for offset, tree in enumerate(trees):
            node.insert_child(index + offset, tree)
    elif kind == InsertAttributes.op_name:
        for tree in trees:
            node.append_attribute(tree)
    elif kind == ReplaceValue.op_name:
        node.value = op.value
    elif kind == Rename.op_name:
        node.name = op.name
    elif kind == InsertBefore.op_name:
        _insert_siblings(scope, node, trees, after=False)
    elif kind == InsertAfter.op_name:
        _insert_siblings(scope, node, trees, after=True)
    elif kind == InsertIntoAsFirst.op_name:
        for offset, tree in enumerate(trees):
            node.insert_child(offset, tree)
    elif kind == InsertIntoAsLast.op_name:
        for tree in trees:
            node.append_child(tree)
    elif kind == ReplaceNode.op_name:
        parent = node.parent
        if parent is None:
            scope.replace_top(node, trees)
        elif node.is_attribute:
            position = parent.attributes.index(node)
            node.detach()
            for offset, tree in enumerate(trees):
                tree.parent = parent
                parent.attributes.insert(position + offset, tree)
        else:
            position = parent.children.index(node)
            node.detach()
            for offset, tree in enumerate(trees):
                parent.insert_child(position + offset, tree)
    elif kind == ReplaceChildren.op_name:
        for child in list(node.children):
            child.detach()
        for tree in trees:
            node.append_child(tree)
    elif kind == Delete.op_name:
        _detach(scope, node)
    else:
        raise NotApplicableError(
            "unknown operation: {!r}".format(op))


def _staged(pul):
    """Operations of ``pul`` grouped by stage, PUL order preserved."""
    stages = {stage: [] for stage in STAGES}
    for op in pul:
        stages[op.stage].append(op)
    return stages


def _attribute_checked_elements(pul, targets):
    """The elements whose attribute sets ``pul`` modifies — ``insA``
    targets plus the owners of renamed or replaced attributes. Resolved
    before application (a replaced attribute loses its parent pointer)."""
    elements = {}
    for op in pul:
        node = targets[op.target]
        if node is None:
            continue
        if isinstance(op, InsertAttributes):
            elements[id(node)] = node
        elif isinstance(op, (Rename, ReplaceNode)) and node.is_attribute \
                and node.parent is not None:
            elements[id(node.parent)] = node.parent
    return list(elements.values())


def _check_attribute_uniqueness(elements, root):
    """The XQUF dynamic error on duplicate attribute names (the error
    integration's conflict type 2 guards against), checked on every
    element whose attribute set the PUL modified and that is still part
    of the result — matching the streaming evaluator exactly."""
    for element in elements:
        node = element
        while node.parent is not None:
            node = node.parent
        if node is not root:
            continue  # detached by a replacement/deletion higher up
        names = [attr.name for attr in element.attributes]
        if len(names) != len(set(names)):
            raise NotApplicableError(
                "duplicate attribute on element {}: {}".format(
                    element.node_id, sorted(names)))


def apply_pul(document, pul, check=True, preserve_ids=False,
              reindex=True):
    """Apply ``pul`` to ``document`` in place, deterministically.

    ``ins↓`` inserts as first (the stage-10 deterministic choice of
    Definition 8); same-variant groups apply in PUL order. New nodes get
    fresh identifiers in document order (via
    :meth:`~repro.xdm.document.Document.rebuild_index`), unless
    ``preserve_ids`` keeps identifiers already present in the parameter
    trees (the producer-assigned ids of the aggregation scenario).
    ``reindex=False`` skips the index rebuild entirely — the caller takes
    over id assignment and index maintenance (the in-place batch applier
    does it incrementally, reproducing the same document-order fresh-id
    assignment).
    """
    if check:
        pul.require_applicable(document)
    targets = {op.target: document.get(op.target) for op in pul}
    checked = _attribute_checked_elements(pul, targets)
    scope = Scope([document.root])
    stages = _staged(pul)
    for stage in STAGES:
        for op in stages[stage]:
            apply_to_node(scope, targets[op.target], op,
                          preserve_ids=preserve_ids)
    document.root = scope.roots[0] if scope.roots else None
    _check_attribute_uniqueness(checked, document.root)
    if reindex:
        document.rebuild_index()
    return document


def apply_operation(document, op, gap=None, check=True, preserve_ids=False):
    """Apply a single operation to ``document`` in place."""
    if check:
        op.require_applicable(document)
    scope = Scope([document.root])
    apply_to_node(scope, document.get(op.target), op, gap=gap,
                  preserve_ids=preserve_ids)
    document.root = scope.roots[0] if scope.roots else None
    document.rebuild_index()
    return document


def apply_to_forest(roots, operations, preserve_ids=True):
    """Apply ``operations`` (five-stage order) to a detached forest whose
    nodes carry ids; returns the resulting list of top-level trees.

    This is the fragment-level application used by aggregation rule D6,
    where a later PUL updates nodes *inside the parameter* of an earlier
    operation. Parameter identifiers are preserved by default so that
    still-later PULs can keep referring to them.
    """
    index = {}
    for root in roots:
        for node in root.iter_subtree():
            if node.node_id is not None:
                index[node.node_id] = node
    scope = Scope(roots)
    stages = {stage: [] for stage in STAGES}
    for op in operations:
        stages[op.stage].append(op)
    for stage in STAGES:
        for op in stages[stage]:
            node = index.get(op.target)
            if node is None:
                raise NotApplicableError(
                    "target {} not found in fragment".format(op.target))
            apply_to_node(scope, node, op, preserve_ids=preserve_ids)
    return scope.roots


# -- obtainable documents -----------------------------------------------------


class ObtainableLimitExceeded(NotApplicableError):
    """Raised when O(∆, D) enumeration exceeds the requested cap."""


def _choice_groups(pul):
    """Split the PUL into an ordered list of same-stage groups; each group
    gathers the operations sharing (variant, target), the unit whose
    internal order is nondeterministic."""
    stages = _staged(pul)
    groups = []
    for stage in STAGES:
        seen = {}
        for op in stages[stage]:
            key = (op.op_name, op.target)
            if key in seen:
                groups[seen[key]].append(op)
            else:
                seen[key] = len(groups)
                groups.append([op])
    return groups


def _branching(group):
    head = group[0]
    if isinstance(head, InsertInto):
        return True
    return len(group) > 1 and head.op_class.value == "i" and \
        not isinstance(head, InsertAttributes)


def _copy_forest_state(roots):
    new_roots = [root.deep_copy(keep_ids=True) for root in roots]
    index = {}
    for root in new_roots:
        for node in root.iter_subtree():
            if node.node_id is not None:
                index[node.node_id] = node
    return new_roots, index


def obtainable_set(document, pul, limit=20000, with_ids=False, check=True,
                   preserve_ids=False):
    """Enumerate ``O(∆, D)``: every document obtainable by applying ``pul``
    to ``document`` (Definition 2 extended to PULs).

    Returns a dict mapping the canonical string of each distinct outcome to
    one representative :class:`Document`. Comparison is value-based (new
    nodes carry no identity until applied); pass ``with_ids=True`` to make
    original-node identity significant.

    ``preserve_ids`` keeps producer-assigned identifiers on parameter
    trees (pass it together with ``with_ids`` for identity-sensitive
    comparisons).

    Raises :class:`ObtainableLimitExceeded` past ``limit`` outcomes
    explored.
    """
    if check:
        pul.require_applicable(document)
    groups = _choice_groups(pul)
    results = {}
    # outcome documents continue the source allocator, so identifiers of
    # removed nodes are never resurrected (the never-reused discipline)
    id_floor = document.allocator.next_value

    def finish(scope):
        if len(results) >= limit:
            raise ObtainableLimitExceeded(
                "more than {} obtainable documents".format(limit))
        if scope.roots:
            doc = Document(allocator=IdAllocator(start=id_floor))
            doc.root = scope.roots[0]
            doc.rebuild_index()
            key = canonical_string(doc.root, with_ids=with_ids)
        else:
            doc = Document(allocator=IdAllocator(start=id_floor))
            key = ""
        results.setdefault(key, doc)

    def explore(scope, index, group_number, remaining):
        if remaining is None:
            if group_number == len(groups):
                finish(scope)
                return
            group = groups[group_number]
            if not _branching(group):
                for op in group:
                    apply_to_node(scope, index[op.target], op,
                                  preserve_ids=preserve_ids)
                explore(scope, index, group_number + 1, None)
                return
            explore(scope, index, group_number, list(group))
            return
        if not remaining:
            explore(scope, index, group_number + 1, None)
            return
        for position, op in enumerate(remaining):
            rest = remaining[:position] + remaining[position + 1:]
            if isinstance(op, InsertInto):
                target = index[op.target]
                gap_count = len(target.children) + 1
                for gap in range(gap_count):
                    roots, new_index = _copy_forest_state(scope.roots)
                    branch = Scope(roots)
                    apply_to_node(branch, new_index[op.target], op,
                                  gap=gap, preserve_ids=preserve_ids)
                    explore(branch, new_index, group_number, rest)
            else:
                roots, new_index = _copy_forest_state(scope.roots)
                branch = Scope(roots)
                apply_to_node(branch, new_index[op.target], op,
                              preserve_ids=preserve_ids)
                explore(branch, new_index, group_number, rest)

    roots, index = _copy_forest_state([document.root])
    explore(Scope(roots), index, 0, None)
    return results
