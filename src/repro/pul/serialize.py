"""The PUL exchange format (contribution (i) of the paper).

PULs are represented as XML documents containing the serialization of each
operation together with the identifier and extended label of its target
node, so that a remote executor (or another producer) can reason on the PUL
without the document.

Parameter trees are serialized inline. Nodes that carry identifiers (the
producer-assigned ids of new nodes, which later PULs of a sequence may
reference — Section 4.1) keep them on the wire:

* elements carry a reserved ``repro:id`` attribute;
* identified text nodes are wrapped as ``<repro:text repro:id="..">``;
* identified attribute nodes are hoisted to ``<repro:attr>`` wrapper
  children (inline XML attributes cannot carry per-attribute metadata).

Example::

    <pul producer="alice">
      <op name="insertAfter" target="7" label="7;e;0101;011;2;4;5;9">
        <author repro:id="1000000000">G. Guerrini</author>
      </op>
      <op name="rename" target="5" label="..." value="title"/>
    </pul>
"""

from __future__ import annotations

from repro.errors import SerializationError
from repro.labeling.containment import ExtendedLabel
from repro.pul.ops import (
    OPERATION_TYPES,
    Delete,
    Rename,
    ReplaceChildren,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.xdm.node import Node
from repro.xdm.parser import parse_fragment
from repro.xdm.serializer import (
    ID_ATTRIBUTE,
    escape_attribute,
    escape_text,
)

_ATTR_WRAPPER = "repro:attr"
_TEXT_WRAPPER = "repro:text"


def tree_to_xml(node):
    """Serialize one tree in the exchange-format representation.

    Unlike :func:`repro.xdm.serializer.serialize_node`, identifiers of
    *every* node kind survive (text nodes are wrapped as ``repro:text``,
    identified attributes hoisted as ``repro:attr``), so the round trip
    through :func:`tree_from_xml` is lossless — the representation the
    durability snapshots rely on.
    """
    parts = []
    _write_tree(node, parts, top=True)
    return "".join(parts)


def tree_from_xml(text):
    """Parse one :func:`tree_to_xml` document back into a detached tree."""
    return _read_tree(parse_fragment(text, keep_whitespace=True))


# -- writing -------------------------------------------------------------------


def _write_tree(node, parts, top=False):
    if node.is_text:
        # top-level text parameters are always wrapped, so whitespace-only
        # values survive the round trip unambiguously
        if node.node_id is None and not top:
            parts.append(escape_text(node.value))
        else:
            parts.append("<{}".format(_TEXT_WRAPPER))
            if node.node_id is not None:
                parts.append(' {}="{}"'.format(ID_ATTRIBUTE, node.node_id))
            parts.append(">")
            parts.append(escape_text(node.value))
            parts.append("</{}>".format(_TEXT_WRAPPER))
        return
    if node.is_attribute:
        parts.append('<{} name="{}" value="{}"'.format(
            _ATTR_WRAPPER, escape_attribute(node.name),
            escape_attribute(node.value)))
        if node.node_id is not None:
            parts.append(' {}="{}"'.format(ID_ATTRIBUTE, node.node_id))
        parts.append("/>")
        return
    parts.append("<")
    parts.append(node.name)
    if node.node_id is not None:
        parts.append(' {}="{}"'.format(ID_ATTRIBUTE, node.node_id))
    hoisted = []
    for attr in node.attributes:
        if attr.node_id is None:
            parts.append(' {}="{}"'.format(
                attr.name, escape_attribute(attr.value)))
        else:
            hoisted.append(attr)
    if not node.children and not hoisted:
        parts.append("/>")
        return
    parts.append(">")
    for attr in hoisted:
        _write_tree(attr, parts)
    for child in node.children:
        _write_tree(child, parts)
    parts.append("</")
    parts.append(node.name)
    parts.append(">")


def pul_to_xml(pul):
    """Serialize ``pul`` (operations + target labels) to XML text."""
    parts = ["<pul"]
    if pul.origin is not None:
        parts.append(' producer="{}"'.format(
            escape_attribute(str(pul.origin))))
    parts.append(">")
    for op in pul:
        parts.append('<op name="{}" target="{}"'.format(
            op.op_name, op.target))
        label = pul.labels.get(op.target)
        if label is not None:
            parts.append(' label="{}"'.format(
                escape_attribute(label.to_string())))
        if isinstance(op, (ReplaceValue, Rename)):
            parts.append(' value="{}"'.format(
                escape_attribute(op.parameter())))
        if isinstance(op, ReplaceChildren) and not op.strict:
            parts.append(' strict="false"')
        if op.has_trees:
            parts.append(">")
            for tree in op.trees:
                _write_tree(tree, parts, top=True)
            parts.append("</op>")
        else:
            parts.append("/>")
    parts.append("</pul>")
    return "".join(parts)


# -- reading -------------------------------------------------------------------


def _read_tree(element):
    """Convert one parsed wrapper child back into a parameter tree."""
    if element.is_text:
        return Node.text(element.value)
    attrs = {attr.name: attr.value for attr in element.attributes}
    if element.name == _TEXT_WRAPPER:
        value = "".join(child.value for child in element.children
                        if child.is_text)
        node = Node.text(value)
        if ID_ATTRIBUTE in attrs:
            node.node_id = int(attrs[ID_ATTRIBUTE])
        return node
    if element.name == _ATTR_WRAPPER:
        try:
            node = Node.attribute(attrs["name"], attrs.get("value", ""))
        except KeyError:
            raise SerializationError(
                "repro:attr wrapper without a name") from None
        if ID_ATTRIBUTE in attrs:
            node.node_id = int(attrs[ID_ATTRIBUTE])
        return node
    node = Node.element(element.name)
    if ID_ATTRIBUTE in attrs:
        node.node_id = int(attrs[ID_ATTRIBUTE])
    for attr in element.attributes:
        if attr.name == ID_ATTRIBUTE:
            continue
        node.append_attribute(Node.attribute(attr.name, attr.value))
    for child in element.children:
        restored = _read_tree(child)
        if restored.is_attribute:
            node.append_attribute(restored)
        else:
            node.append_child(restored)
    return node


def _parse_parameter_trees(op_element):
    trees = []
    for child in op_element.children:
        if child.is_text and not child.value.strip():
            continue
        trees.append(_read_tree(child))
    return trees


def pul_from_xml(text):
    """Parse a PUL exchange document back into a :class:`PUL`."""
    # our own serializer emits no inter-element whitespace, so whitespace
    # can be kept verbatim — it only matters inside <repro:text> wrappers
    root = parse_fragment(text, keep_whitespace=True)
    if root.name != "pul":
        raise SerializationError(
            "expected <pul> root, got <{}>".format(root.name))
    origin = None
    for attr in root.attributes:
        if attr.name == "producer":
            origin = attr.value
    operations = []
    labels = {}
    for op_element in root.children:
        if op_element.is_text:
            continue
        if op_element.name != "op":
            raise SerializationError(
                "unexpected element <{}> in PUL".format(op_element.name))
        attrs = {attr.name: attr.value for attr in op_element.attributes}
        try:
            name = attrs["name"]
            target = int(attrs["target"])
        except (KeyError, ValueError) as exc:
            raise SerializationError(
                "malformed operation element: {}".format(exc)) from exc
        op_class = OPERATION_TYPES.get(name)
        if op_class is None:
            raise SerializationError(
                "unknown operation name: {!r}".format(name))
        if "label" in attrs:
            labels[target] = ExtendedLabel.from_string(attrs["label"])
        if op_class is Delete:
            operations.append(Delete(target))
        elif op_class is ReplaceValue:
            operations.append(ReplaceValue(target, attrs.get("value", "")))
        elif op_class is Rename:
            operations.append(Rename(target, attrs.get("value", "")))
        elif op_class is ReplaceChildren:
            trees = _parse_parameter_trees(op_element)
            strict = attrs.get("strict", "true") != "false"
            operations.append(ReplaceChildren(target, trees, strict=strict))
        else:
            trees = _parse_parameter_trees(op_element)
            operations.append(op_class(target, trees))
    return PUL(operations, labels=labels, origin=origin)
