"""The PUL container (Definitions 3–5).

A PUL is an *unordered* list of update operations. The container keeps the
insertion order only to make results reproducible (the semantics never
depends on it beyond the nondeterminism the paper models explicitly).

A PUL additionally carries the extended labels of the target nodes — the
structural information that lets the reasoning operators work without
accessing the document (Section 4.1: "labels are ... attached to the target
nodes of the operations specified in a PUL").
"""

from __future__ import annotations

from repro.errors import (
    IncompatibleOperationsError,
    MergeError,
    NotApplicableError,
)
from repro.pul.ops import (
    Delete,
    OpClass,
    ReplaceNode,
    UpdateOperation,
)


class PUL:
    """A pending update list.

    Parameters
    ----------
    operations:
        Iterable of :class:`~repro.pul.ops.UpdateOperation`.
    labels:
        Optional mapping ``node id -> ExtendedLabel`` for (at least) the
        operations' targets. Carried along by every PUL transformation.
    origin:
        Optional identifier of the producer that created the PUL (used by
        conflict resolution policies).
    """

    def __init__(self, operations=(), labels=None, origin=None):
        self._ops = []
        for op in operations:
            if not isinstance(op, UpdateOperation):
                raise TypeError(
                    "PUL items must be UpdateOperations, got {!r}"
                    .format(op))
            self._ops.append(op)
        self.labels = dict(labels) if labels else {}
        self.origin = origin

    # -- container protocol --------------------------------------------------

    def __iter__(self):
        return iter(self._ops)

    def __len__(self):
        return len(self._ops)

    def __contains__(self, op):
        return op in self._ops

    def __getitem__(self, index):
        return self._ops[index]

    def operations(self):
        """The operations as a list copy."""
        return list(self._ops)

    def targets(self):
        """The set of target node ids."""
        return {op.target for op in self._ops}

    def add(self, op):
        """Append an operation (no compatibility check; see validate)."""
        self._ops.append(op)
        return self

    # -- equality (as multisets; a PUL is unordered) -------------------------

    def __eq__(self, other):
        if not isinstance(other, PUL):
            return NotImplemented
        return sorted(self._ops, key=_op_order) == \
            sorted(other._ops, key=_op_order)

    def __hash__(self):
        return hash(tuple(sorted(
            (hash(op) for op in self._ops))))

    # -- Definition 3 / 4 ----------------------------------------------------

    def incompatible_pairs(self):
        """Yield the pairs of incompatible operations (Definition 3):
        replacement operations sharing target and name."""
        groups = {}
        for op in self._ops:
            if op.op_class is OpClass.REPLACE:
                groups.setdefault((op.target, op.op_name), []).append(op)
        for ops in groups.values():
            first = ops[0]
            for other in ops[1:]:
                yield first, other

    def check_compatible(self):
        """Raise on the first incompatible pair."""
        for op1, op2 in self.incompatible_pairs():
            raise IncompatibleOperationsError(op1, op2)

    def applicability_errors(self, document):
        """All reasons the PUL is not applicable on ``document``."""
        errors = []
        for op1, op2 in self.incompatible_pairs():
            errors.append("incompatible: {} / {}".format(
                op1.describe(), op2.describe()))
        for op in self._ops:
            for reason in op.applicability_errors(document):
                errors.append("{}: {}".format(op.describe(), reason))
        return errors

    def is_applicable(self, document):
        """Definition 4."""
        return not self.applicability_errors(document)

    def require_applicable(self, document):
        errors = self.applicability_errors(document)
        if errors:
            raise NotApplicableError("; ".join(errors))

    # -- normalization -------------------------------------------------------

    def normalized(self):
        """A copy with ``repN(v, [])`` rewritten to ``del(v)`` (footnote 3:
        the two are equivalent; conflict detection assumes the rewriting)."""
        ops = []
        for op in self._ops:
            if isinstance(op, ReplaceNode) and op.is_empty():
                ops.append(Delete(op.target))
            else:
                ops.append(op)
        return PUL(ops, labels=self.labels, origin=self.origin)

    # -- derivation helpers ---------------------------------------------------

    def replace_operations(self, operations):
        """A PUL with the given operations but this PUL's labels/origin."""
        return PUL(operations, labels=self.labels, origin=self.origin)

    def copy(self):
        """Deep copy (operations duplicated, labels shared by value)."""
        return PUL([op.copy() for op in self._ops], labels=self.labels,
                   origin=self.origin)

    def label_of(self, node_id):
        """The carried label of a target node (raises KeyError if the PUL
        does not carry it)."""
        return self.labels[node_id]

    def attach_labels(self, labeling):
        """Record the labels of all targets from a
        :class:`~repro.labeling.scheme.ContainmentLabeling` (producer side,
        before shipping the PUL)."""
        for op in self._ops:
            label = labeling.find(op.target)
            if label is not None:
                self.labels[op.target] = label
        return self

    def describe(self):
        return "{" + ", ".join(op.describe() for op in self._ops) + "}"

    def __repr__(self):
        return "PUL({} ops)".format(len(self._ops))


def _op_order(op):
    return (op.op_name, op.target, op._param_canonical())


def merge(pul1, pul2, document=None):
    """Definition 5: the merge ``pul1 ∘ pul2`` is the union of their
    operations, provided it is applicable (compatibility always checked;
    per-operation applicability checked when ``document`` is given)."""
    union = PUL(list(pul1) + list(pul2),
                labels={**pul1.labels, **pul2.labels})
    try:
        if document is not None:
            union.require_applicable(document)
        else:
            union.check_compatible()
    except NotApplicableError as exc:
        raise MergeError("PULs cannot be merged: {}".format(exc)) from exc
    return union
