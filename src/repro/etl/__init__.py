"""Streaming bulk ETL: corpus-scale import and export.

The import side (:mod:`repro.etl.importer`) is the classic
extract → validate → transform → load pipeline over an XML corpus:
sources are scanned incrementally, parse failures are *rejected with a
reason* instead of aborting the run (until the ``max_errors`` quality
gate trips), and accepted documents are loaded in chunks so the store's
:meth:`~repro.store.store.DocumentStore.bulk_load` can amortize one
group fsync over each chunk.

The export side (:mod:`repro.etl.exporter`) drives the paged,
resumable ``export`` operation: filtered corpus dumps read from pinned
MVCC versions, with the first page's resume token returned as the CDC
anchor for a subscriber that wants to follow the exported state.
"""

from repro.etl.exporter import export_corpus, safe_filename
from repro.etl.importer import BulkImporter, ImportReport, iter_sources

__all__ = [
    "BulkImporter",
    "ImportReport",
    "export_corpus",
    "iter_sources",
    "safe_filename",
]
