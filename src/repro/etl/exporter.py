"""Paged, resumable corpus export over the ``export`` operation.

:func:`export_corpus` is target-agnostic like the importer: ``export``
is any callable with the operation's contract (the dispatcher method or
:meth:`StoreClient.export`), so local and remote dumps share one
driver. Pages resume on the ``cursor`` (last document key of the
previous page); the **first** page's resume token is the CDC anchor —
it was read before any payload was pinned, so a subscriber resuming
from it re-receives at most changes the exported state already
contains.
"""

from __future__ import annotations

import os


def safe_filename(doc_id, suffix=".xml"):
    """A filesystem-safe file name for a document id."""
    cleaned = "".join(
        ch if ch.isalnum() or ch in "._-" else "_"
        for ch in str(doc_id))
    return (cleaned or "doc") + suffix


def export_corpus(export, out_dir=None, doc_ids=None, cursor=None,
                  page_size=64, form="xml", progress=None):
    """Drain the export pages; returns the run summary.

    When ``out_dir`` is given each ``xml``-form document is written to
    ``<out_dir>/<doc_id>.xml``. Returns ``{"docs", "doc_ids",
    "cursor", "done", "token", "pages"}`` — ``token`` anchors a CDC
    subscription at the exported state (``None`` when the source has
    no replication feed).
    """
    progress = progress or (lambda line: None)
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
    token = None
    exported = []
    pages = 0
    while True:
        page = export(doc_ids=doc_ids, cursor=cursor,
                      max_docs=page_size, format=form)
        pages += 1
        if token is None:
            token = page.get("token")
        for doc in page["docs"]:
            exported.append(doc["doc_id"])
            if out_dir is not None and "text" in doc:
                path = os.path.join(out_dir,
                                    safe_filename(doc["doc_id"]))
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(doc["text"])
        cursor = page["cursor"]
        progress("page {}: {} doc(s), cursor={!r}".format(
            pages, len(page["docs"]), cursor))
        if page["done"]:
            return {"docs": len(exported), "doc_ids": exported,
                    "cursor": cursor, "done": True,
                    "token": token, "pages": pages}
