"""Chunked corpus import: extract → validate → transform → load.

:class:`BulkImporter` is target-agnostic — ``load`` is any callable
with the ``bulk-import`` contract (a list of ``{"doc_id", "xml"}``
objects in, ``{"loaded", "nodes", ...}`` out), so the same pipeline
drives a local :meth:`DocumentStore.bulk_load`, a dispatcher, or a
remote :meth:`StoreClient.bulk_import`.

Stage accounting is explicit: every source file is either **loaded**
or **rejected with a reason** (parse failure, duplicate id, unreadable
file), and the run report carries both sets — a quality gate in the
spirit of validation-stage ETL, where bad records are data, not
crashes. The ``max_errors`` gate turns systematic garbage into a typed
:class:`~repro.errors.ImportAbortedError` that still reports how much
was loaded durably before the abort.
"""

from __future__ import annotations

import os

from repro.errors import ImportAbortedError, ReproError
from repro.xdm.parser import parse_document

#: documents per load chunk (one group fsync each)
DEFAULT_CHUNK_DOCS = 64

#: source bytes per load chunk — bounds a chunk's wire frame and the
#: parse work buffered between fsyncs
DEFAULT_CHUNK_BYTES = 4 * 1024 * 1024


class ImportReport:
    """Stage counters for one import run."""

    def __init__(self):
        self.scanned = 0
        self.loaded = 0
        self.nodes = 0
        self.bytes = 0
        self.chunks = 0
        self.rejected = []  # {"source", "reason"}

    def reject(self, source, reason):
        self.rejected.append({"source": str(source),
                              "reason": str(reason)})

    def to_dict(self):
        return {"scanned": self.scanned, "loaded": self.loaded,
                "rejected": len(self.rejected), "nodes": self.nodes,
                "bytes": self.bytes, "chunks": self.chunks,
                "rejects": list(self.rejected)}

    def __repr__(self):
        return ("ImportReport(scanned={}, loaded={}, rejected={}, "
                "chunks={})".format(self.scanned, self.loaded,
                                    len(self.rejected), self.chunks))


def iter_sources(paths):
    """Yield ``(doc_id, path)`` pairs for an XML corpus.

    Each path is either an ``.xml`` file or a directory scanned
    recursively for ``.xml`` files (sorted, so runs are
    deterministic). The document id is the file's stem.
    """
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                for name in sorted(files):
                    if name.lower().endswith(".xml"):
                        full = os.path.join(root, name)
                        yield os.path.splitext(name)[0], full
        elif os.path.isfile(path):
            name = os.path.basename(path)
            yield os.path.splitext(name)[0], path
        else:
            raise ReproError("no such import source: {}".format(path))


class BulkImporter:
    """The chunked extract → validate → transform → load pipeline."""

    def __init__(self, load, chunk_docs=DEFAULT_CHUNK_DOCS,
                 chunk_bytes=DEFAULT_CHUNK_BYTES, max_errors=None,
                 doc_prefix="", progress=None):
        if chunk_docs < 1:
            raise ReproError(
                "chunk_docs must be >= 1, got {}".format(chunk_docs))
        self.load = load
        self.chunk_docs = chunk_docs
        self.chunk_bytes = chunk_bytes
        self.max_errors = max_errors
        self.doc_prefix = doc_prefix
        self.progress = progress or (lambda line: None)

    def run(self, paths):
        """Import a corpus; returns the :class:`ImportReport`.

        Raises :class:`ImportAbortedError` when the reject count
        crosses ``max_errors``; everything loaded before the abort is
        already durable.
        """
        report = ImportReport()
        seen = set()
        chunk, chunk_bytes = [], 0
        for doc_id, path in iter_sources(paths):
            report.scanned += 1
            # extract
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except (OSError, UnicodeDecodeError) as exc:
                self._reject(report, path, "unreadable: {}".format(exc))
                continue
            # validate: a parse failure is a rejected record, not a
            # crashed run — the server would reject the whole chunk
            try:
                parse_document(text)
            except ReproError as exc:
                self._reject(report, path, "invalid xml: {}".format(exc))
                continue
            # transform: id assignment + corpus-level dedupe
            doc_id = self.doc_prefix + doc_id
            if doc_id in seen:
                self._reject(
                    report, path,
                    "duplicate doc_id {!r}".format(doc_id))
                continue
            seen.add(doc_id)
            chunk.append({"doc_id": doc_id, "xml": text})
            chunk_bytes += len(text)
            report.bytes += len(text)
            if (len(chunk) >= self.chunk_docs
                    or chunk_bytes >= self.chunk_bytes):
                self._flush(report, chunk)
                chunk, chunk_bytes = [], 0
        if chunk:
            self._flush(report, chunk)
        self.progress(
            "import done: {} loaded, {} rejected, {} chunk(s)".format(
                report.loaded, len(report.rejected), report.chunks))
        return report

    def _reject(self, report, source, reason):
        report.reject(source, reason)
        self.progress("reject {}: {}".format(source, reason))
        if (self.max_errors is not None
                and len(report.rejected) > self.max_errors):
            raise ImportAbortedError(report.loaded,
                                     len(report.rejected),
                                     self.max_errors)

    def _flush(self, report, chunk):
        result = self.load(chunk)
        report.loaded += result.get("loaded", len(chunk))
        report.nodes += result.get("nodes", 0) or 0
        report.chunks += 1
        self.progress("chunk {}: {} doc(s) loaded ({} total)".format(
            report.chunks, len(chunk), report.loaded))
