"""Observability layer: metrics registry, request tracing, slow log.

One :class:`StoreObs` per :class:`~repro.store.store.DocumentStore`
bundles the three instruments every subsystem shares:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges,
  fixed-bucket latency histograms (a :class:`NullRegistry` when the
  store is built with ``metrics=False``, so instrumentation sites cost
  one no-op call);
* :class:`~repro.obs.tracing.Tracer` — contextvar-propagated span
  trees for requests that carry a trace id, with a ring buffer of
  recent traces;
* :class:`~repro.obs.slowlog.SlowLog` — threshold-gated JSONL log of
  slow queries (with their recorded plans) and slow flushes (with
  per-stage timings).

The store owns the facade (``store.obs``); the server, durability
manager and replication feed reach it through the store, so the whole
process shares one registry and one trace ring. See ``README.md`` in
this package for the metric name table and exposition formats.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    percentile_from_buckets,
    series_key,
)
from repro.obs.slowlog import SlowLog
from repro.obs.tracing import _ACTIVE, _Span, Tracer, new_trace_id

__all__ = [
    "DEFAULT_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "SlowLog",
    "StoreObs",
    "Tracer",
    "new_trace_id",
    "percentile_from_buckets",
    "series_key",
]


#: ambient per-flush stage-timing sink (set by
#: :meth:`StoreObs.collect_stages`, fed by :meth:`StoreObs.stage`);
#: a contextvar for the same reason the tracer uses one — each request
#: runs synchronously on one worker thread, so no signatures change
_STAGES = contextvars.ContextVar("repro_flush_stages", default=None)


class _StageTimer:
    """Class-based context manager for one flush stage.

    The flush hot path opens several of these per batch, so the
    generator-contextmanager machinery is deliberately avoided: enter
    is two ContextVar reads and a ``perf_counter``, exit one
    ``perf_counter`` plus the (no-op when disabled) histogram
    observe — measured at well under a microsecond per stage against
    tens with the generator form.
    """

    __slots__ = ("_name", "_hist", "_active", "_span", "_start")

    def __init__(self, name, hist):
        self._name = name
        self._hist = hist

    def __enter__(self):
        active = _ACTIVE.get()
        self._active = active
        if active is not None:
            span = _Span(self._name)
            stack = active.stack
            stack[-1].children.append(span)
            stack.append(span)
            self._span = span
        self._start = time.perf_counter()
        return None

    def __exit__(self, exc_type, exc, tb):
        elapsed = time.perf_counter() - self._start
        active = self._active
        if active is not None:
            self._span.duration_s = elapsed
            active.stack.pop()
        sink = _STAGES.get()
        if sink is not None:
            sink[self._name] = sink.get(self._name, 0.0) + elapsed
        self._hist.observe(elapsed)
        return False


class StoreObs:
    """Per-store observability facade: registry + tracer + slow log."""

    def __init__(self, enabled=True, slow_query_s=None,
                 slow_flush_s=None, slow_log_path=None,
                 trace_capacity=None):
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry() if enabled else NullRegistry()
        self.tracer = (Tracer() if trace_capacity is None
                       else Tracer(capacity=trace_capacity))
        self.slowlog = SlowLog(slow_query_s=slow_query_s,
                               slow_flush_s=slow_flush_s,
                               path=slow_log_path)
        self._stage_hists = {}
        self._started_monotonic = time.monotonic()
        self.started_at = time.time()

    # -- convenience pass-throughs (the instrumented modules only ever
    # -- hold a StoreObs reference) ------------------------------------------

    def counter(self, name, help_text="", **labels):
        return self.registry.counter(name, help_text, **labels)

    def gauge(self, name, help_text="", **labels):
        return self.registry.gauge(name, help_text, **labels)

    def histogram(self, name, help_text="", buckets=DEFAULT_BUCKETS,
                  **labels):
        return self.registry.histogram(name, help_text,
                                       buckets=buckets, **labels)

    def span(self, name):
        return self.tracer.span(name)

    def run_traced(self, trace_id, name, fn):
        return self.tracer.run_traced(trace_id, name, fn)

    # -- flush stage timing --------------------------------------------------

    @contextmanager
    def collect_stages(self):
        """Run a flush with an ambient stage-timing sink; yields the
        dict that :meth:`stage` blocks (in this flush, any layer) fill
        with ``stage name -> seconds`` — the slow-flush log's payload."""
        sink = {}
        if self.slowlog.slow_flush_s is None:
            # nothing reads the sink when no slow-flush threshold is
            # armed: skip the ContextVar set/reset and let every
            # stage's sink lookup short-circuit on None
            yield sink
            return
        token = _STAGES.set(sink)
        try:
            yield sink
        finally:
            _STAGES.reset(token)

    def stage(self, name):
        """Time one flush stage: opens a trace span, feeds the ambient
        stage sink (when a :meth:`collect_stages` flush is running) and
        the per-stage latency histogram."""
        hist = self._stage_hists.get(name)
        if hist is None:
            hist = self.registry.histogram(
                "repro_store_flush_stage_seconds",
                "Per-stage flush latency", stage=name)
            self._stage_hists[name] = hist
        return _StageTimer(name, hist)

    def uptime_seconds(self):
        return time.monotonic() - self._started_monotonic

    # -- reads ---------------------------------------------------------------

    def snapshot(self, traces=None, slow=None):
        """The ``metrics`` op result: metric series plus uptime, and
        optionally the last ``traces`` span trees / ``slow`` log
        entries."""
        payload = self.registry.snapshot()
        payload["uptime_seconds"] = round(self.uptime_seconds(), 3)
        payload["metrics_enabled"] = self.enabled
        if traces:
            payload["traces"] = self.tracer.recent(limit=traces)
        if slow:
            payload["slow"] = self.slowlog.recent(limit=slow)
        return payload

    def render_text(self):
        """Prometheus text exposition, uptime included."""
        text = self.registry.render_text()
        uptime = ("# TYPE repro_uptime_seconds gauge\n"
                  "repro_uptime_seconds {}\n".format(
                      round(self.uptime_seconds(), 3)))
        return text + uptime
