"""Request tracing: span trees over the dispatch → store → durability
path.

A trace id is minted client-side (:func:`new_trace_id`) or accepted
from the caller, rides the wire envelope as an optional field, and is
activated server-side with :meth:`Tracer.run_traced` for the duration
of one request. Because each request executes synchronously on one
worker thread (the server batches a connection's pipelined run into a
single executor hop), a ``contextvars.ContextVar`` carries the active
trace through every layer without any plumbing in the call
signatures — the store and durability manager just open
:meth:`Tracer.span` blocks, which are no-ops when no trace is active.

Completed traces land in a bounded ring buffer and are exposed as
JSON span trees via the ``metrics`` protocol op (``traces=N``).
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import deque
from contextlib import contextmanager

#: Default number of completed traces retained in the ring buffer.
DEFAULT_TRACE_CAPACITY = 64

_ACTIVE = contextvars.ContextVar("repro_active_trace", default=None)


def new_trace_id():
    """A fresh 16-hex-digit trace id (64 random bits)."""
    return os.urandom(8).hex()


class _Span:
    __slots__ = ("name", "start", "duration_s", "children")

    def __init__(self, name):
        self.name = name
        self.start = time.perf_counter()
        self.duration_s = None
        self.children = []

    def close(self):
        self.duration_s = time.perf_counter() - self.start

    def as_dict(self, origin):
        return {"name": self.name,
                "start_offset_s": round(self.start - origin, 9),
                "duration_s": round(self.duration_s or 0.0, 9),
                "children": [child.as_dict(origin)
                             for child in self.children]}


class _ActiveTrace:
    __slots__ = ("trace_id", "root", "stack")

    def __init__(self, trace_id, name):
        self.trace_id = trace_id
        self.root = _Span(name)
        self.stack = [self.root]


class _NoopSpan:
    """Shared context manager for spans opened outside any trace — the
    untraced hot path must not pay for generator machinery."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """Class-based child-span context manager (hot path: several per
    flush when a trace is active)."""

    __slots__ = ("_active", "_name", "_span")

    def __init__(self, active, name):
        self._active = active
        self._name = name

    def __enter__(self):
        span = _Span(self._name)
        stack = self._active.stack
        stack[-1].children.append(span)
        stack.append(span)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb):
        self._span.close()
        self._active.stack.pop()
        return False


class Tracer:
    """Holds the active-trace context plus the ring of finished
    traces."""

    def __init__(self, capacity=DEFAULT_TRACE_CAPACITY):
        self._lock = threading.Lock()
        self._ring = deque(maxlen=capacity)

    # -- recording -----------------------------------------------------------

    @contextmanager
    def trace(self, trace_id, name):
        """Run a block as the root span of trace ``trace_id``; on exit
        the finished span tree is pushed into the ring buffer."""
        active = _ActiveTrace(trace_id, name)
        token = _ACTIVE.set(active)
        wall_start = time.time()
        try:
            yield active
        finally:
            _ACTIVE.reset(token)
            active.root.close()
            with self._lock:
                self._ring.append({
                    "trace_id": trace_id,
                    "op": name,
                    "started_at": wall_start,
                    "duration_s": round(active.root.duration_s, 9),
                    "spans": active.root.as_dict(active.root.start),
                })

    def run_traced(self, trace_id, name, fn):
        """``fn()`` under a root span when ``trace_id`` is set; plain
        call otherwise (the common untraced request costs one ``if``)."""
        if not trace_id:
            return fn()
        with self.trace(trace_id, name):
            return fn()

    def span(self, name):
        """A child span of the active trace — a shared no-op context
        manager (no allocation at all) when the current context
        carries no trace."""
        active = _ACTIVE.get()
        if active is None:
            return _NOOP_SPAN
        return _LiveSpan(active, name)

    @staticmethod
    def current_trace_id():
        active = _ACTIVE.get()
        return None if active is None else active.trace_id

    # -- reads ---------------------------------------------------------------

    def recent(self, limit=None):
        """Most recent completed traces, newest last."""
        with self._lock:
            traces = list(self._ring)
        if limit is not None:
            traces = traces[-int(limit):]
        return traces
