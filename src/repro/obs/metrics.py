"""Lock-cheap metric primitives: counters, gauges, histograms.

One :class:`MetricsRegistry` per store owns every series. Each metric
guards its own state with a private ``threading.Lock`` held only for
the handful of arithmetic instructions of one update — there is no
registry-wide lock on the hot path (the registry lock is taken only on
first registration of a series, after which callers hold a direct
reference). Reads are snapshot-on-read: :meth:`MetricsRegistry.snapshot`
copies every series under its metric lock, so scrapes never block
writers for longer than one copy.

Histograms are fixed-bucket (upper-bound seconds by default, matching
Prometheus' cumulative-bucket convention); percentiles are estimated
from bucket counts with linear interpolation inside the winning bucket
(:func:`percentile_from_buckets`), which is exactly what a PromQL
``histogram_quantile`` would compute from the same exposition.

``metrics=False`` stores get a :class:`NullRegistry` whose metric
objects are shared no-op singletons — the instrumentation call sites
stay branch-free and the overhead is one no-op method call.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

#: Default latency buckets (seconds). Chosen to straddle the measured
#: hot-path costs: sub-millisecond submits, single-digit-millisecond
#: flush stages, and the multi-millisecond fsync waits of a loaded
#: group-commit train.
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: Buckets for dimensionless size distributions (pipeline depth, train
#: occupancy, bucket rows scanned).
SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096)


def series_key(name, labels):
    """The stable exposition identity of one series:
    ``name`` or ``name{k="v",...}`` with label keys sorted."""
    if not labels:
        return name
    inner = ",".join('{}="{}"'.format(key, labels[key])
                     for key in sorted(labels))
    return "{}{{{}}}".format(name, inner)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value):
        with self._lock:
            self._value = value

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    def dec(self, amount=1):
        with self._lock:
            self._value -= amount

    @property
    def value(self):
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution with cumulative exposition.

    ``bounds`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches everything above the last bound. ``counts`` as stored here
    are per-bucket (non-cumulative); the Prometheus renderer sums them
    into the cumulative ``le`` form.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds=DEFAULT_BUCKETS):
        self._lock = threading.Lock()
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value):
        # inclusive upper bounds: the first bound >= value wins, the
        # implicit +Inf bucket (index len(bounds)) catches the rest
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def state(self):
        """``(counts, sum, count)`` copied under the metric lock."""
        with self._lock:
            return list(self._counts), self._sum, self._count


def percentile_from_buckets(bounds, counts, quantile):
    """Estimate the ``quantile`` (0..1) of a distribution recorded as
    per-bucket ``counts`` over upper ``bounds`` (+Inf implicit).

    Linear interpolation inside the winning bucket; the +Inf bucket
    reports the last finite bound (there is nothing better to say).
    Returns ``None`` for an empty distribution.
    """
    total = sum(counts)
    if not total:
        return None
    rank = quantile * total
    seen = 0
    for index, count in enumerate(counts):
        if not count:
            continue
        if seen + count >= rank:
            if index >= len(bounds):  # +Inf bucket
                return float(bounds[-1]) if bounds else math.inf
            lower = bounds[index - 1] if index else 0.0
            upper = bounds[index]
            fraction = (rank - seen) / count
            return lower + (upper - lower) * fraction
        seen += count
    return float(bounds[-1]) if bounds else math.inf


class MetricsRegistry:
    """Owns every series; hands out per-series metric objects.

    Registration (``counter()`` / ``gauge()`` / ``histogram()``) is
    idempotent: the same ``(name, labels)`` always returns the same
    object, so instrumentation sites may either cache the reference
    (hot paths do) or re-resolve per call.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._series = {}    # series_key -> metric object
        self._kinds = {}     # name -> "counter" | "gauge" | "histogram"
        self._help = {}      # name -> help text

    def _register(self, kind, name, help_text, labels, factory):
        key = series_key(name, labels)
        with self._lock:
            existing = self._kinds.get(name)
            if existing is not None and existing != kind:
                raise ValueError(
                    "metric {!r} already registered as a {}".format(
                        name, existing))
            metric = self._series.get(key)
            if metric is None:
                metric = factory()
                self._series[key] = metric
                self._kinds[name] = kind
                if help_text:
                    self._help[name] = help_text
            return metric

    def counter(self, name, help_text="", **labels):
        return self._register("counter", name, help_text, labels,
                              Counter)

    def gauge(self, name, help_text="", **labels):
        return self._register("gauge", name, help_text, labels, Gauge)

    def histogram(self, name, help_text="", buckets=DEFAULT_BUCKETS,
                  **labels):
        return self._register("histogram", name, help_text, labels,
                              lambda: Histogram(buckets))

    # -- reads ---------------------------------------------------------------

    def snapshot(self):
        """JSON-representable copy of every series:
        ``{"counters": {key: value}, "gauges": {key: value},
        "histograms": {key: {"buckets", "counts", "sum", "count"}}}``."""
        with self._lock:
            series = list(self._series.items())
            kinds = dict(self._kinds)
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for key, metric in sorted(series):
            name = key.split("{", 1)[0]
            kind = kinds[name]
            if kind == "histogram":
                counts, total, count = metric.state()
                out["histograms"][key] = {
                    "buckets": list(metric.bounds), "counts": counts,
                    "sum": total, "count": count}
            else:
                out[kind + "s"][key] = metric.value
        return out

    def render_text(self):
        """Prometheus text exposition (version 0.0.4) of every
        series."""
        with self._lock:
            series = sorted(self._series.items())
            kinds = dict(self._kinds)
            helps = dict(self._help)
        lines = []
        typed = set()
        for key, metric in series:
            name = key.split("{", 1)[0]
            kind = kinds[name]
            if name not in typed:
                typed.add(name)
                if name in helps:
                    lines.append("# HELP {} {}".format(name,
                                                       helps[name]))
                lines.append("# TYPE {} {}".format(name, kind))
            if kind == "histogram":
                counts, total, count = metric.state()
                label_part = key[len(name):]  # "" or '{k="v",...}'
                inner = label_part[1:-1] if label_part else ""
                cumulative = 0
                for bound, bucket in zip(list(metric.bounds) + ["+Inf"],
                                         counts):
                    cumulative += bucket
                    merged = ('{},le="{}"'.format(inner, bound)
                              if inner else 'le="{}"'.format(bound))
                    lines.append("{}_bucket{{{}}} {}".format(
                        name, merged, cumulative))
                lines.append("{}_sum{} {}".format(
                    name, label_part, _fmt(total)))
                lines.append("{}_count{} {}".format(
                    name, label_part, count))
            else:
                lines.append("{} {}".format(key, _fmt(metric.value)))
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value):
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _NullMetric:
    """Shared do-nothing stand-in for every metric kind."""

    __slots__ = ()
    bounds = ()
    value = 0

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def state(self):
        return [], 0.0, 0


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """Registry for ``metrics=False`` stores: every lookup returns the
    shared no-op metric, snapshots are empty."""

    enabled = False

    def counter(self, name, help_text="", **labels):
        return _NULL_METRIC

    def gauge(self, name, help_text="", **labels):
        return _NULL_METRIC

    def histogram(self, name, help_text="", buckets=DEFAULT_BUCKETS,
                  **labels):
        return _NULL_METRIC

    def snapshot(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def render_text(self):
        return ""
