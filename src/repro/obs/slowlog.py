"""Slow-query / slow-flush log.

Requests that cross their threshold are recorded as structured entries
— JSON-representable dicts kept in a bounded in-memory ring and, when
a path is configured, appended as JSONL (one object per line, append-
only, safe to tail). Slow queries embed the exact plan the cost-based
planner recorded for that execution (the same shape ``explain``
returns), so a slow entry answers "which route did it take and why"
without re-running anything; slow flushes embed the per-stage timing
map (reduce / wal-append / fsync-wait / apply / index-derive /
publish).

Thresholds default to ``None`` — disabled. The hot-path cost of a
disabled log is one comparison.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque

#: Default number of entries retained in memory.
DEFAULT_CAPACITY = 256


class SlowLog:
    """Threshold-gated structured log of slow queries and flushes."""

    def __init__(self, slow_query_s=None, slow_flush_s=None, path=None,
                 capacity=DEFAULT_CAPACITY):
        self.slow_query_s = slow_query_s
        self.slow_flush_s = slow_flush_s
        self.path = path
        self._lock = threading.Lock()
        self._ring = deque(maxlen=capacity)

    # -- recording -----------------------------------------------------------

    def note_query(self, doc_id, path, duration_s, plan,
                   trace_id=None):
        """Record a query if it crossed ``slow_query_s``; ``plan`` is
        the planner's recorded plan for this execution."""
        if self.slow_query_s is None or duration_s < self.slow_query_s:
            return False
        self._record({"kind": "query", "ts": time.time(),
                      "doc_id": doc_id, "path": path,
                      "duration_s": round(duration_s, 9),
                      "trace_id": trace_id, "plan": plan})
        return True

    def note_flush(self, doc_id, version, duration_s, stages,
                   trace_id=None):
        """Record a flush if it crossed ``slow_flush_s``; ``stages``
        maps stage name -> seconds."""
        if self.slow_flush_s is None or duration_s < self.slow_flush_s:
            return False
        self._record({"kind": "flush", "ts": time.time(),
                      "doc_id": doc_id, "version": version,
                      "duration_s": round(duration_s, 9),
                      "trace_id": trace_id,
                      "stages": {name: round(value, 9)
                                 for name, value in stages.items()}})
        return True

    def _record(self, entry):
        with self._lock:
            self._ring.append(entry)
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry, sort_keys=True))
                    handle.write("\n")

    # -- reads ---------------------------------------------------------------

    def recent(self, limit=None):
        """Most recent entries, newest last."""
        with self._lock:
            entries = list(self._ring)
        if limit is not None:
            entries = entries[-int(limit):]
        return entries
