"""The transport-neutral command core over one :class:`DocumentStore`.

Every transport the store speaks — the asyncio network server
(:mod:`repro.api.server`), the line-oriented compatibility protocol
(:mod:`repro.store.service`) — routes its commands through one
:class:`StoreDispatcher`: structured arguments in, JSON-representable
dicts out, :class:`~repro.errors.ReproError` subclasses raised on
failure (each carrying its stable ``code``). The transports only
(de)serialize; the command semantics, argument validation and result
shapes live here once, so the wire protocol and the line protocol can
never drift apart.
"""

from __future__ import annotations

from repro.errors import (
    ClusterError,
    DurabilityError,
    NotLeaderError,
    ProtocolError,
)
from repro.pul.serialize import pul_from_xml


def stats_payload(stats, uptime_seconds=None):
    """The shared machine-readable form of per-document counters: one
    serializer for the line protocol's ``--json`` form and the network
    protocol's ``stats`` result. ``uptime_seconds`` (when known) rides
    at the top level next to the per-document entries."""
    payload = {"stats": [dict(entry) for entry in stats]}
    if uptime_seconds is not None:
        payload["uptime_seconds"] = round(uptime_seconds, 3)
    return payload


class StoreDispatcher:
    """Structured command surface shared by every transport."""

    def __init__(self, store=None):
        if store is None:
            # imported lazily: repro.store.service (loaded by the
            # repro.store package) imports this module, so a top-level
            # import of repro.store.store here would be circular
            from repro.store.store import DocumentStore
            store = DocumentStore()
        self.store = store

    # -- documents -----------------------------------------------------------

    def open(self, doc_id, xml):
        """Make ``xml`` (document text) resident under ``doc_id``."""
        entry = self.store.open(doc_id, xml)
        return {"doc_id": doc_id, "nodes": len(entry.document),
                "version": entry.version}

    def docs(self):
        return {"docs": self.store.doc_ids()}

    def stats(self, doc_id=None):
        uptime = getattr(self.store, "uptime_seconds", None)
        uptime = uptime() if callable(uptime) else None
        if doc_id is not None:
            payload = stats_payload([self.store.stats(doc_id)],
                                    uptime_seconds=uptime)
        else:
            payload = stats_payload(self.store.stats(),
                                    uptime_seconds=uptime)
        replication = self._replication_block()
        if replication is not None:
            payload["replication"] = replication
        return payload

    def metrics(self, format=None, traces=None, slow=None):
        """The observability surface: the store's metric snapshot
        (plus uptime), optionally the last ``traces`` recorded span
        trees and ``slow`` slow-log entries, or — with
        ``format="prometheus"`` — ``{"text": ...}`` carrying the text
        exposition."""
        if format not in (None, "json", "prometheus"):
            raise ProtocolError(
                "metrics format must be \"json\" or \"prometheus\", "
                "got {!r}".format(format))
        if format == "prometheus":
            return {"text": self.store.metrics_text()}
        return {
            **self.store.metrics_snapshot(
                traces=self._bounded_count("traces", traces),
                slow=self._bounded_count("slow", slow))}

    @staticmethod
    def _bounded_count(name, value):
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int) \
                or value < 0:
            raise ProtocolError(
                "metrics \"{}\" must be a non-negative integer, got "
                "{!r}".format(name, value))
        return value

    def text(self, doc_id):
        text, version = self.store.text_version(doc_id)
        return {"doc_id": doc_id, "text": text, "version": version}

    def query(self, doc_id, path):
        """Evaluate a read-only path expression against the resident
        document (replica-safe: queues nothing, mutates nothing)."""
        if not isinstance(path, str):
            raise ProtocolError(
                "query needs the path expression as text, got "
                "{}".format(type(path).__name__))
        return self.store.query(doc_id, path)

    def explain(self, doc_id, path):
        """Run ``path`` and return the plan the cost model chose —
        per step: index-scan vs. walk, bucket and estimate sizes —
        without the serialized nodes (replica-safe like ``query``)."""
        if not isinstance(path, str):
            raise ProtocolError(
                "explain needs the path expression as text, got "
                "{}".format(type(path).__name__))
        return self.store.explain(doc_id, path)

    # -- submission ----------------------------------------------------------

    def submit(self, doc_id, pul, client=None):
        """Queue a PUL (exchange-format XML text) against ``doc_id``."""
        if not isinstance(pul, str):
            raise ProtocolError(
                "submit needs the PUL exchange document as text, got "
                "{}".format(type(pul).__name__))
        parsed = pul_from_xml(pul)
        depth = self.store.submit(doc_id, parsed, client=client)
        return {"doc_id": doc_id, "ops": len(parsed), "depth": depth}

    def submit_xquery(self, doc_id, query, client=None):
        """Compile an XQuery Update expression server-side and queue
        the resulting PUL (the client never builds a PUL itself)."""
        if not isinstance(query, str):
            raise ProtocolError(
                "submit_xquery needs the expression as text, got "
                "{}".format(type(query).__name__))
        depth, ops = self.store.submit_xquery(doc_id, query,
                                              client=client)
        return {"doc_id": doc_id, "ops": ops, "depth": depth}

    def discard(self, doc_id):
        return {"doc_id": doc_id,
                "discarded": self.store.discard_pending(doc_id)}

    # -- batch execution -----------------------------------------------------

    def flush(self, doc_id):
        result = self.store.flush(doc_id)
        if result is None:
            return {"doc_id": doc_id, "flushed": False}
        return {"doc_id": doc_id, "flushed": True,
                **self._batch_result(result)}

    def flush_all(self):
        results = self.store.flush_all()
        return {"batches": len(results),
                "ops": sum(r.reduced_ops for r in results),
                "results": [self._batch_result(r) for r in results]}

    @staticmethod
    def _batch_result(result):
        return {"version": result.version, "clients": result.clients,
                "submitted_ops": result.submitted_ops,
                "reduced_ops": result.reduced_ops,
                "relabel": result.relabel,
                "max_code_length": result.max_code_length}

    # -- replication (see repro.cluster) --------------------------------------

    def _replication_block(self):
        """The ``replication`` section of extended ``stats``: role,
        stream position, per-subscriber lag on a leader; cursor, leader
        address and sync health on a replica. ``None`` on a plain
        single-node store, so the pre-cluster result shape is
        unchanged."""
        store = self.store
        if getattr(store, "role", "leader") == "replica":
            block = {"role": "replica",
                     "leader": store.leader_address,
                     "applied_seq": store.applied_seq,
                     "stream": store.stream_id}
            sync = getattr(store, "_sync", None)
            if sync is not None:
                block.update(sync.status())
            return block
        if store.replication is not None:
            block = {"role": "leader"}
            block.update(store.replication.stats())
            return block
        return None

    def _source(self):
        source = self.store.replication
        if source is None:
            if getattr(self.store, "role", "leader") == "replica":
                raise NotLeaderError(self.store.leader_address,
                                     operation="the replication stream")
            raise ClusterError(
                "replication is not enabled on this node (serve it "
                "with `repro cluster serve --role leader`)")
        return source

    def replicate_subscribe(self, replica=None):
        """Register a follower; returns the stream shape it must join
        (or bootstrap against)."""
        if replica is not None and not isinstance(replica, str):
            raise ProtocolError(
                "replicate-subscribe \"replica\" must be a string")
        return self._source().subscribe(replica=replica)

    def wal_segment(self, from_seq, replica=None, max_records=None,
                    wait_s=None):
        """Stream log records from ``from_seq`` on (long-poll up to
        ``wait_s`` when caught up)."""
        from repro.cluster.feed import DEFAULT_SEGMENT_RECORDS

        records, next_seq, end_seq = self._source().read_from(
            from_seq,
            limit=(DEFAULT_SEGMENT_RECORDS if max_records is None
                   else max_records),
            wait_s=0.0 if wait_s is None else wait_s,
            replica=replica)
        return {"from_seq": from_seq, "records": records,
                "next_seq": next_seq, "end_seq": end_seq}

    def snapshot_transfer(self):
        """Full resident state plus the exact stream position it
        describes — the replica bootstrap payload."""
        source = self._source()
        payloads, seq = self.store.capture_state()
        return {"docs": payloads, "seq": seq, "stream": source.stream_id}

    # -- CDC & bulk ETL (see repro.cdc / repro.etl) ---------------------------

    def subscribe(self, from_token=None, doc_ids=None, decode=None,
                  max_events=None, wait_s=None, subscriber=None):
        """One subscription poll against the change feed: events at or
        after ``from_token`` (the live tail when omitted), filtered to
        ``doc_ids``, decoded (PUL op summaries) unless ``decode`` is
        false. Stateless server-side — the resume token in the result
        is the whole subscription state."""
        # imported lazily, like the cluster surface below
        from repro.cdc.feed import ChangeFeed

        if from_token is not None and not isinstance(from_token, str):
            raise ProtocolError("subscribe \"from_token\" must be a "
                                "string")
        if doc_ids is not None and not isinstance(doc_ids,
                                                  (list, tuple)):
            raise ProtocolError("subscribe \"doc_ids\" must be a list")
        if subscriber is not None and not isinstance(subscriber, str):
            raise ProtocolError("subscribe \"subscriber\" must be a "
                                "string")
        feed = ChangeFeed(self._source())
        return feed.read(
            from_token=from_token, doc_ids=doc_ids,
            decode=True if decode is None else bool(decode),
            max_events=max_events,
            wait_s=0.0 if wait_s is None else wait_s,
            subscriber=subscriber)

    def unsubscribe(self, subscriber):
        """Drop a named subscriber from the feed's lag accounting."""
        if not isinstance(subscriber, str):
            raise ProtocolError("unsubscribe \"subscriber\" must be a "
                                "string")
        return {"subscriber": subscriber,
                "forgotten": self._source().forget_subscriber(
                    subscriber)}

    def bulk_import(self, docs):
        """Load one ETL chunk (``[{"doc_id", "xml"}]``) atomically
        under a single group fsync."""
        if not isinstance(docs, (list, tuple)):
            raise ProtocolError(
                "bulk-import needs \"docs\" as a list of "
                "{doc_id, xml} objects")
        for doc in docs:
            if not isinstance(doc, dict):
                raise ProtocolError(
                    "bulk-import documents must be objects, got "
                    "{}".format(type(doc).__name__))
        return self.store.bulk_load(docs)

    def export(self, doc_ids=None, cursor=None, max_docs=None,
               format=None):
        """One page of a filtered, resumable corpus export, read from
        pinned MVCC versions; carries the CDC resume token matching
        the exported state when replication is enabled."""
        from repro.cdc.tokens import encode_token

        if doc_ids is not None and not isinstance(doc_ids,
                                                  (list, tuple)):
            raise ProtocolError("export \"doc_ids\" must be a list")
        result = self.store.export_state(
            doc_ids=doc_ids, cursor=cursor, limit=max_docs,
            form="xml" if format is None else format)
        result["token"] = (
            None if result["stream"] is None
            else encode_token(result["stream"], result["seq"]))
        return result

    def promote(self, allow_non_durable=None):
        """Convert a replica into a leader (manual failover)."""
        promote = getattr(self.store, "promote", None)
        if promote is None:
            raise ClusterError(
                "this node is not a replica (nothing to promote)")
        return promote(allow_non_durable=bool(allow_non_durable))

    # -- durability ----------------------------------------------------------

    def snapshot(self):
        if not self.store.durability_policy.durable:
            raise DurabilityError(
                "store is not durable (no snapshot written)")
        generation = self.store.snapshot()
        if generation is None:
            # the non-blocking race against an in-flight compaction —
            # a transient condition, not a configuration problem
            raise DurabilityError(
                "snapshot skipped: another compaction is in flight "
                "(retry)")
        return {"generation": generation}
