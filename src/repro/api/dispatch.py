"""The transport-neutral command core over one :class:`DocumentStore`.

Every transport the store speaks — the asyncio network server
(:mod:`repro.api.server`), the line-oriented compatibility protocol
(:mod:`repro.store.service`) — routes its commands through one
:class:`StoreDispatcher`: structured arguments in, JSON-representable
dicts out, :class:`~repro.errors.ReproError` subclasses raised on
failure (each carrying its stable ``code``). The transports only
(de)serialize; the command semantics, argument validation and result
shapes live here once, so the wire protocol and the line protocol can
never drift apart.
"""

from __future__ import annotations

from repro.errors import DurabilityError, ProtocolError
from repro.pul.serialize import pul_from_xml


def stats_payload(stats):
    """The shared machine-readable form of per-document counters: one
    serializer for the line protocol's ``--json`` form and the network
    protocol's ``stats`` result."""
    return {"stats": [dict(entry) for entry in stats]}


class StoreDispatcher:
    """Structured command surface shared by every transport."""

    def __init__(self, store=None):
        if store is None:
            # imported lazily: repro.store.service (loaded by the
            # repro.store package) imports this module, so a top-level
            # import of repro.store.store here would be circular
            from repro.store.store import DocumentStore
            store = DocumentStore()
        self.store = store

    # -- documents -----------------------------------------------------------

    def open(self, doc_id, xml):
        """Make ``xml`` (document text) resident under ``doc_id``."""
        entry = self.store.open(doc_id, xml)
        return {"doc_id": doc_id, "nodes": len(entry.document),
                "version": entry.version}

    def docs(self):
        return {"docs": self.store.doc_ids()}

    def stats(self, doc_id=None):
        if doc_id is not None:
            return stats_payload([self.store.stats(doc_id)])
        return stats_payload(self.store.stats())

    def text(self, doc_id):
        return {"doc_id": doc_id, "text": self.store.text(doc_id)}

    # -- submission ----------------------------------------------------------

    def submit(self, doc_id, pul, client=None):
        """Queue a PUL (exchange-format XML text) against ``doc_id``."""
        if not isinstance(pul, str):
            raise ProtocolError(
                "submit needs the PUL exchange document as text, got "
                "{}".format(type(pul).__name__))
        parsed = pul_from_xml(pul)
        depth = self.store.submit(doc_id, parsed, client=client)
        return {"doc_id": doc_id, "ops": len(parsed), "depth": depth}

    def submit_xquery(self, doc_id, query, client=None):
        """Compile an XQuery Update expression server-side and queue
        the resulting PUL (the client never builds a PUL itself)."""
        if not isinstance(query, str):
            raise ProtocolError(
                "submit_xquery needs the expression as text, got "
                "{}".format(type(query).__name__))
        depth, ops = self.store.submit_xquery(doc_id, query,
                                              client=client)
        return {"doc_id": doc_id, "ops": ops, "depth": depth}

    def discard(self, doc_id):
        return {"doc_id": doc_id,
                "discarded": self.store.discard_pending(doc_id)}

    # -- batch execution -----------------------------------------------------

    def flush(self, doc_id):
        result = self.store.flush(doc_id)
        if result is None:
            return {"doc_id": doc_id, "flushed": False}
        return {"doc_id": doc_id, "flushed": True,
                **self._batch_result(result)}

    def flush_all(self):
        results = self.store.flush_all()
        return {"batches": len(results),
                "ops": sum(r.reduced_ops for r in results),
                "results": [self._batch_result(r) for r in results]}

    @staticmethod
    def _batch_result(result):
        return {"version": result.version, "clients": result.clients,
                "submitted_ops": result.submitted_ops,
                "reduced_ops": result.reduced_ops,
                "relabel": result.relabel,
                "max_code_length": result.max_code_length}

    # -- durability ----------------------------------------------------------

    def snapshot(self):
        if not self.store.durability_policy.durable:
            raise DurabilityError(
                "store is not durable (no snapshot written)")
        generation = self.store.snapshot()
        if generation is None:
            # the non-blocking race against an in-flight compaction —
            # a transient condition, not a configuration problem
            raise DurabilityError(
                "snapshot skipped: another compaction is in flight "
                "(retry)")
        return {"generation": generation}
