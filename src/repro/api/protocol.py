"""The versioned, length-prefixed JSON wire protocol.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON::

    +--------------+------------------------+
    | length (u32) | JSON payload (UTF-8)   |
    +--------------+------------------------+

The length covers the payload only, must be at least 2 (the smallest
JSON object, ``{}``) and at most :data:`MAX_FRAME` — a peer announcing
more is malformed and the decoder fails *before* buffering, so a
garbage header can never balloon memory. Framing carries no checksum on
purpose: the protocol runs over stream transports (TCP, Unix sockets)
that already guarantee integrity; torn frames only appear at connection
teardown and are surfaced as a clean "incomplete trailing frame".

Requests and responses are JSON objects:

``{"id": n, "op": name, "args": {...}}``
    a request; ``id`` is an arbitrary JSON value echoed verbatim in the
    response (clients use a monotonically increasing integer so
    pipelined responses can be correlated), ``op`` names a command of
    the dispatch table, ``args`` is optional;
``{"id": n, "ok": true, "result": {...}}``
    success — ``result`` is the command's structured result;
``{"id": n, "ok": false, "error": {"code", "message", "details"}}``
    failure — the error object is :meth:`ReproError.to_dict` output and
    reconstructs client-side via :meth:`ReproError.from_dict`.

Version negotiation is the first exchange on every connection: the
client's first frame must be a ``hello`` request announcing the
protocol versions it speaks; the server picks the highest version both
sides share and echoes it (plus its software version) in the response.
A connection with no shared version is answered with a ``protocol``
error and closed. Everything after the hello is ordinary requests under
the negotiated version.
"""

from __future__ import annotations

import json
import struct

from repro.errors import ProtocolError, ReproError

#: protocol versions this implementation can speak, ascending. A wire
#: change that an old peer could misread gets a new number appended
#: here; dropping support for an old number removes it.
SUPPORTED_VERSIONS = (1,)

#: the version this implementation prefers (the newest supported)
PROTOCOL_VERSION = SUPPORTED_VERSIONS[-1]

#: upper bound on one frame's payload — a request carries at most one
#: document or one coalesced batch, far below this
MAX_FRAME = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: byte length of the frame header
HEADER_SIZE = _LENGTH.size


def encode_frame(obj):
    """Serialize ``obj`` (a JSON-representable dict) into one frame."""
    payload = json.dumps(obj, separators=(",", ":"),
                         sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            "frame payload of {} bytes exceeds the {} byte bound".format(
                len(payload), MAX_FRAME))
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload):
    """Decode one frame payload into its JSON object."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(
            "frame payload is not valid JSON: {}".format(exc)) from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            "frame payload must be a JSON object, got {}".format(
                type(obj).__name__))
    return obj


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Feed arbitrary chunks with :meth:`feed`; complete frames come back
    decoded, partial ones wait for more bytes. A malformed header
    (length 0..1 or beyond :data:`MAX_FRAME`) raises
    :class:`ProtocolError` immediately — the stream has lost framing
    and cannot be resynchronized, so the connection must be dropped.
    """

    __slots__ = ("_buffer",)

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data):
        """Consume ``data``; returns the list of decoded objects."""
        self._buffer.extend(data)
        frames = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                break
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length < 2 or length > MAX_FRAME:
                raise ProtocolError(
                    "invalid frame length {} (bounds 2..{})".format(
                        length, MAX_FRAME))
            end = HEADER_SIZE + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[HEADER_SIZE:end])
            del self._buffer[:end]
            frames.append(decode_payload(payload))
        return frames

    @property
    def pending_bytes(self):
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)

    def at_boundary(self):
        """True when the stream ended exactly between frames (EOF here
        is a clean close; mid-frame EOF is a torn trailing frame)."""
        return not self._buffer


# -- request / response shapes -----------------------------------------------


def request(request_id, op, args=None):
    """Build a request object."""
    message = {"id": request_id, "op": op}
    if args:
        message["args"] = args
    return message


def hello_request(request_id, client=None, versions=SUPPORTED_VERSIONS):
    """The negotiation request that must open every connection."""
    args = {"versions": list(versions)}
    if client is not None:
        args["client"] = client
    return request(request_id, "hello", args)


def ok_response(request_id, result):
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, error):
    """Wrap ``error`` (a :class:`ReproError` or a plain message) into a
    failure response."""
    if isinstance(error, ReproError):
        payload = error.to_dict()
    elif isinstance(error, OSError):
        payload = {"code": "os", "message": str(error)}
    else:
        payload = {"code": "repro", "message": str(error)}
    return {"id": request_id, "ok": False, "error": payload}


def parse_request(message):
    """Validate a decoded request; returns ``(id, op, args)``."""
    if "op" not in message:
        raise ProtocolError("request carries no \"op\" field")
    op = message["op"]
    if not isinstance(op, str):
        raise ProtocolError(
            "request \"op\" must be a string, got {!r}".format(op))
    args = message.get("args", {})
    if not isinstance(args, dict):
        raise ProtocolError(
            "request \"args\" must be an object, got {}".format(
                type(args).__name__))
    return message.get("id"), op, args


def parse_response(message):
    """Validate a decoded response; returns ``(id, result)`` or raises
    the reconstructed :class:`ReproError` subclass on ``ok: false``."""
    if "ok" not in message:
        raise ProtocolError("response carries no \"ok\" field")
    if message["ok"]:
        return message.get("id"), message.get("result")
    error = message.get("error") or {}
    if not isinstance(error, dict):
        error = {"message": str(error)}
    raise ReproError.from_dict(error)


def negotiate_version(offered):
    """Pick the newest mutually supported version from the client's
    ``offered`` list; raises :class:`ProtocolError` when there is none
    (or the offer is malformed)."""
    if not isinstance(offered, (list, tuple)) or not all(
            isinstance(v, int) and not isinstance(v, bool)
            for v in offered):
        raise ProtocolError(
            "hello must offer a list of integer protocol versions, "
            "got {!r}".format(offered))
    shared = set(offered) & set(SUPPORTED_VERSIONS)
    if not shared:
        raise ProtocolError(
            "no shared protocol version: peer offers {}, server "
            "supports {}".format(sorted(offered),
                                 list(SUPPORTED_VERSIONS)))
    return max(shared)
