"""The versioned, length-prefixed JSON wire protocol.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON::

    +--------------+------------------------+
    | length (u32) | JSON payload (UTF-8)   |
    +--------------+------------------------+

The length covers the payload only, must be at least 2 (the smallest
JSON object, ``{}``) and at most :data:`MAX_FRAME` — a peer announcing
more is malformed and the decoder fails *before* buffering, so a
garbage header can never balloon memory. Framing carries no checksum on
purpose: the protocol runs over stream transports (TCP, Unix sockets)
that already guarantee integrity; torn frames only appear at connection
teardown and are surfaced as a clean "incomplete trailing frame".

Requests and responses are JSON objects:

``{"id": n, "op": name, "args": {...}}``
    a request; ``id`` is an arbitrary JSON value echoed verbatim in the
    response (clients use a monotonically increasing integer so
    pipelined responses can be correlated), ``op`` names a command of
    the dispatch table, ``args`` is optional;
``{"id": n, "ok": true, "result": {...}}``
    success — ``result`` is the command's structured result;
``{"id": n, "ok": false, "error": {"code", "message", "details"}}``
    failure — the error object is :meth:`ReproError.to_dict` output and
    reconstructs client-side via :meth:`ReproError.from_dict`.

Version negotiation is the first exchange on every connection: the
client's first frame must be a ``hello`` request announcing the
protocol versions it speaks; the server picks the highest version both
sides share and echoes it (plus its software version) in the response.
A connection with no shared version is answered with a ``protocol``
error and closed. Everything after the hello is ordinary requests under
the negotiated version.

**Protocol v2 — the binary frame codec.** The hello exchange always
runs as v1 JSON (it is what an unknown peer is guaranteed to read);
when both sides support v2, every frame *after* the hello response
carries a struct-packed binary payload instead of JSON::

    +--------------+----------+-------------------------------------+
    | length (u32) | kind(u8) | kind-specific struct-packed fields  |
    +--------------+----------+-------------------------------------+

    kind 0x01 request:   id(value) op-code(u8) args(value)
                         op-code 0xFF is followed by the op name as a
                         string value (ops outside the table)
    kind 0x02 ok:        id(value) result(value)
    kind 0x03 error:     id(value) error-object(value)
    kind 0x04 traced:    id(value) trace-id(value) op-code(u8)
                         args(value) — a request carrying a trace id.
                         Feature-negotiated: clients emit it only to
                         servers whose hello result advertises
                         ``"trace"`` in ``features``, so a pre-trace
                         peer never sees the kind. (Under v1 the trace
                         id rides as an extra top-level ``"trace"``
                         key, which old servers ignore by design.)

``value`` is a type-tagged binary term (see ``_encode_value``): the
JSON-representable scalars plus lists and string-keyed maps, with
strings as raw length-prefixed UTF-8. That raw-string rule is the
codec's point: v1 must JSON-escape-and-scan every document and PUL
payload it carries, v2 copies the bytes — the hot ops (``submit``,
``text``, ``wal-segment``) move XML by the kilobyte. Decoded v2 frames
reconstruct exactly the v1 message dicts, so dispatch, clients and the
error surface are codec-neutral.
"""

from __future__ import annotations

import json
import struct

from repro.api.ops import OP_CODES
from repro.errors import ProtocolError, ReproError

#: protocol versions this implementation can speak, ascending. A wire
#: change that an old peer could misread gets a new number appended
#: here; dropping support for an old number removes it.
SUPPORTED_VERSIONS = (1, 2)

#: the version this implementation prefers (the newest supported)
PROTOCOL_VERSION = SUPPORTED_VERSIONS[-1]

#: upper bound on one frame's payload — a request carries at most one
#: document or one coalesced batch, far below this
MAX_FRAME = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: byte length of the frame header
HEADER_SIZE = _LENGTH.size


def encode_frame(obj, version=1):
    """Serialize ``obj`` (a message dict) into one frame under
    ``version``'s codec (1 = JSON, 2 = binary)."""
    if version >= 2:
        payload = bytes(_encode_message_v2(obj))
    else:
        payload = json.dumps(obj, separators=(",", ":"),
                             sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            "frame payload of {} bytes exceeds the {} byte bound".format(
                len(payload), MAX_FRAME))
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload, version=1):
    """Decode one frame payload into its message dict under
    ``version``'s codec."""
    if version >= 2:
        return _decode_message_v2(payload)
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(
            "frame payload is not valid JSON: {}".format(exc)) from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            "frame payload must be a JSON object, got {}".format(
                type(obj).__name__))
    return obj


# -- the v2 binary codec ------------------------------------------------------

_V2_REQUEST = 0x01
_V2_OK = 0x02
_V2_ERROR = 0x03
_V2_TRACED = 0x04

#: request op names packed to one byte; part of the wire spec (see
#: api/README.md) — codes are append-only, never reused. Declared in
#: the operation registry (:mod:`repro.api.ops`), the single source of
#: truth the dispatch table and the generated docs share; re-exported
#: here because this module *is* the wire spec.
OP_NAMES = {code: name for name, code in OP_CODES.items()}

#: op-code escape: the op travels as a string value (future ops an
#: older table does not know keep working)
_OP_NAMED = 0xFF

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_LIST = 0x06
_T_DICT = 0x07
_T_BIGINT = 0x08

_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _encode_value(value, out):
    """Append one type-tagged binary term to ``out`` (a bytearray)."""
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out.append(_T_INT)
            out += _I64.pack(value)
        else:
            # JSON integers are unbounded; the escape keeps parity
            text = str(value).encode("ascii")
            out.append(_T_BIGINT)
            out += _U32.pack(len(text))
            out += text
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(data))
        out += data
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out += _U32.pack(len(value))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise ProtocolError(
                    "map keys must be strings, got {!r}".format(key))
            data = key.encode("utf-8")
            out += _U32.pack(len(data))
            out += data
            _encode_value(item, out)
    else:
        raise ProtocolError(
            "value of type {} is not wire-encodable".format(
                type(value).__name__))
    return out


def _decode_value(data, offset):
    """Decode one term at ``offset``; returns ``(value, next offset)``."""
    try:
        tag = data[offset]
        offset += 1
        if tag == _T_NONE:
            return None, offset
        if tag == _T_TRUE:
            return True, offset
        if tag == _T_FALSE:
            return False, offset
        if tag == _T_INT:
            return _I64.unpack_from(data, offset)[0], offset + 8
        if tag == _T_FLOAT:
            return _F64.unpack_from(data, offset)[0], offset + 8
        if tag == _T_STR or tag == _T_BIGINT:
            (length,) = _U32.unpack_from(data, offset)
            offset += 4
            end = offset + length
            if end > len(data):
                raise ProtocolError("truncated string term")
            text = bytes(data[offset:end]).decode("utf-8")
            return (int(text) if tag == _T_BIGINT else text), end
        if tag == _T_LIST:
            (count,) = _U32.unpack_from(data, offset)
            offset += 4
            if count > len(data) - offset:
                raise ProtocolError("list count exceeds the payload")
            items = []
            for __ in range(count):
                item, offset = _decode_value(data, offset)
                items.append(item)
            return items, offset
        if tag == _T_DICT:
            (count,) = _U32.unpack_from(data, offset)
            offset += 4
            if count > len(data) - offset:
                raise ProtocolError("map count exceeds the payload")
            mapping = {}
            for __ in range(count):
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                end = offset + length
                if end > len(data):
                    raise ProtocolError("truncated map key")
                key = bytes(data[offset:end]).decode("utf-8")
                mapping[key], offset = _decode_value(data, end)
            return mapping, offset
    except (IndexError, struct.error, UnicodeDecodeError,
            ValueError) as exc:
        raise ProtocolError(
            "malformed binary term: {}".format(exc)) from exc
    raise ProtocolError("unknown binary type tag 0x{:02x}".format(tag))


def _encode_message_v2(message):
    """A message dict (the v1 JSON shape) as a v2 binary payload."""
    out = bytearray()
    if "op" in message:
        trace = message.get("trace")
        if trace is not None:
            out.append(_V2_TRACED)
            _encode_value(message.get("id"), out)
            _encode_value(trace, out)
        else:
            out.append(_V2_REQUEST)
            _encode_value(message.get("id"), out)
        code = OP_CODES.get(message["op"])
        if code is None:
            out.append(_OP_NAMED)
            _encode_value(message["op"], out)
        else:
            out.append(code)
        _encode_value(message.get("args", {}), out)
    elif "ok" in message:
        if message["ok"]:
            out.append(_V2_OK)
            _encode_value(message.get("id"), out)
            _encode_value(message.get("result"), out)
        else:
            out.append(_V2_ERROR)
            _encode_value(message.get("id"), out)
            _encode_value(message.get("error") or {}, out)
    else:
        raise ProtocolError(
            "message is neither a request nor a response: {!r}".format(
                message))
    return out


def _decode_message_v2(payload):
    """A v2 binary payload back into the v1-shaped message dict, so
    everything above the codec stays version-blind."""
    if not payload:
        raise ProtocolError("empty binary frame")
    kind = payload[0]
    if kind == _V2_REQUEST or kind == _V2_TRACED:
        request_id, offset = _decode_value(payload, 1)
        trace = None
        if kind == _V2_TRACED:
            trace, offset = _decode_value(payload, offset)
            if not isinstance(trace, str):
                raise ProtocolError(
                    "trace id must be a string, got {!r}".format(trace))
        try:
            op_code = payload[offset]
        except IndexError:
            raise ProtocolError("request frame ends before its op") \
                from None
        offset += 1
        if op_code == _OP_NAMED:
            op, offset = _decode_value(payload, offset)
            if not isinstance(op, str):
                raise ProtocolError(
                    "escaped op must be a string, got {!r}".format(op))
        else:
            op = OP_NAMES.get(op_code)
            if op is None:
                raise ProtocolError(
                    "unknown op code 0x{:02x}".format(op_code))
        args, offset = _decode_value(payload, offset)
        if not isinstance(args, dict):
            raise ProtocolError("request args must be a map")
        _expect_end(payload, offset)
        message = {"id": request_id, "op": op}
        if trace is not None:
            message["trace"] = trace
        if args:
            message["args"] = args
        return message
    if kind == _V2_OK:
        request_id, offset = _decode_value(payload, 1)
        result, offset = _decode_value(payload, offset)
        _expect_end(payload, offset)
        return {"id": request_id, "ok": True, "result": result}
    if kind == _V2_ERROR:
        request_id, offset = _decode_value(payload, 1)
        error, offset = _decode_value(payload, offset)
        _expect_end(payload, offset)
        if not isinstance(error, dict):
            error = {"message": str(error)}
        return {"id": request_id, "ok": False, "error": error}
    raise ProtocolError(
        "unknown binary frame kind 0x{:02x}".format(kind))


def _expect_end(payload, offset):
    if offset != len(payload):
        raise ProtocolError(
            "{} trailing byte(s) after the message".format(
                len(payload) - offset))


#: buffered-prefix size that triggers compaction in the decoder; below
#: it the consumed prefix is just cursor-skipped
_COMPACT_THRESHOLD = 64 * 1024


class FrameDecoder:
    """Incremental frame decoder for a byte stream.

    Feed arbitrary chunks with :meth:`feed`; complete frames come back
    decoded, partial ones wait for more bytes. A malformed header
    (length 0..1 or beyond :data:`MAX_FRAME`) raises
    :class:`ProtocolError` immediately — the stream has lost framing
    and cannot be resynchronized, so the connection must be dropped.

    The decoder starts in v1 (JSON); after the hello negotiation the
    connection switches it with :meth:`use_version` and every later
    frame decodes under the agreed codec.

    Consumed frames advance a cursor instead of deleting the buffer
    prefix per frame — ``del buffer[:end]`` is O(buffer) *each*, which
    goes quadratic when one chunk carries many small frames (the
    pipelining hot path). The prefix is dropped once per feed, and only
    compacted mid-stream once it exceeds a threshold.
    """

    __slots__ = ("_buffer", "_offset", "version")

    def __init__(self, version=1):
        self._buffer = bytearray()
        self._offset = 0
        self.version = version

    def use_version(self, version):
        """Switch the payload codec (after a completed negotiation)."""
        self.version = version

    def feed(self, data):
        """Consume ``data``; returns the list of decoded objects."""
        buffer = self._buffer
        buffer.extend(data)
        frames = []
        total = len(buffer)
        offset = self._offset
        while True:
            if total - offset < HEADER_SIZE:
                break
            (length,) = _LENGTH.unpack_from(buffer, offset)
            if length < 2 or length > MAX_FRAME:
                raise ProtocolError(
                    "invalid frame length {} (bounds 2..{})".format(
                        length, MAX_FRAME))
            end = offset + HEADER_SIZE + length
            if total < end:
                break
            payload = bytes(buffer[offset + HEADER_SIZE:end])
            offset = self._offset = end
            frames.append(decode_payload(payload, self.version))
        if offset == total:
            del buffer[:]
            self._offset = 0
        elif offset >= _COMPACT_THRESHOLD:
            del buffer[:offset]
            self._offset = 0
        return frames

    @property
    def pending_bytes(self):
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer) - self._offset

    def at_boundary(self):
        """True when the stream ended exactly between frames (EOF here
        is a clean close; mid-frame EOF is a torn trailing frame)."""
        return not self.pending_bytes


# -- request / response shapes -----------------------------------------------


def request(request_id, op, args=None, trace=None):
    """Build a request object. ``trace`` attaches a trace id to the
    envelope (an extra top-level key under v1 — ignored by pre-trace
    servers — and the 0x04 traced frame kind under v2)."""
    message = {"id": request_id, "op": op}
    if trace is not None:
        message["trace"] = trace
    if args:
        message["args"] = args
    return message


def hello_request(request_id, client=None, versions=SUPPORTED_VERSIONS):
    """The negotiation request that must open every connection."""
    args = {"versions": list(versions)}
    if client is not None:
        args["client"] = client
    return request(request_id, "hello", args)


def ok_response(request_id, result):
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, error):
    """Wrap ``error`` (a :class:`ReproError` or a plain message) into a
    failure response."""
    if isinstance(error, ReproError):
        payload = error.to_dict()
    elif isinstance(error, OSError):
        payload = {"code": "os", "message": str(error)}
    else:
        payload = {"code": "repro", "message": str(error)}
    return {"id": request_id, "ok": False, "error": payload}


def parse_request(message):
    """Validate a decoded request; returns ``(id, op, args)``."""
    if "op" not in message:
        raise ProtocolError("request carries no \"op\" field")
    op = message["op"]
    if not isinstance(op, str):
        raise ProtocolError(
            "request \"op\" must be a string, got {!r}".format(op))
    args = message.get("args", {})
    if not isinstance(args, dict):
        raise ProtocolError(
            "request \"args\" must be an object, got {}".format(
                type(args).__name__))
    return message.get("id"), op, args


def parse_response(message):
    """Validate a decoded response; returns ``(id, result)`` or raises
    the reconstructed :class:`ReproError` subclass on ``ok: false``."""
    if "ok" not in message:
        raise ProtocolError("response carries no \"ok\" field")
    if message["ok"]:
        return message.get("id"), message.get("result")
    error = message.get("error") or {}
    if not isinstance(error, dict):
        error = {"message": str(error)}
    raise ReproError.from_dict(error)


def negotiate_version(offered):
    """Pick the newest mutually supported version from the client's
    ``offered`` list; raises :class:`ProtocolError` when there is none
    (or the offer is malformed)."""
    if not isinstance(offered, (list, tuple)) or not all(
            isinstance(v, int) and not isinstance(v, bool)
            for v in offered):
        raise ProtocolError(
            "hello must offer a list of integer protocol versions, "
            "got {!r}".format(offered))
    shared = set(offered) & set(SUPPORTED_VERSIONS)
    if not shared:
        raise ProtocolError(
            "no shared protocol version: peer offers {}, server "
            "supports {}".format(sorted(offered),
                                 list(SUPPORTED_VERSIONS)))
    return max(shared)
