"""Typed clients for the store's network protocol.

Two clients with the same method surface — ``open`` / ``submit`` /
``submit_xquery`` / ``flush`` / ``flush_all`` / ``discard`` / ``text``
/ ``stats`` / ``docs`` / ``snapshot`` / ``query`` plus the replication
ops (``replicate_subscribe`` / ``wal_segment`` / ``snapshot_transfer``
/ ``promote``) — over the versioned frame protocol of
:mod:`repro.api.protocol`:

:class:`StoreClient`
    blocking, one socket, strict request/response — the right tool for
    scripts and tests;
:class:`AsyncStoreClient`
    asyncio, pipelined — any number of calls may be in flight at once
    (``await asyncio.gather(*[client.submit(...) ...])``), responses
    are correlated by request id.

Both perform the hello negotiation on connect (the negotiated protocol
version is on :attr:`protocol_version`) and both surface server-side
failures as reconstructed :class:`~repro.errors.ReproError` subclasses:
``except QueryEvaluationError:`` around a remote ``submit_xquery``
works exactly as it does around the local compiler, and the stable
``error.code`` travels with it.

Submissions accept either the PUL exchange document as text or a
:class:`~repro.pul.pul.PUL` object (serialized on the way out) — but
the expression form (:meth:`submit_xquery`) is the preferred surface:
the server compiles it against the resident document, so the client
needs no copy of the tree at all.

**Close semantics (uniform across StoreClient, AsyncStoreClient and
ClusterClient):** every client is a context manager (``with`` /
``async with``); ``close()`` / ``aclose()`` is idempotent, in-flight
requests fail, and **any call after close raises**
``ProtocolError("client is closed")`` — never a raw ``AttributeError``
or a hung socket. ``closed`` reports the state.

**Subscriptions** (PR 8, CDC): :meth:`StoreClient.subscribe` is a sync
generator and :meth:`AsyncStoreClient.subscribe` an async iterator —
``for event in client.subscribe(doc_ids=["d1"])`` long-polls the
server's change feed and yields events as they are published; each
event carries its own resume ``token``. The underlying single-poll op
is :meth:`subscribe_once` on both.
"""

from __future__ import annotations

import asyncio
import socket
import time

from repro.api import protocol
from repro.errors import ConnectionLostError, ProtocolError
from repro.pul.pul import PUL
from repro.pul.serialize import pul_to_xml


def _pul_text(pul):
    return pul_to_xml(pul) if isinstance(pul, PUL) else pul


def _backoff_delays(retries, backoff, max_backoff):
    """The sleep schedule between connect attempts: exponential from
    ``backoff``, capped at ``max_backoff`` — ``retries`` extra attempts
    after the first."""
    for attempt in range(max(0, retries)):
        yield min(backoff * (2 ** attempt), max_backoff)


class _MethodSurface:
    """The shared command surface; subclasses provide ``_call``.

    **Tracing:** every command accepts a reserved ``_trace`` keyword —
    a client-generated trace id (see :func:`repro.obs.new_trace_id`)
    carried in the request envelope so the server records the call as
    a span tree. The id is only put on the wire when the connected
    server advertised ``"trace"`` in its hello ``features`` (old
    servers never see the field).
    """

    @property
    def features(self):
        """The feature names the server advertised at hello
        (empty tuple against pre-observability servers)."""
        info = self.server_info or {}
        return tuple(info.get("features", ()))

    def _outbound_trace(self, trace):
        """The trace id to send — ``None`` unless the caller supplied
        one *and* the server negotiated support for carrying it."""
        if trace is None or "trace" not in self.features:
            return None
        if not isinstance(trace, str) or not trace:
            raise ProtocolError(
                "_trace must be a non-empty string, got "
                "{!r}".format(trace))
        return trace

    def open(self, doc_id, xml, _trace=None):
        """Make document text resident under ``doc_id``."""
        return self._call("open", doc_id=doc_id, xml=xml,
                          _trace=_trace)

    def submit(self, doc_id, pul, client=None, _trace=None):
        """Queue a PUL (exchange text or a :class:`PUL`)."""
        args = {"doc_id": doc_id, "pul": _pul_text(pul)}
        if client is not None:
            args["client"] = client
        return self._call("submit", _trace=_trace, **args)

    def submit_xquery(self, doc_id, query, client=None,
                      _trace=None):
        """Ship an XQuery Update expression; the server compiles it
        against the resident document and queues the resulting PUL."""
        args = {"doc_id": doc_id, "query": query}
        if client is not None:
            args["client"] = client
        return self._call("submit_xquery", _trace=_trace, **args)

    def flush(self, doc_id, _trace=None):
        return self._call("flush", doc_id=doc_id, _trace=_trace)

    def flush_all(self, _trace=None):
        return self._call("flush_all", _trace=_trace)

    def discard(self, doc_id, _trace=None):
        return self._call("discard", doc_id=doc_id, _trace=_trace)

    def text(self, doc_id, _trace=None):
        return self._call("text", doc_id=doc_id, _trace=_trace)

    def stats(self, doc_id=None, _trace=None):
        if doc_id is None:
            return self._call("stats", _trace=_trace)
        return self._call("stats", doc_id=doc_id, _trace=_trace)

    def docs(self, _trace=None):
        return self._call("docs", _trace=_trace)

    def snapshot(self, _trace=None):
        return self._call("snapshot", _trace=_trace)

    def query(self, doc_id, path, _trace=None):
        """Evaluate a read-only path expression server-side; returns
        the selected nodes serialized (replica-safe — see the cluster
        docs)."""
        return self._call("query", doc_id=doc_id, path=path,
                          _trace=_trace)

    def explain(self, doc_id, path, _trace=None):
        """Run ``path`` server-side and return the recorded query
        plan (per step: index-scan vs. walk with bucket/estimate
        sizes) without the serialized nodes."""
        return self._call("explain", doc_id=doc_id, path=path,
                          _trace=_trace)

    def metrics(self, format=None, traces=None, slow=None):
        """Fetch the server's metric snapshot (counters / gauges /
        histograms plus ``uptime_seconds``); ``traces=N`` adds the
        last N recorded span trees, ``slow=N`` the last N slow-log
        entries, ``format="prometheus"`` returns ``{"text": ...}``
        carrying the text exposition instead."""
        args = {}
        if format is not None:
            args["format"] = format
        if traces is not None:
            args["traces"] = traces
        if slow is not None:
            args["slow"] = slow
        return self._call("metrics", **args)

    # -- replication (see repro.cluster) --------------------------------------

    def replicate_subscribe(self, replica=None):
        """Announce this connection as a follower; returns the stream
        shape (``seq`` / ``first_seq`` / ``backlog`` / ``stream``)."""
        args = {} if replica is None else {"replica": replica}
        return self._call("replicate-subscribe", **args)

    def wal_segment(self, from_seq, replica=None, max_records=None,
                    wait_s=None):
        """Pull leader log records from ``from_seq`` on (long-polling
        up to ``wait_s`` seconds when caught up)."""
        args = {"from_seq": from_seq}
        if replica is not None:
            args["replica"] = replica
        if max_records is not None:
            args["max_records"] = max_records
        if wait_s is not None:
            args["wait_s"] = wait_s
        return self._call("wal-segment", **args)

    def snapshot_transfer(self):
        """Fetch the leader's full resident state plus the stream
        position it describes (the replica bootstrap payload)."""
        return self._call("snapshot-transfer")

    def promote(self, allow_non_durable=False):
        """Convert the connected replica into a leader (manual
        failover). Non-durable replicas are refused unless
        ``allow_non_durable`` (last-resort salvage)."""
        if allow_non_durable:
            return self._call("promote", allow_non_durable=True)
        return self._call("promote")

    # -- CDC & bulk ETL (see repro.cdc / repro.etl) ---------------------------

    @staticmethod
    def _subscribe_args(from_token, doc_ids, decode, max_events,
                        wait_s, subscriber):
        args = {}
        if from_token is not None:
            args["from_token"] = from_token
        if doc_ids is not None:
            args["doc_ids"] = list(doc_ids)
        if not decode:
            args["decode"] = False
        if max_events is not None:
            args["max_events"] = max_events
        if wait_s is not None:
            args["wait_s"] = wait_s
        if subscriber is not None:
            args["subscriber"] = subscriber
        return args

    def subscribe_once(self, from_token=None, doc_ids=None, decode=True,
                       max_events=None, wait_s=None, subscriber=None):
        """One subscription poll; returns ``{"events", "token",
        "end_seq", "stream"}``. Most callers want the generator form
        (:meth:`subscribe`) instead."""
        return self._call("subscribe", **self._subscribe_args(
            from_token, doc_ids, decode, max_events, wait_s,
            subscriber))

    def unsubscribe(self, subscriber):
        """Drop a named subscriber from the feed's lag accounting."""
        return self._call("unsubscribe", subscriber=subscriber)

    def bulk_import(self, docs):
        """Load one chunk of ``{"doc_id", "xml"}`` documents
        atomically under a single group fsync."""
        return self._call("bulk-import", docs=list(docs))

    def export(self, doc_ids=None, cursor=None, max_docs=None,
               format=None):
        """One page of a filtered, resumable corpus export."""
        args = {}
        if doc_ids is not None:
            args["doc_ids"] = list(doc_ids)
        if cursor is not None:
            args["cursor"] = cursor
        if max_docs is not None:
            args["max_docs"] = max_docs
        if format is not None:
            args["format"] = format
        return self._call("export", **args)


class StoreClient(_MethodSurface):
    """Blocking client: one request in flight at a time.

    Use as a context manager (``with StoreClient.connect(...) as c:``)
    or call :meth:`close`. Construct via :meth:`connect`. After
    :meth:`close`, every call raises ``ProtocolError("client is
    closed")``.
    """

    def __init__(self, sock, client=None,
                 versions=protocol.SUPPORTED_VERSIONS):
        self._sock = sock
        self._decoder = protocol.FrameDecoder()
        self._frames = []
        self._next_id = 0
        self._versions = tuple(versions)
        self.client = client
        self.protocol_version = None
        self.server_info = None

    @classmethod
    def connect(cls, host=None, port=None, unix_path=None, client=None,
                timeout=None, retries=0, backoff=0.1, max_backoff=2.0,
                versions=protocol.SUPPORTED_VERSIONS):
        """Connect over TCP (``host``/``port``) or a Unix socket
        (``unix_path``) and negotiate the protocol version.

        ``retries`` extra attempts (exponential ``backoff`` seconds
        between them, capped at ``max_backoff``) absorb bootstrap
        races — a cluster node dialing a peer that is still binding
        should wait it out, not surface a raw
        ``ConnectionRefusedError``. The *last* failure is re-raised
        when every attempt fails. ``versions`` restricts the offered
        protocol versions (e.g. ``(1,)`` forces the JSON codec against
        a v2-capable server).
        """
        if unix_path is None and (host is None or port is None):
            raise ProtocolError("connect needs host+port or unix_path")
        delays = _backoff_delays(retries, backoff, max_backoff)
        while True:
            try:
                if unix_path is not None:
                    sock = socket.socket(socket.AF_UNIX,
                                         socket.SOCK_STREAM)
                    sock.settimeout(timeout)
                    try:
                        sock.connect(unix_path)
                    except BaseException:
                        sock.close()
                        raise
                else:
                    sock = socket.create_connection((host, port),
                                                    timeout=timeout)
            except (ConnectionError, FileNotFoundError, TimeoutError,
                    socket.timeout):
                delay = next(delays, None)
                if delay is None:
                    raise
                time.sleep(delay)
                continue
            instance = cls(sock, client=client, versions=versions)
            try:
                instance._hello()
            except BaseException:
                sock.close()
                raise
            return instance

    def _hello(self):
        result = self._roundtrip(protocol.hello_request(
            self._take_id(), client=self.client,
            versions=self._versions))
        self.protocol_version = result["version"]
        self.server_info = result
        self.client = result.get("client", self.client)
        # the hello exchange ran as v1 JSON; switch both directions to
        # the negotiated codec for everything after it
        self._decoder.use_version(self.protocol_version)

    def _take_id(self):
        self._next_id += 1
        return self._next_id

    def _call(self, op, **args):
        trace = self._outbound_trace(args.pop("_trace", None))
        return self._roundtrip(protocol.request(
            self._take_id(), op, args, trace=trace))

    def _roundtrip(self, message):
        if self._sock is None:
            raise ProtocolError("client is closed")
        self._sock.sendall(protocol.encode_frame(
            message, self.protocol_version or 1))
        while not self._frames:
            data = self._sock.recv(64 * 1024)
            if not data:
                raise ConnectionLostError(
                    "server closed the connection mid-response")
            self._frames.extend(self._decoder.feed(data))
        response_id, result = protocol.parse_response(
            self._frames.pop(0))
        if response_id != message["id"]:
            raise ProtocolError(
                "response id {!r} does not match request id "
                "{!r}".format(response_id, message["id"]))
        return result

    def subscribe(self, doc_ids=None, from_token=None, decode=True,
                  subscriber=None, wait_s=5.0, max_events=None):
        """Stream change events as a generator: ``for event in
        client.subscribe(doc_ids=["d1"]): ...``.

        Starts at the live tail unless ``from_token`` resumes an
        earlier position; long-polls ``wait_s`` seconds per round trip
        and runs until the caller stops iterating. Every yielded event
        carries its own resume ``token`` (the position *after* it) —
        persist the last one to survive a disconnect. Typed failures
        propagate: ``SubscriptionLaggedError`` when the resume point
        fell out of the backlog, ``ResumeExpiredError`` after a
        failover changed the stream epoch (re-bootstrap from
        :meth:`export` and resume from its token).
        """
        token = from_token
        while True:
            page = self.subscribe_once(
                from_token=token, doc_ids=doc_ids, decode=decode,
                max_events=max_events, wait_s=wait_s,
                subscriber=subscriber)
            token = page["token"]
            for event in page["events"]:
                yield event

    @property
    def closed(self):
        return self._sock is None

    def close(self):
        """Close the connection (idempotent). Calls after this raise
        ``ProtocolError("client is closed")``."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class AsyncStoreClient(_MethodSurface):
    """Asyncio client with request pipelining.

    Every command coroutine writes its frame immediately and awaits its
    own response future, so N concurrent calls put N requests on the
    wire without waiting for each other — the server executes them in
    order per connection, and the background reader resolves each
    future as its response arrives.
    """

    def __init__(self, reader, writer, client=None,
                 versions=protocol.SUPPORTED_VERSIONS):
        self._reader = reader
        self._writer = writer
        self._decoder = protocol.FrameDecoder()
        self._pending = {}
        self._next_id = 0
        self._reader_task = None
        self._closed = False
        self._versions = tuple(versions)
        self.client = client
        self.protocol_version = None
        self.server_info = None

    @classmethod
    async def connect(cls, host=None, port=None, unix_path=None,
                      client=None, retries=0, backoff=0.1,
                      max_backoff=2.0,
                      versions=protocol.SUPPORTED_VERSIONS):
        """Connect over TCP or a Unix socket and negotiate.

        ``retries``/``backoff``/``max_backoff`` behave as on
        :meth:`StoreClient.connect` (the sleeps are ``await``\\ ed, so
        the loop stays responsive)."""
        if unix_path is None and (host is None or port is None):
            raise ProtocolError("connect needs host+port or unix_path")
        delays = _backoff_delays(retries, backoff, max_backoff)
        while True:
            try:
                if unix_path is not None:
                    reader, writer = await asyncio.open_unix_connection(
                        unix_path)
                else:
                    reader, writer = await asyncio.open_connection(
                        host, port)
                break
            except (ConnectionError, FileNotFoundError,
                    TimeoutError):
                delay = next(delays, None)
                if delay is None:
                    raise
                await asyncio.sleep(delay)
        instance = cls(reader, writer, client=client, versions=versions)
        try:
            await instance._hello()
        except BaseException:
            writer.close()
            raise
        instance._reader_task = asyncio.ensure_future(
            instance._read_responses())
        return instance

    async def _hello(self):
        """Negotiate before the reader task exists (strict
        request/response, nothing else is in flight yet)."""
        message = protocol.hello_request(self._take_id(),
                                         client=self.client,
                                         versions=self._versions)
        self._writer.write(protocol.encode_frame(message))
        await self._writer.drain()
        frames = []
        while not frames:
            data = await self._reader.read(64 * 1024)
            if not data:
                raise ProtocolError(
                    "server closed the connection during negotiation")
            frames.extend(self._decoder.feed(data))
        __, result = protocol.parse_response(frames.pop(0))
        if frames:
            raise ProtocolError(
                "server sent frames before any request was made")
        self.protocol_version = result["version"]
        self.server_info = result
        self.client = result.get("client", self.client)
        # everything after the (v1 JSON) hello runs the agreed codec
        self._decoder.use_version(self.protocol_version)

    def _take_id(self):
        self._next_id += 1
        return self._next_id

    async def _call(self, op, **args):
        if self._closed:
            raise ProtocolError("client is closed")
        trace = self._outbound_trace(args.pop("_trace", None))
        request_id = self._take_id()
        # frame before registering the future: an unframeable request
        # (oversized payload) must not leave an orphan in _pending
        frame = protocol.encode_frame(
            protocol.request(request_id, op, args, trace=trace),
            self.protocol_version or 1)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(frame)
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            raise ConnectionLostError(
                "connection lost while sending {!r}: {}".format(
                    op, exc)) from exc
        return await future

    async def _read_responses(self):
        """Resolve pending futures as responses arrive, in any order
        of completion (the server answers in request order; ids keep
        the correlation explicit anyway)."""
        failure = ConnectionLostError("server closed the connection")
        try:
            while True:
                data = await self._reader.read(64 * 1024)
                if not data:
                    break
                for message in self._decoder.feed(data):
                    self._dispatch_response(message)
        except (ConnectionError, OSError) as exc:
            failure = ConnectionLostError(
                "connection lost: {}".format(exc))
        except ProtocolError as exc:
            failure = exc
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(failure)
            self._pending.clear()

    def _dispatch_response(self, message):
        response_id = message.get("id")
        future = self._pending.pop(response_id, None)
        if future is None or future.done():
            return
        try:
            __, result = protocol.parse_response(message)
        except Exception as error:
            future.set_exception(error)
        else:
            future.set_result(result)

    async def subscribe(self, doc_ids=None, from_token=None,
                        decode=True, subscriber=None, wait_s=5.0,
                        max_events=None):
        """Stream change events as an async iterator: ``async for
        event in client.subscribe(doc_ids=["d1"]): ...``.

        Semantics match :meth:`StoreClient.subscribe`: starts at the
        live tail unless ``from_token`` is given, long-polls ``wait_s``
        per round trip, yields events carrying their own resume
        ``token``, and raises the typed lag/epoch errors."""
        token = from_token
        while True:
            page = await self.subscribe_once(
                from_token=token, doc_ids=doc_ids, decode=decode,
                max_events=max_events, wait_s=wait_s,
                subscriber=subscriber)
            token = page["token"]
            for event in page["events"]:
                yield event

    @property
    def closed(self):
        return self._closed

    async def aclose(self):
        """Close the connection (idempotent); in-flight requests fail
        and calls after this raise ``ProtocolError("client is
        closed")``."""
        if self._closed:
            return
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    ProtocolError("client is closed"))
        self._pending.clear()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc_info):
        await self.aclose()
