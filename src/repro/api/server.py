"""The asyncio network front end: many connections, one store.

:class:`StoreServer` listens on TCP and/or a Unix socket and multiplexes
every connection onto one :class:`~repro.store.store.DocumentStore`
through the shared :class:`~repro.api.dispatch.StoreDispatcher`. The
store's locking already serializes what must be serial (per-document
flushes) and keeps the rest concurrent (submissions), so connection
handlers simply run each command on a small thread pool — the event
loop never blocks on a flush, and two clients flushing different
documents genuinely overlap.

Per-connection behaviour:

* the first frame must be the ``hello`` negotiation (see
  :mod:`repro.api.protocol`); it also carries the connection's *client
  identity*, which stamps every submission that does not name an
  explicit client — so the store's per-client coalescing (sequential
  chains per client, parallel merge across clients) sees network
  sessions exactly like it sees local producers;
* requests are **pipelined**: the reader keeps accepting frames while
  earlier commands execute, queueing them on a bounded per-connection
  queue (:attr:`StoreServer.max_pipeline`). A full queue stops the
  reader — TCP flow control then pushes back on the client — so a
  fire-hose client cannot balloon server memory;
* responses go out in request order (one worker per connection), so a
  client may correlate by order as well as by ``id``;
* a malformed frame (bad length, non-JSON payload, EOF mid-frame)
  kills only that connection — framing is lost and cannot be
  resynchronized — after a best-effort error frame; other connections
  and the store are untouched.

Shutdown is *drain-first*, matching the line protocol's PR 3 semantics:
``SIGTERM`` (or :meth:`StoreServer.aclose`) stops accepting, lets every
already-queued pipelined request finish, flushes all pending
submissions (with a durable store they reach the write-ahead log), and
only then closes the store.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import os
import signal
import socket
import stat
import sys

from repro.api import ops, protocol
from repro.api.dispatch import StoreDispatcher
from repro.errors import ProtocolError, ReproError
from repro.obs import SIZE_BUCKETS, StoreObs

#: optional capabilities advertised in the hello result; a client only
#: uses a feature (e.g. sending trace ids) when the server lists it,
#: so old peers on either side are unaffected
SERVER_FEATURES = ("trace", "metrics")

#: default bound on queued-but-unexecuted requests per connection
DEFAULT_MAX_PIPELINE = 32

_READ_CHUNK = 64 * 1024

#: queue sentinel: no more requests will arrive
_EOF = object()


def _bind_unix_socket(path):
    """Bind a fresh Unix listener at ``path``, reclaiming a provably
    dead predecessor's socket first."""
    _unlink_stale_unix_socket(path)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.bind(path)
        # listen *here*, not later in the event loop: a bound-but-not-
        # listening socket answers ECONNREFUSED, which a concurrently
        # starting server's staleness probe would read as "dead inode,
        # reclaim it" — the window must be instructions, not awaits
        sock.listen(100)
    except BaseException:
        sock.close()
        raise
    return sock


def _unlink_stale_unix_socket(path):
    """Remove a dead Unix socket left by a killed predecessor.

    A SIGKILLed server never unlinks its socket path, and binding over
    the corpse fails with ``Address already in use`` — so probe it: a
    connect that is *refused* proves nothing is listening, and the stale
    inode can go. A live listener (connect succeeds) and a path that is
    not a socket at all (somebody else's file) are both left untouched,
    so the ordinary bind error still surfaces.
    """
    try:
        if not stat.S_ISSOCK(os.stat(path).st_mode):
            return
    except OSError:
        return  # no such path: nothing to clean
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.25)
    try:
        probe.connect(path)
    except ConnectionRefusedError:
        # only a *refusal* proves nothing is listening; a timeout may
        # just be a live server with a full accept backlog, and
        # unlinking it would silently split the deployment in two
        try:
            os.unlink(path)
        except OSError:
            pass
    except OSError:
        pass  # inconclusive (timeout, perms, ...): let bind report it
    else:
        pass  # a live server owns the path: let bind fail loudly
    finally:
        probe.close()


class _Session:
    """Per-connection state: identity and negotiated version."""

    __slots__ = ("client", "version")

    def __init__(self, client, version):
        self.client = client
        self.version = version


class _ReaderFailure:
    """Queue item: the reader lost framing; send this and stop."""

    __slots__ = ("response",)

    def __init__(self, response):
        self.response = response


class StoreServer:
    """Serve one :class:`DocumentStore` to many network clients.

    Parameters
    ----------
    store:
        The (possibly durable) store to serve. The server owns it from
        :meth:`start` on: :meth:`aclose` drains and closes it.
    host / port:
        TCP listen address; ``port=0`` picks an ephemeral port
        (re-read it from :attr:`tcp_address`). ``host=None`` disables
        TCP.
    unix_path:
        Unix-domain socket path (``None`` disables the Unix listener).
    max_pipeline:
        Bound on queued requests per connection (backpressure).
    executor_workers:
        Threads executing store commands (store calls block on locks
        and real work; the event loop must not).
    """

    #: ``op -> (dispatcher method, required args, optional args)`` —
    #: the dispatch table both transports are built from (the line
    #: protocol reaches the same methods through its own arg parsing).
    #: Derived from the operation registry (:mod:`repro.api.ops`), the
    #: same declaration the v2 op codes and the generated docs use.
    DISPATCH = ops.dispatch_table()

    def __init__(self, store=None, host=None, port=0, unix_path=None,
                 max_pipeline=DEFAULT_MAX_PIPELINE, executor_workers=8,
                 metrics_listen=None):
        if host is None and unix_path is None:
            raise ReproError(
                "StoreServer needs a TCP host/port or a unix_path to "
                "listen on")
        if max_pipeline < 1:
            # Queue(maxsize=0) means *unbounded* — silently dropping
            # the documented backpressure is worse than refusing
            raise ReproError(
                "max_pipeline must be >= 1, got {}".format(max_pipeline))
        self.dispatcher = StoreDispatcher(store)
        self.store = self.dispatcher.store
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.max_pipeline = max_pipeline
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=executor_workers,
            thread_name_prefix="store-server")
        # long-polls (`wal-segment` / `subscribe` with wait_s) park a
        # thread for seconds at a time; on the shared pool, enough
        # followers would occupy every worker and stall each write
        # until a poll deadline expired — so polls get their own pool
        # and the write path never queues behind a parked follower
        self._poll_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(executor_workers, 16),
            thread_name_prefix="store-server-poll")
        self._servers = []
        self._connections = {}   # _Connection -> its handler task
        self._sessions = 0
        self._closed = False
        #: ``(host, port)`` of the opt-in Prometheus HTTP endpoint
        #: (``None`` disables it); serves ``GET /metrics``
        self.metrics_listen = metrics_listen
        self._metrics_server = None
        #: the store's observability facade; a bare store object
        #: without one gets a disabled stand-in so the instrumentation
        #: sites below stay unconditional
        self.obs = getattr(self.store, "obs", None) or StoreObs(
            enabled=False)
        self._m_connections = self.obs.gauge(
            "repro_server_connections", "Open client connections")
        self._m_connections_total = self.obs.counter(
            "repro_server_connections_total", "Connections accepted")
        self._m_frames_in = {
            version: self.obs.counter(
                "repro_server_frames_in_total",
                "Request frames decoded", codec="v{}".format(version))
            for version in protocol.SUPPORTED_VERSIONS}
        self._m_frames_out = {
            version: self.obs.counter(
                "repro_server_frames_out_total",
                "Response frames written", codec="v{}".format(version))
            for version in protocol.SUPPORTED_VERSIONS}
        self._m_pipeline = self.obs.histogram(
            "repro_server_pipeline_batch",
            "Requests executed per pipelined batch",
            buckets=SIZE_BUCKETS)

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Bind the listeners; returns ``self``."""
        if self.host is not None:
            self._servers.append(await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port))
        if self.unix_path is not None:
            # bound by hand: asyncio's path= would silently unlink
            # whatever sits at the path — even a *live* server's
            # socket. Probing first steals only provably dead inodes.
            self._servers.append(await asyncio.start_unix_server(
                self._handle_connection,
                sock=_bind_unix_socket(self.unix_path)))
        if self.metrics_listen is not None:
            host, port = self.metrics_listen
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, host=host, port=port)
        return self

    @property
    def tcp_address(self):
        """``(host, port)`` actually bound, or ``None`` without TCP."""
        unix_family = getattr(socket, "AF_UNIX", None)
        for server in self._servers:
            for sock in server.sockets or ():
                if sock.family != unix_family:
                    return sock.getsockname()[:2]
        return None

    @property
    def metrics_http_address(self):
        """``(host, port)`` of the Prometheus HTTP endpoint, or
        ``None`` when ``metrics_listen`` was not configured."""
        if self._metrics_server is None:
            return None
        for sock in self._metrics_server.sockets or ():
            return sock.getsockname()[:2]
        return None

    async def _handle_metrics_http(self, reader, writer):
        """One-shot HTTP/1.1 handler: ``GET /metrics`` answers the
        Prometheus text exposition, everything else 404. Deliberately
        minimal — no keep-alive, no chunking — because scrapers issue
        exactly this request shape."""
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else "/"
            while True:   # drain headers; the request has no body
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            if path.split("?", 1)[0] == "/metrics":
                render = getattr(self.store, "metrics_text", None)
                body = (render() if callable(render) else "")
                body = body.encode("utf-8")
                status = "200 OK"
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            else:
                body = b"not found (try /metrics)\n"
                status = "404 Not Found"
                ctype = "text/plain; charset=utf-8"
            writer.write((
                "HTTP/1.1 {}\r\nContent-Type: {}\r\n"
                "Content-Length: {}\r\nConnection: close\r\n\r\n"
                .format(status, ctype, len(body))).encode("latin-1"))
            writer.write(body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def serve_forever(self, handle_signals=True):
        """Run until ``SIGTERM``/``SIGINT`` (drain-first), then close."""
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        if handle_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, stop.set)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
        try:
            await stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.aclose()

    async def aclose(self, drain=True):
        """Stop accepting, finish queued requests, drain the store's
        pending submissions (``drain=True``) and close it."""
        if self._closed:
            return
        self._closed = True
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        connections = list(self._connections.items())
        for connection, __ in connections:
            await connection.shutdown()
        # wait for the handlers to flush their final responses and
        # close their writers — leaving them running would race the
        # store close below (and leak noisy cancelled tasks)
        tasks = [task for __, task in connections if task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        try:
            # a replica holds no pending submissions (writes bounce
            # with not-leader), so its drain would only raise; role is
            # read at shutdown time because promote may have flipped it
            if drain and getattr(self.store, "role", "leader") != "replica":
                loop = asyncio.get_running_loop()
                try:
                    await loop.run_in_executor(self._executor,
                                               self.store.flush_all)
                except ReproError as error:
                    # same contract as the line protocol's drain: every
                    # healthy document flushed, the failure reported
                    sys.stderr.write(
                        "store-server: drain failed: {}\n".format(error))
        finally:
            self.store.close()
            self._executor.shutdown(wait=True)
            # parked long-polls time out on their own; don't block
            # shutdown on a follower's wait_s window
            self._poll_executor.shutdown(wait=False)

    async def __aenter__(self):
        return await self.start()

    async def __aexit__(self, *exc_info):
        await self.aclose()

    # -- request execution ---------------------------------------------------

    def _plan(self, session, op, args):
        """Validate one parsed request; returns ``(executor, thunk)``
        where the thunk is the blocking store call."""
        spec = self.DISPATCH.get(op)
        if spec is None:
            raise ProtocolError("unknown op {!r}".format(op))
        method_name, required, optional = spec
        unknown = set(args) - set(required) - set(optional)
        if unknown:
            raise ProtocolError("op {!r} does not take {}".format(
                op, ", ".join(sorted(unknown))))
        missing = [name for name in required if name not in args]
        if missing:
            raise ProtocolError("op {!r} needs {}".format(
                op, ", ".join(missing)))
        call_args = {name: value for name, value in args.items()
                     if isinstance(name, str)}
        if op in ("submit", "submit_xquery"):
            call_args.setdefault("client", session.client)
        method = getattr(self.dispatcher, method_name)
        executor = (self._poll_executor if op in ops.POLL_OPS
                    else self._executor)
        return executor, functools.partial(method, **call_args)

    async def _execute(self, session, request_id, op, args):
        """Run one parsed request; always returns a response object."""
        try:
            executor, thunk = self._plan(session, op, args)
            result = await asyncio.get_running_loop().run_in_executor(
                executor, thunk)
        except Exception as error:
            # ReproError subclasses ship their stable code; anything
            # else (a TypeError from garbage argument types, ...) is
            # still a response, never a dead connection
            return protocol.error_response(request_id, error)
        return protocol.ok_response(request_id, result)

    async def _execute_many(self, session, messages):
        """Execute a contiguous pipelined run; responses in request
        order.

        The head-of-line cost of the naive loop is the per-request
        event-loop <-> worker-thread handoff: depth-8 pipelining paid
        8 executor round trips plus 8 drains. Here consecutive
        shared-executor commands run in ONE executor hop (sequentially
        in the worker, preserving per-connection order) — only
        long-poll ops (:data:`repro.api.ops.POLL_OPS`, which park
        their thread) and
        planning failures break the run.
        """
        loop = asyncio.get_running_loop()
        responses = []
        run = []   # (request_id, thunk) pending for the shared hop

        async def flush_run():
            if not run:
                return
            batch = run[:]
            del run[:]

            def execute_all():
                out = []
                for request_id, thunk in batch:
                    try:
                        out.append(protocol.ok_response(request_id,
                                                        thunk()))
                    except Exception as error:
                        out.append(protocol.error_response(request_id,
                                                           error))
                return out

            responses.extend(await loop.run_in_executor(
                self._executor, execute_all))

        for message in messages:
            request_id = message.get("id")
            try:
                request_id, op, args = protocol.parse_request(message)
                executor, thunk = self._plan(session, op, args)
            except Exception as error:
                await flush_run()
                responses.append(protocol.error_response(request_id,
                                                         error))
                continue
            trace = message.get("trace")
            if isinstance(trace, str) and trace:
                # the traced thunk still runs synchronously inside its
                # worker hop, so the contextvar set by run_traced
                # propagates through dispatch -> store -> durability
                thunk = functools.partial(self.obs.run_traced, trace,
                                          op, thunk)
            if executor is self._executor:
                run.append((request_id, thunk))
                continue
            await flush_run()
            try:
                result = await loop.run_in_executor(executor, thunk)
            except Exception as error:
                responses.append(protocol.error_response(request_id,
                                                         error))
            else:
                responses.append(protocol.ok_response(request_id,
                                                      result))
        await flush_run()
        return responses

    async def _handle_connection(self, reader, writer):
        connection = _Connection(self, reader, writer)
        self._connections[connection] = asyncio.current_task()
        self._m_connections.inc()
        self._m_connections_total.inc()
        try:
            await connection.run()
        finally:
            self._connections.pop(connection, None)
            self._m_connections.dec()

    def _next_session_name(self):
        self._sessions += 1
        return "conn-{}".format(self._sessions)


class _Connection:
    """One client connection: negotiation, reader, ordered worker."""

    def __init__(self, server, reader, writer):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.decoder = protocol.FrameDecoder()
        self.queue = asyncio.Queue(maxsize=server.max_pipeline)
        self.session = None
        self._codec_version = 1
        self._frames = []
        self._reader_task = None
        self._worker_task = None

    async def run(self):
        try:
            if not await self._negotiate():
                return
            self._worker_task = asyncio.ensure_future(self._work())
            self._reader_task = asyncio.ensure_future(self._read())
            await asyncio.wait({self._reader_task})
            await self.queue.put(_EOF)
            await self._worker_task
        finally:
            for task in (self._reader_task, self._worker_task):
                if task is not None and not task.done():
                    task.cancel()
            await self._close_writer()

    async def shutdown(self):
        """Server-initiated close: stop reading; ``run`` then finishes
        the already-queued requests and flushes their responses out."""
        if self._reader_task is not None and not self._reader_task.done():
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            except Exception:
                pass
        elif self._reader_task is None:
            # still negotiating: the handler is blocked reading the
            # hello frame, and only closing the transport unblocks it
            # (otherwise a silent pre-hello connection parks aclose
            # forever)
            try:
                self.writer.close()
            except (ConnectionError, OSError):
                pass

    # -- negotiation ---------------------------------------------------------

    async def _negotiate(self):
        """Handle the mandatory hello frame; ``False`` closes the
        connection (an error response was already sent best-effort)."""
        try:
            message = await self._next_frame()
        except ProtocolError as error:
            await self._send(protocol.error_response(None, error))
            return False
        if message is None:
            return False
        request_id = message.get("id")
        try:
            request_id, op, args = protocol.parse_request(message)
            if op != "hello":
                raise ProtocolError(
                    "the first request must be \"hello\", got "
                    "{!r}".format(op))
            version = protocol.negotiate_version(
                args.get("versions", ()))
            client = args.get("client")
            if client is not None and not isinstance(client, str):
                raise ProtocolError("hello \"client\" must be a string")
        except ProtocolError as error:
            await self._send(protocol.error_response(request_id, error))
            return False
        self.session = _Session(
            client or self.server._next_session_name(), version)
        # the hello response itself always travels as v1 JSON (the
        # client cannot know the outcome before reading it); both
        # sides switch codecs right after this frame
        sent = await self._send(protocol.ok_response(request_id, {
            "version": version, "server": "repro-store",
            "client": self.session.client,
            "features": list(SERVER_FEATURES)}))
        self._codec_version = version
        self.decoder.use_version(version)
        return sent

    # -- reader / worker -----------------------------------------------------

    async def _read(self):
        """Feed well-formed requests into the bounded queue."""
        while True:
            try:
                message = await self._next_frame()
            except ProtocolError as error:
                # framing is gone: the worker sends this after every
                # already-queued request and the connection closes
                await self.queue.put(_ReaderFailure(
                    protocol.error_response(None, error)))
                return
            if message is None:
                return
            await self.queue.put(message)

    async def _work(self):
        """Execute queued requests in order; the only writer.

        Pipelined requests already sitting in the queue are drained
        into one batch, executed in a single worker hop
        (:meth:`StoreServer._execute_many`) and answered with one
        write + drain — the per-request handoff and flush latency is
        what capped the pipelining speedup (see api/README.md).
        """
        while True:
            item = await self.queue.get()
            if item is _EOF:
                return
            if isinstance(item, _ReaderFailure):
                await self._send(item.response)
                return
            batch = [item]
            tail = None
            while tail is None:
                try:
                    item = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _EOF or isinstance(item, _ReaderFailure):
                    tail = item
                else:
                    batch.append(item)
            self.server._m_pipeline.observe(len(batch))
            responses = await self.server._execute_many(
                self.session, batch)
            if not await self._send_many(responses):
                return
            if tail is _EOF:
                return
            if tail is not None:
                await self._send(tail.response)
                return

    async def _next_frame(self):
        """One decoded frame, or ``None`` on EOF at a frame boundary.

        EOF mid-frame is a torn trailing frame: reported as a
        :class:`ProtocolError` (the peer died mid-send), never a crash.
        """
        while True:
            if self._frames:
                return self._frames.pop(0)
            try:
                data = await self.reader.read(_READ_CHUNK)
            except (ConnectionError, OSError):
                # an abrupt peer death (RST, not FIN) reads the same as
                # EOF: the connection is simply over
                return None
            if not data:
                if not self.decoder.at_boundary():
                    raise ProtocolError(
                        "connection closed mid-frame ({} trailing "
                        "bytes)".format(self.decoder.pending_bytes))
                return None
            decoded = self.decoder.feed(data)
            if decoded:
                counter = self.server._m_frames_in.get(
                    self._codec_version)
                if counter is not None:
                    counter.inc(len(decoded))
            self._frames.extend(decoded)

    async def _send(self, message, drain=True):
        """Write one frame; ``False`` when the peer is gone."""
        try:
            frame = protocol.encode_frame(message, self._codec_version)
        except ProtocolError as error:
            # a result too large to frame (e.g. `text` of a >MAX_FRAME
            # document) must degrade to an error response, not kill the
            # connection with an unhandled exception
            if message.get("ok"):
                return await self._send(protocol.error_response(
                    message.get("id"), error), drain=drain)
            return False
        try:
            self.writer.write(frame)
            if drain:
                await self.writer.drain()
        except (ConnectionError, OSError):
            return False
        counter = self.server._m_frames_out.get(self._codec_version)
        if counter is not None:
            counter.inc()
        return True

    async def _send_many(self, responses):
        """Write a batch of frames with one flush at the end."""
        for response in responses:
            if not await self._send(response, drain=False):
                return False
        try:
            await self.writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    async def _close_writer(self):
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
