"""The operation registry — single source of truth for the API surface.

Every protocol operation is declared here exactly once: its wire name,
its **append-only v2 op code** (codes are never reused for a different
meaning once released; new ops on old peers ride the v1 JSON fallback
or the 0xFF named-op escape), the dispatcher method that implements it,
its argument contract, and the documentation cells the generated
tables in ``api/README.md`` are built from.

Downstream derivations:

- :data:`OP_CODES` / ``protocol.OP_NAMES`` — the v2 binary codec's
  compact op encoding;
- :meth:`StoreServer.DISPATCH <repro.api.server.StoreServer>` — the
  ``op -> (method, required, optional)`` table via
  :func:`dispatch_table`;
- :data:`POLL_OPS` — operations that long-poll (park a thread waiting
  for feed progress) and therefore run on the server's dedicated
  follower executor, never queueing behind or ahead of writes;
- the op tables of ``api/README.md`` via :mod:`repro.api.docgen`
  (drift-checked in CI).
"""

from __future__ import annotations


class OpSpec:
    """One operation's complete wire-facing declaration."""

    __slots__ = ("name", "code", "method", "required", "optional",
                 "result", "doc", "group", "poll")

    def __init__(self, name, code, method, required=(), optional=(),
                 result="", doc="", group="core", poll=False):
        self.name = name
        self.code = code
        self.method = method
        self.required = tuple(required)
        self.optional = tuple(optional)
        self.result = result
        self.doc = doc
        self.group = group
        self.poll = poll

    def __repr__(self):
        return "OpSpec({!r}, code={})".format(self.name, self.code)


#: every operation, in op-code order. Codes are append-only.
OPS = (
    OpSpec(
        "hello", 0, None,
        required=("versions",), optional=("client",),
        result="`version`, `server`, `client`, `features` (negotiated "
               "extras, e.g. `trace` = requests may carry a trace id)",
        doc="version negotiation; always rides v1 JSON"),
    OpSpec(
        "open", 1, "open",
        required=("doc_id", "xml"),
        result="`doc_id`, `nodes`, `version`"),
    OpSpec(
        "submit", 2, "submit",
        required=("doc_id", "pul"), optional=("client",),
        result="`doc_id`, `ops`, `depth`"),
    OpSpec(
        "submit_xquery", 3, "submit_xquery",
        required=("doc_id", "query"), optional=("client",),
        result="`doc_id`, `ops`, `depth`"),
    OpSpec(
        "flush", 4, "flush",
        required=("doc_id",),
        result="`flushed`, and when true: `version`, `clients`, "
               "`submitted_ops`, `reduced_ops`, `relabel`, "
               "`max_code_length`"),
    OpSpec(
        "flush_all", 5, "flush_all",
        result="`batches`, `ops`, `results`"),
    OpSpec(
        "discard", 6, "discard",
        required=("doc_id",),
        result="`doc_id`, `discarded`"),
    OpSpec(
        "text", 7, "text",
        required=("doc_id",),
        result="`doc_id`, `text`, `version`"),
    OpSpec(
        "stats", 8, "stats",
        optional=("doc_id",),
        result="`stats`: list of per-document counter objects"),
    OpSpec(
        "docs", 9, "docs",
        result="`docs`: resident ids"),
    OpSpec(
        "snapshot", 10, "snapshot",
        result="`generation`"),
    OpSpec(
        "query", 11, "query",
        required=("doc_id", "path"),
        result="`doc_id`, `version`, `count`, `nodes` (serialized, "
               "document order)"),
    OpSpec(
        "replicate-subscribe", 12, "replicate_subscribe",
        optional=("replica",), group="replication",
        result="`seq`, `first_seq`, `backlog`, `stream` (the stream "
               "epoch id)"),
    OpSpec(
        "wal-segment", 13, "wal_segment",
        required=("from_seq",),
        optional=("replica", "max_records", "wait_s"),
        group="replication", poll=True,
        result="`records` (`[{seq, record}]`), `next_seq`, `end_seq`; "
               "long-polls up to `wait_s` when caught up; "
               "`replication-reset` when `from_seq` fell out of the "
               "retained backlog"),
    OpSpec(
        "snapshot-transfer", 14, "snapshot_transfer",
        group="replication",
        result="`docs` (full per-document state payloads), `seq`, "
               "`stream` — published versions captured after `seq` is "
               "read (payloads may lead `seq`, never lag it; replay "
               "absorbs the overlap), the replica bootstrap payload"),
    OpSpec(
        "promote", 15, "promote",
        optional=("allow_non_durable",), group="replication",
        result="`role`, `promoted`, `applied_seq` — converts the "
               "*replica* answering into a leader (manual failover; "
               "idempotent). A WAL-less replica is refused unless "
               "`allow_non_durable` (last-resort salvage)"),
    # CDC & bulk ETL (PR 8): the change feed as a public surface
    OpSpec(
        "subscribe", 16, "subscribe",
        optional=("from_token", "doc_ids", "decode", "max_events",
                  "wait_s", "subscriber"),
        group="cdc", poll=True,
        result="`events`, `token` (resume token covering everything "
               "scanned), `end_seq`, `stream`; long-polls up to "
               "`wait_s`; `subscription-lagged` when the token fell "
               "out of the backlog, `resume-expired` on a stream-epoch "
               "mismatch"),
    OpSpec(
        "unsubscribe", 17, "unsubscribe",
        required=("subscriber",), group="cdc",
        result="`subscriber`, `forgotten`"),
    OpSpec(
        "bulk-import", 18, "bulk_import",
        required=("docs",), group="cdc",
        result="`loaded`, `nodes`, `doc_ids` — the chunk becomes "
               "resident atomically under one group fsync"),
    OpSpec(
        "export", 19, "export",
        optional=("doc_ids", "cursor", "max_docs", "format"),
        group="cdc",
        result="`docs`, `cursor` (pagination key), `done`, `seq`, "
               "`stream`, `token` (CDC anchor read before the "
               "payloads were pinned; `None` without replication)"),
    # secondary indexes & query planning (PR 9)
    OpSpec(
        "explain", 20, "explain",
        required=("doc_id", "path"),
        result="`doc_id`, `version`, `path`, `count`, `plan` — the "
               "recorded per-step plan (`index-scan` vs. `walk`, "
               "bucket and estimate sizes) the cost model chose; the "
               "query runs against one pinned version, so `count` "
               "matches what `query` would return"),
    # observability (PR 10)
    OpSpec(
        "metrics", 21, "metrics",
        optional=("format", "traces", "slow"),
        result="the metrics snapshot: `counters`, `gauges`, "
               "`histograms` (per-series values), `uptime_seconds`, "
               "`metrics_enabled`; `traces=N` adds the last N recorded "
               "span trees, `slow=N` the last N slow-log entries; "
               "`format: \"prometheus\"` returns `{text}` (the text "
               "exposition) instead"),
)

#: ``name -> spec``
OP_SPECS = {spec.name: spec for spec in OPS}

#: the v2 codec's compact op encoding (append-only, never reused)
OP_CODES = {spec.name: spec.code for spec in OPS}

#: long-polling ops served from the dedicated follower executor
POLL_OPS = frozenset(spec.name for spec in OPS if spec.poll)


def dispatch_table():
    """``op -> (dispatcher method, required, optional)`` for every op
    with a server-side implementation (``hello`` is handled by the
    connection layer before dispatch)."""
    return {spec.name: (spec.method, spec.required, spec.optional)
            for spec in OPS if spec.method is not None}


def _check_registry():
    codes = [spec.code for spec in OPS]
    if len(set(codes)) != len(codes):
        raise ValueError("duplicate op codes in the registry")
    if len(OP_SPECS) != len(OPS):
        raise ValueError("duplicate op names in the registry")
    if codes != sorted(codes):
        raise ValueError("registry must stay in op-code order")
    if any(code >= 0xFF for code in codes):
        raise ValueError("op code collides with the named-op escape")


_check_registry()
