"""Generate the op and error tables of ``api/README.md``.

The operation registry (:mod:`repro.api.ops`) and the error-code
registry (:mod:`repro.errors`) are the single source of truth for the
wire surface; this module renders them into the marked regions of the
protocol spec so the document can never drift from the code. Each
region sits between ``<!-- BEGIN GENERATED: name -->`` / ``<!-- END
GENERATED: name -->`` markers; everything outside the markers is
hand-written prose and untouched.

Usage::

    python -m repro.api.docgen            # rewrite README.md in place
    python -m repro.api.docgen --check    # exit 1 when out of sync (CI)
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.api.ops import OPS
from repro.errors import _CODE_REGISTRY

README = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "README.md")


def _cell(names):
    return ", ".join("`{}`".format(name) for name in names)


def render_op_codes():
    lines = ["| code | op |", "|------|----|"]
    for spec in OPS:
        lines.append("| {} | `{}` |".format(spec.code, spec.name))
    lines.append("| 0xFF | *named-op escape* | ")
    return "\n".join(line.rstrip() for line in lines)


def render_ops(group):
    lines = ["| op | required args | optional | result |",
             "|----|---------------|----------|--------|"]
    for spec in OPS:
        if spec.group != group:
            continue
        lines.append("| `{}` | {} | {} | {} |".format(
            spec.name, _cell(spec.required), _cell(spec.optional),
            spec.result))
    return "\n".join(lines)


def render_error_codes():
    lines = ["| code | raised as | meaning |",
             "|------|-----------|---------|"]
    for code, klass in _CODE_REGISTRY.items():
        lines.append("| `{}` | `{}` | {} |".format(
            code, klass.__name__, klass.wire_doc))
    return "\n".join(lines)


#: region name -> renderer; region names appear in the README markers
REGIONS = {
    "op-codes": render_op_codes,
    "ops-core": lambda: render_ops("core"),
    "ops-replication": lambda: render_ops("replication"),
    "ops-cdc": lambda: render_ops("cdc"),
    "error-codes": render_error_codes,
}


def apply(text):
    """README text with every generated region re-rendered."""
    for name, render in REGIONS.items():
        begin = "<!-- BEGIN GENERATED: {} -->".format(name)
        end = "<!-- END GENERATED: {} -->".format(name)
        if begin not in text or end not in text:
            raise ValueError(
                "api/README.md lost its {!r} markers".format(name))
        head, rest = text.split(begin, 1)
        __, tail = rest.split(end, 1)
        text = head + begin + "\n" + render() + "\n" + end + tail
    return text


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="(re)generate the registry tables in api/README.md")
    parser.add_argument("--check", action="store_true",
                        help="verify instead of write; exit 1 on drift")
    parser.add_argument("--path", default=README,
                        help="README to process (default: the "
                             "package's)")
    args = parser.parse_args(argv)
    with open(args.path, "r", encoding="utf-8") as handle:
        current = handle.read()
    rendered = apply(current)
    if args.check:
        if rendered != current:
            sys.stderr.write(
                "api/README.md is out of sync with the op/error "
                "registries — run `python -m repro.api.docgen`\n")
            return 1
        print("api/README.md is in sync with the registries")
        return 0
    if rendered != current:
        with open(args.path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print("api/README.md regenerated")
    else:
        print("api/README.md already in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
