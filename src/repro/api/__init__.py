"""The store's network API: wire protocol, server, clients.

One dispatch core (:class:`StoreDispatcher`) serves every transport:
the asyncio :class:`StoreServer` (TCP + Unix sockets, versioned
length-prefixed JSON frames) and the legacy stdin/stdout line protocol
(:class:`repro.store.service.StoreService`, now a thin adapter). The
clients — blocking :class:`StoreClient` and pipelining
:class:`AsyncStoreClient` — share one method surface and raise
reconstructed :class:`~repro.errors.ReproError` subclasses. See this
package's README for the frame layout, version negotiation and the
error-code table.
"""

from repro.api.client import AsyncStoreClient, StoreClient
from repro.api.dispatch import StoreDispatcher, stats_payload
from repro.api.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    FrameDecoder,
    encode_frame,
)
from repro.api.server import StoreServer

__all__ = [
    "AsyncStoreClient",
    "FrameDecoder",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "StoreClient",
    "StoreDispatcher",
    "StoreServer",
    "encode_frame",
    "stats_payload",
]
