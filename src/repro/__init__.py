"""Dynamic reasoning on XML updates.

A reproduction of Cavalieri, Guerrini, Mesiti — *Dynamic Reasoning on XML
Updates*, EDBT 2011: Pending Update Lists (PULs) as first-class exchanged
objects, with document-independent reasoning on them.

Public API highlights
---------------------

Data model and labeling::

    from repro.xdm import parse_document, serialize
    from repro.labeling import ContainmentLabeling

PULs and their semantics::

    from repro import (PUL, apply_pul, obtainable_set, equivalent,
                       substitutable, pul_to_xml, pul_from_xml)

The three reasoning operators::

    from repro import (reduce_pul, reduce_deterministic, canonical_form,
                       integrate, reconcile, aggregate)

Producing PULs from XQuery Update expressions and applying them::

    from repro import compile_pul, apply_streaming, apply_in_memory

The distributed architecture::

    from repro.distributed import Executor, Producer, SimulatedNetwork
"""

from repro.aggregation import aggregate
from repro.apply import apply_in_memory, apply_streaming
from repro.integration import (
    ProducerPolicy,
    detect_conflicts,
    integrate,
    reconcile,
)
from repro.pul import (
    PUL,
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertInto,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
    apply_pul,
    equivalent,
    invert_pul,
    merge,
    obtainable_set,
    pul_from_xml,
    pul_to_xml,
    substitutable,
)
from repro.reduction import canonical_form, reduce_deterministic, reduce_pul
from repro.xquery import compile_pul

__version__ = "1.0.0"

__all__ = [
    "PUL", "merge", "apply_pul", "obtainable_set",
    "equivalent", "substitutable", "invert_pul",
    "pul_to_xml", "pul_from_xml",
    "InsertBefore", "InsertAfter", "InsertIntoAsFirst", "InsertIntoAsLast",
    "InsertInto", "InsertAttributes", "Delete", "ReplaceNode",
    "ReplaceValue", "ReplaceChildren", "Rename",
    "reduce_pul", "reduce_deterministic", "canonical_form",
    "integrate", "reconcile", "detect_conflicts", "ProducerPolicy",
    "aggregate",
    "compile_pul",
    "apply_streaming", "apply_in_memory",
    "__version__",
]
