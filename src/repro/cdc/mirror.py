""":class:`DocumentMirror` — the reference CDC consumer.

A mirror rebuilds resident documents from the **raw** event stream
(``decode=False`` subscriptions) exactly the way crash recovery and
replicas replay the log: snapshot-form ``open`` payloads restore the
producer's node identifiers, ``batch`` records are reduced sequentially
and made effective with the in-memory evaluator preserving those
identifiers, and the per-document version counter absorbs at-least-once
redelivery. Byte-identity of a mirror against the leader (and against
:class:`~repro.store.store.StatelessBaseline`) is the CDC correctness
property the e2e suite pins.

The apply switch mirrors :func:`repro.store.durability.replay_oracle`
on purpose — a CDC consumer is a replayer that happens to live outside
the process.
"""

from __future__ import annotations

from repro.errors import ClusterError
from repro.pul.semantics import apply_pul
from repro.pul.serialize import pul_from_xml
from repro.reduction import reduce_deterministic
from repro.store.durability.snapshot import restore_document
from repro.xdm.serializer import serialize


class DocumentMirror:
    """Idempotent document reconstruction from raw change events."""

    def __init__(self):
        self._docs = {}       # doc_id -> Document
        self._versions = {}   # doc_id -> applied version

    # -- bootstrap ------------------------------------------------------------

    def bootstrap(self, payloads):
        """Reset the mirror from snapshot-form payloads (an ``export``
        in ``state`` form). Pair with the export's resume token: the
        token was read *before* the payloads were pinned, so resuming
        from it re-delivers at most changes the payloads already
        contain — absorbed below by the version check."""
        self._docs = {}
        self._versions = {}
        for payload in payloads:
            restored = restore_document(payload)
            self._docs[restored.doc_id] = restored.document
            self._versions[restored.doc_id] = \
                restored.counters["version"]

    # -- the apply switch -----------------------------------------------------

    def apply(self, event):
        """Make one raw subscription event effective.

        Accepts the event objects a ``decode=False`` subscription
        delivers (``{"seq", "token", "record"}``). Returns ``True``
        when the event changed mirror state, ``False`` when it was
        absorbed as a duplicate or carried no document change.
        """
        record = event["record"] if "record" in event else event
        kind = record.get("kind")
        if kind == "open":
            return self._apply_open(record)
        if kind == "close":
            doc_id = record["doc_id"]
            present = doc_id in self._docs
            self._docs.pop(doc_id, None)
            self._versions.pop(doc_id, None)
            return present
        if kind == "batch":
            return self._apply_batch(record)
        if kind in ("relabel", "repl-pos"):
            return False  # labels/cursors never change document bytes
        raise ClusterError(
            "unknown change-event kind {!r}".format(kind))

    def apply_all(self, events):
        """Apply a poll's worth of events; returns the applied count."""
        return sum(1 for event in events if self.apply(event))

    def _apply_open(self, record):
        restored = restore_document(record["doc"])
        if restored.doc_id in self._docs:
            return False  # redelivered open of a resident document
        self._docs[restored.doc_id] = restored.document
        self._versions[restored.doc_id] = restored.counters["version"]
        return True

    def _apply_batch(self, record):
        doc_id = record["doc_id"]
        document = self._docs.get(doc_id)
        if document is None:
            raise ClusterError(
                "change event targets {!r} but the mirror holds no "
                "base state for it — bootstrap from an export "
                "first".format(doc_id))
        version = record["version"]
        current = self._versions[doc_id]
        if version <= current:
            return False  # at-least-once redelivery, already covered
        if version > current + 1:
            raise ClusterError(
                "change feed gap on {!r}: event names version {} but "
                "the mirror is at {}".format(doc_id, version, current))
        try:
            reduced = reduce_deterministic(pul_from_xml(record["pul"]))
            reduced.check_compatible()
            working = document.copy()
            apply_pul(working, reduced, check=False, preserve_ids=True)
        except Exception:
            # the leader skipped this logged batch too (failed flush);
            # its version number will be reused by the next batch
            return False
        self._docs[doc_id] = working
        self._versions[doc_id] = version
        return True

    # -- reads ----------------------------------------------------------------

    def doc_ids(self):
        return sorted(self._docs, key=str)

    def version(self, doc_id):
        return self._versions.get(doc_id)

    def text(self, doc_id):
        """Serialized bytes of the mirrored document."""
        document = self._docs.get(doc_id)
        if document is None:
            raise ClusterError(
                "mirror holds no document {!r}".format(doc_id))
        return serialize(document)

    def __repr__(self):
        return "DocumentMirror(documents={})".format(len(self._docs))
