""":class:`DocumentMirror` — the reference CDC consumer.

A mirror rebuilds resident documents from the **raw** event stream
(``decode=False`` subscriptions) exactly the way crash recovery and
replicas replay the log: snapshot-form ``open`` payloads restore the
producer's node identifiers, ``batch`` records are reduced sequentially
and made effective with the in-memory evaluator preserving those
identifiers, and the per-document version counter absorbs at-least-once
redelivery. Byte-identity of a mirror against the leader (and against
:class:`~repro.store.store.StatelessBaseline`) is the CDC correctness
property the e2e suite pins.

With ``index=True`` the mirror additionally maintains the producer's
*labeling* and *secondary index* (:mod:`repro.index`): the snapshot
payloads carry the exact label codes, batches repair them per-site with
the same :func:`~repro.apply.inplace.apply_batch_in_place` the leader
runs (including the headroom full-relabel rule, so the label timeline
stays digit-identical when ``max_code_length`` matches the producer's),
and the index is derived incrementally from each reduced batch — or
rebuilt on any relabel — exactly like the leader's flush. The CDC index
parity the suite pins: after any delivery schedule, the mirror's index
equals an index rebuilt from scratch over the leader's final tree.

The apply switch mirrors :func:`repro.store.durability.replay_oracle`
on purpose — a CDC consumer is a replayer that happens to live outside
the process.
"""

from __future__ import annotations

from repro.errors import ClusterError
from repro.index.structural import build_index
from repro.pul.semantics import apply_pul
from repro.pul.serialize import pul_from_xml
from repro.reduction import reduce_deterministic
from repro.store.durability.snapshot import restore_document
from repro.xdm.serializer import serialize


class DocumentMirror:
    """Idempotent document reconstruction from raw change events."""

    def __init__(self, index=False, max_code_length=None):
        self._docs = {}       # doc_id -> Document
        self._versions = {}   # doc_id -> applied version
        self._index_enabled = bool(index)
        self._labelings = {}  # doc_id -> ContainmentLabeling (index mode)
        self._indexes = {}    # doc_id -> DocumentIndex (index mode)
        if max_code_length is None:
            from repro.store.store import DEFAULT_MAX_CODE_LENGTH
            max_code_length = DEFAULT_MAX_CODE_LENGTH
        #: the producer's headroom threshold: a mirror that relabels at
        #: a different watermark than its leader would diverge from the
        #: leader's label timeline on the next incremental repair
        self._max_code_length = max_code_length

    # -- bootstrap ------------------------------------------------------------

    def bootstrap(self, payloads):
        """Reset the mirror from snapshot-form payloads (an ``export``
        in ``state`` form). Pair with the export's resume token: the
        token was read *before* the payloads were pinned, so resuming
        from it re-delivers at most changes the payloads already
        contain — absorbed below by the version check."""
        self._docs = {}
        self._versions = {}
        self._labelings = {}
        self._indexes = {}
        for payload in payloads:
            restored = restore_document(payload)
            self._install(restored)

    def _install(self, restored):
        self._docs[restored.doc_id] = restored.document
        self._versions[restored.doc_id] = restored.counters["version"]
        if self._index_enabled:
            self._labelings[restored.doc_id] = restored.labeling
            self._indexes[restored.doc_id] = build_index(
                restored.document, restored.labeling)

    # -- the apply switch -----------------------------------------------------

    def apply(self, event):
        """Make one raw subscription event effective.

        Accepts the event objects a ``decode=False`` subscription
        delivers (``{"seq", "token", "record"}``). Returns ``True``
        when the event changed mirror state, ``False`` when it was
        absorbed as a duplicate or carried no document change
        (``relabel`` events rebuild labels and index in index mode,
        but never the document bytes).
        """
        record = event["record"] if "record" in event else event
        kind = record.get("kind")
        if kind == "open":
            return self._apply_open(record)
        if kind == "close":
            doc_id = record["doc_id"]
            present = doc_id in self._docs
            self._docs.pop(doc_id, None)
            self._versions.pop(doc_id, None)
            self._labelings.pop(doc_id, None)
            self._indexes.pop(doc_id, None)
            return present
        if kind == "batch":
            return self._apply_batch(record)
        if kind == "relabel":
            # labels/index change, document bytes never do
            self._rebuild(record.get("doc_id"))
            return False
        if kind == "repl-pos":
            return False  # cursors never change document bytes
        raise ClusterError(
            "unknown change-event kind {!r}".format(kind))

    def apply_all(self, events):
        """Apply a poll's worth of events; returns the applied count."""
        return sum(1 for event in events if self.apply(event))

    def _apply_open(self, record):
        restored = restore_document(record["doc"])
        if restored.doc_id in self._docs:
            return False  # redelivered open of a resident document
        self._install(restored)
        return True

    def _apply_batch(self, record):
        doc_id = record["doc_id"]
        document = self._docs.get(doc_id)
        if document is None:
            raise ClusterError(
                "change event targets {!r} but the mirror holds no "
                "base state for it — bootstrap from an export "
                "first".format(doc_id))
        version = record["version"]
        current = self._versions[doc_id]
        if version <= current:
            return False  # at-least-once redelivery, already covered
        if version > current + 1:
            raise ClusterError(
                "change feed gap on {!r}: event names version {} but "
                "the mirror is at {}".format(doc_id, version, current))
        if self._index_enabled:
            return self._apply_batch_indexed(doc_id, document, record,
                                             version)
        try:
            reduced = reduce_deterministic(pul_from_xml(record["pul"]))
            reduced.check_compatible()
            working = document.copy()
            apply_pul(working, reduced, check=False, preserve_ids=True)
        except Exception:
            # the leader skipped this logged batch too (failed flush);
            # its version number will be reused by the next batch
            return False
        self._docs[doc_id] = working
        self._versions[doc_id] = version
        return True

    def _apply_batch_indexed(self, doc_id, document, record, version):
        """The index-mode batch arm: the leader's flush replayed.

        Same in-place applier, same headroom rule, same
        incremental-index derivation — so labels stay digit-identical
        to the producer's and the index delta mirrors the leader's.
        A failed application matches the leader's failed-flush recovery
        (labels rebuilt on the unchanged tree, version number reused).
        """
        from repro.apply.inplace import apply_batch_in_place

        labeling = self._labelings[doc_id]
        previous_index = self._indexes[doc_id]
        try:
            reduced = reduce_deterministic(pul_from_xml(record["pul"]))
            reduced.check_compatible()
            working = document.copy()
            working_labels = labeling.copy()
            apply_mode = apply_batch_in_place(working, working_labels,
                                              reduced)
        except Exception:
            # the leader's failed flush republished with labels rebuilt
            # from the unchanged tree (rebuild_labeling); mirror that so
            # the label timeline of later batches stays digit-identical
            labeling.build(document)
            self._indexes[doc_id] = build_index(document, labeling)
            return False
        if working_labels.max_code_length > self._max_code_length:
            working_labels.build(working)
            relabel = "full"
        else:
            relabel = "incremental"
        index = None
        if apply_mode == "incremental" and relabel == "incremental":
            index = previous_index.derive(document, working,
                                          working_labels, reduced)
        if index is None:
            index = build_index(working, working_labels)
        self._docs[doc_id] = working
        self._labelings[doc_id] = working_labels
        self._indexes[doc_id] = index
        self._versions[doc_id] = version
        return True

    def _rebuild(self, doc_id):
        """Rebuild labels + index from the resident tree (the leader
        published a wholesale relabel at an unchanged version)."""
        if not self._index_enabled or doc_id not in self._docs:
            return
        document = self._docs[doc_id]
        labeling = self._labelings[doc_id]
        labeling.build(document)
        self._indexes[doc_id] = build_index(document, labeling)

    # -- reads ----------------------------------------------------------------

    def doc_ids(self):
        return sorted(self._docs, key=str)

    def version(self, doc_id):
        return self._versions.get(doc_id)

    def text(self, doc_id):
        """Serialized bytes of the mirrored document."""
        document = self._docs.get(doc_id)
        if document is None:
            raise ClusterError(
                "mirror holds no document {!r}".format(doc_id))
        return serialize(document)

    def labeling(self, doc_id):
        """The maintained labeling (index mode only)."""
        return self._labelings.get(doc_id)

    def index(self, doc_id):
        """The maintained :class:`~repro.index.DocumentIndex` (index
        mode only)."""
        return self._indexes.get(doc_id)

    def query(self, doc_id, path, engine="auto"):
        """Indexed read over the mirrored document — the fan-out read
        surface CDC consumers exist for. Requires index mode."""
        from repro.index.planner import run_query
        from repro.xdm.serializer import serialize_node
        from repro.xquery import parse_path

        document = self._docs.get(doc_id)
        if document is None:
            raise ClusterError(
                "mirror holds no document {!r}".format(doc_id))
        nodes, plan = run_query(
            parse_path(path), document,
            labeling=self._labelings.get(doc_id),
            index=self._indexes.get(doc_id), engine=engine)
        rendered = [serialize_node(node) for node in nodes]
        return {"doc_id": doc_id,
                "version": self._versions.get(doc_id),
                "count": len(rendered), "nodes": rendered,
                "plan": plan}

    def __repr__(self):
        return "DocumentMirror(documents={})".format(len(self._docs))
