""":class:`ChangeFeed` — the subscription view over a replication source.

A feed is a *stateless per-call* wrapper: each :meth:`ChangeFeed.read`
is one long-poll against the underlying
:class:`~repro.cluster.feed.ReplicationSource`, anchored by a resume
token (:mod:`repro.cdc.tokens`) instead of a raw sequence number. That
keeps subscription state entirely client-side — the server holds no
per-subscriber cursors, so a subscriber can disconnect, crash, move to
another process and resume from its last token, and a leader failover
invalidates nothing but the tokens themselves (the epoch fence turns
them into a typed :class:`~repro.errors.ResumeExpiredError`).

Delivery is **at-least-once**: a subscriber that crashes after applying
events but before persisting its token re-receives them on resume.
Consumers absorb duplicates with the per-document version counter every
``batch``/``open`` record carries (see
:class:`~repro.cdc.mirror.DocumentMirror` for the reference apply loop).

Filtering happens feed-side, but the returned token always covers every
*scanned* record — filtered-out records are acknowledged, not
redelivered, so a single-document subscriber does not re-scan the whole
stream on every resume.
"""

from __future__ import annotations

import time

from repro.cdc.tokens import decode_token, encode_token
from repro.cluster.feed import (
    DEFAULT_SEGMENT_RECORDS,
    MAX_WAIT_S,
)
from repro.errors import (
    ReplicationResetError,
    ResumeExpiredError,
    SubscriptionLaggedError,
)
from repro.pul.serialize import pul_from_xml


class ChangeFeed:
    """Per-call subscription reads over one ``ReplicationSource``.

    Construct one per request (it holds no state beyond the source
    reference); the dispatcher does exactly that, so a ``promote``
    swapping the store's source never leaves a stale feed behind.
    """

    def __init__(self, source):
        self.source = source

    @property
    def stream(self):
        return self.source.stream_id

    def tail_token(self):
        """A token anchored at the live end of the stream (events
        logged after this call will be delivered; history will not)."""
        return encode_token(self.stream, self.source.next_seq)

    def resolve(self, token):
        """Epoch-check a token; returns the sequence it names.

        Raises :class:`ResumeExpiredError` when the token belongs to a
        different stream epoch — after a restart or failover, positions
        from the old timeline are meaningless on the new one.
        """
        stream, seq = decode_token(token)
        if stream != self.stream:
            raise ResumeExpiredError(stream, self.stream)
        return seq

    def read(self, from_token=None, doc_ids=None, decode=True,
             max_events=None, wait_s=0.0, subscriber=None):
        """One subscription poll.

        Returns ``{"events", "token", "end_seq", "stream"}``: up to
        ``max_events`` events at or after ``from_token`` (the live tail
        when ``None``), the resume token covering everything scanned,
        and the stream end/epoch at response time. Long-polls up to
        ``wait_s`` seconds (capped at :data:`MAX_WAIT_S`) when no event
        matching the ``doc_ids`` filter is available yet.

        Raises :class:`SubscriptionLaggedError` when the token names a
        sequence the backlog no longer retains, and
        :class:`ResumeExpiredError` on an epoch mismatch.
        """
        source = self.source
        if from_token is None:
            cursor = source.next_seq
        else:
            cursor = self.resolve(from_token)
        limit = (DEFAULT_SEGMENT_RECORDS if max_events is None
                 else max(1, int(max_events)))
        deadline = time.monotonic() + min(max(0.0, float(wait_s)),
                                          MAX_WAIT_S)
        filters = (None if doc_ids is None
                   else {str(doc_id) for doc_id in doc_ids})
        events = []
        while True:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                records, cursor, end_seq = source.read_from(
                    cursor, limit=limit, wait_s=remaining,
                    replica=subscriber)
            except ReplicationResetError as exc:
                raise SubscriptionLaggedError(
                    cursor, exc.first_seq) from exc
            for item in records:
                event = self._event(item, filters, decode)
                if event is not None:
                    events.append(event)
            # return when something matched, or when the poll is
            # exhausted (no records left and no time to wait for more);
            # a batch that was entirely filtered out loops immediately —
            # the time budget is shared, not per-read
            if events or (not records
                          and time.monotonic() >= deadline):
                return {"events": events,
                        "token": encode_token(self.stream, cursor),
                        "end_seq": end_seq,
                        "stream": self.stream}

    # -- event shaping --------------------------------------------------------

    def _event(self, item, filters, decode):
        record = item["record"]
        kind = record.get("kind")
        doc_id = record.get("doc_id")
        if kind == "open" and doc_id is None:
            doc_id = (record.get("doc") or {}).get("doc_id")
        if filters is not None and (
                doc_id is None or str(doc_id) not in filters):
            return None
        # each event carries its own resume token — the position *after*
        # it — so a consumer can checkpoint mid-batch
        token = encode_token(self.stream, item["seq"] + 1)
        if not decode:
            return {"seq": item["seq"], "token": token, "record": record}
        if kind == "repl-pos":
            # internal cursor bookkeeping, not a document change
            return None
        event = {"seq": item["seq"], "token": token, "kind": kind,
                 "doc_id": doc_id}
        if kind == "open":
            event["version"] = (record.get("doc") or {}).get("version")
        elif kind == "batch":
            event["version"] = record.get("version")
            event["clients"] = record.get("clients")
            event["pul"] = record.get("pul")
            event["ops"] = _describe_pul(record.get("pul"))
        return event


def _describe_pul(text):
    """Human-readable op summaries for a logged PUL document."""
    if not text:
        return []
    try:
        pul = pul_from_xml(text)
    except Exception:  # noqa: BLE001 - describe, never fail delivery
        return ["<undecodable pul>"]
    return [op.describe() for op in pul.operations()]
