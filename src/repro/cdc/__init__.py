"""Change-data-capture: the replication feed as a public surface.

:mod:`repro.cluster` treats the write-ahead log as replication
transport — followers speak raw ``wal-segment`` pulls and replay every
record. This package turns the same numbered, epoch-fenced stream into
an integration surface for downstream consumers:

- :mod:`repro.cdc.tokens` — opaque, checksummed resume tokens binding
  a stream epoch to a log sequence;
- :mod:`repro.cdc.feed` — :class:`ChangeFeed`, the subscription view
  over a :class:`~repro.cluster.feed.ReplicationSource`: per-document
  filters, decoded or raw delivery, typed lag/epoch errors;
- :mod:`repro.cdc.mirror` — :class:`DocumentMirror`, an idempotent
  consumer that rebuilds byte-identical documents from raw events
  (the reference subscriber used by tests and benchmarks).
"""

from repro.cdc.feed import ChangeFeed
from repro.cdc.mirror import DocumentMirror
from repro.cdc.tokens import decode_token, encode_token

__all__ = [
    "ChangeFeed",
    "DocumentMirror",
    "decode_token",
    "encode_token",
]
