"""Opaque resume tokens for the change feed.

A token binds a **stream epoch** (the :attr:`ReplicationSource.stream_id`
fence minted at feed creation) to a **log sequence** (the position the
subscriber will resume *from*, i.e. one past the last event it applied).
Tokens travel as strings so clients can persist them without knowing the
structure, and carry a CRC so a truncated or hand-edited token fails
loudly as a :class:`~repro.errors.ProtocolError` instead of silently
resuming from the wrong position.

The format is ``{stream}:{seq}:{crc32-hex}`` — stable, but callers must
treat tokens as opaque: the epoch check in
:meth:`repro.cdc.feed.ChangeFeed.read` is what makes resumption safe,
and it only works when tokens round-trip unmodified.
"""

from __future__ import annotations

import zlib

from repro.errors import ProtocolError


def _checksum(stream, seq):
    body = "{}:{}".format(stream, seq).encode("utf-8")
    return format(zlib.crc32(body) & 0xFFFFFFFF, "08x")


def encode_token(stream, seq):
    """An opaque resume token for position ``seq`` of epoch ``stream``."""
    if not isinstance(stream, str) or not stream or ":" in stream:
        raise ProtocolError(
            "invalid stream id for resume token: {!r}".format(stream))
    seq = int(seq)
    if seq < 0:
        raise ProtocolError(
            "invalid sequence for resume token: {!r}".format(seq))
    return "{}:{}:{}".format(stream, seq, _checksum(stream, seq))


def decode_token(text):
    """``(stream, seq)`` from a token, or :class:`ProtocolError`.

    Rejects anything that is not a well-formed, checksum-valid token —
    malformed input must never be interpreted as a feed position.
    """
    if not isinstance(text, str):
        raise ProtocolError(
            "resume token must be a string, got {}".format(
                type(text).__name__))
    parts = text.rsplit(":", 2)
    if len(parts) != 3 or not all(parts):
        raise ProtocolError("malformed resume token: {!r}".format(text))
    stream, seq_text, crc = parts
    if not seq_text.isdigit():
        raise ProtocolError("malformed resume token: {!r}".format(text))
    seq = int(seq_text)
    if crc != _checksum(stream, seq):
        raise ProtocolError(
            "resume token failed its checksum: {!r}".format(text))
    return stream, seq
