"""Document versioning: deltas, version pruning, and a time machine.

The paper motivates aggregation with document versioning: keep versions as
deltas (PULs) over an original document and "get rid of some intermediate
document versions ... and only keep the most relevant ones" — pruning is
just aggregating adjacent deltas (Section 3.3). The inversion extension
(the paper's Section 6 future work, implemented in
:mod:`repro.pul.inverse`) additionally lets the store walk *backwards*:
every commit records its inverse, so any historical version can be checked
out without storing full documents.

Run: ``python examples/versioning_time_machine.py``
"""

from repro.aggregation import aggregate
from repro.pul.inverse import invert_pul
from repro.pul.semantics import apply_pul
from repro.pul.serialize import pul_to_xml
from repro.xdm import parse_document, serialize
from repro.xdm.compare import canonical_string
from repro.xquery import compile_pul

ORIGINAL = "<report><title>Draft</title><body><p>hello</p></body></report>"

COMMITS = (
    'replace value of node /report/title/text() with "Draft v2"',
    "insert node <p>second paragraph</p> as last into /report/body",
    "insert node <reviewer>GG</reviewer> after /report/title",
    'replace children of node /report/body/p[1] with "hello, world"',
    "delete node /report/reviewer",
)


class VersionStore:
    """Versions as forward deltas + recorded inverses."""

    def __init__(self, original_text):
        self.original_text = original_text
        self.head = parse_document(original_text)
        self.forward = []   # delta i: version i -> i+1
        self.backward = []  # inverse of delta i

    def commit(self, query):
        pul = compile_pul(query, self.head)
        forward, inverse = invert_pul(pul, self.head)
        apply_pul(self.head, forward, preserve_ids=True)
        self.forward.append(forward)
        self.backward.append(inverse)
        return len(self.forward)

    def checkout(self, version):
        """Walk back from the head using the recorded inverses."""
        document = self.head.copy()
        for inverse in reversed(self.backward[version:]):
            apply_pul(document, inverse, preserve_ids=True)
        return document

    def prune(self, keep_every=2):
        """Drop intermediate versions by aggregating adjacent deltas."""
        pruned = []
        for index in range(0, len(self.forward), keep_every):
            chunk = self.forward[index:index + keep_every]
            pruned.append(aggregate(chunk) if len(chunk) > 1 else chunk[0])
        return pruned


def main():
    store = VersionStore(ORIGINAL)
    for query in COMMITS:
        version = store.commit(query)
        delta = store.forward[-1]
        print("v{}: {} ops, {} bytes on the wire".format(
            version, len(delta), len(pul_to_xml(delta).encode())))

    print("\nhead document:\n ", serialize(store.head))

    # the time machine: materialize historical versions backwards
    for version in (3, 1, 0):
        document = store.checkout(version)
        print("\ncheckout of v{}:\n  {}".format(version,
                                                serialize(document)))
    restored = store.checkout(0)
    assert canonical_string(restored.root, with_ids=True) == \
        canonical_string(parse_document(ORIGINAL).root, with_ids=True)
    print("\nv0 checkout is identical to the original (same node ids).")

    # version pruning via aggregation
    pruned = store.prune(keep_every=2)
    print("\npruned history: {} deltas -> {} deltas".format(
        len(store.forward), len(pruned)))
    replay = parse_document(ORIGINAL)
    for delta in pruned:
        apply_pul(replay, delta, preserve_ids=True)
    assert canonical_string(replay.root, with_ids=True) == \
        canonical_string(store.head.root, with_ids=True)
    print("replaying the pruned history reproduces the head exactly.")


if __name__ == "__main__":
    main()
