"""Cloud scenario: updates travel over the network and are batched.

Many producers spread over a (simulated) network send update requests
against an XMark auction site; the executor collects them and applies them
in batches. The example contrasts the two execution strategies the paper
evaluates (Figure 6d): applying each PUL in its own streamed pass versus
aggregating each batch into one PUL and streaming the document once —
and reports the virtual-network cost of shipping PULs instead of
documents.

Run: ``python examples/cloud_updates.py``
"""

import time

from repro.aggregation import aggregate
from repro.apply.events import events_to_xml, parse_events
from repro.apply.streaming import apply_streaming
from repro.distributed import SimulatedNetwork
from repro.pul.serialize import pul_from_xml, pul_to_xml
from repro.workloads import generate_sequential_puls, generate_xmark
from repro.xdm.serializer import serialize


def main():
    document = generate_xmark(scale=0.2, seed=42)
    text = serialize(document)
    print("authoritative document: {:.0f} KB, {} nodes".format(
        len(text) / 1e3, len(document)))

    # a batch of sequential update requests arriving from the cloud
    batch_size = 8
    puls, expected = generate_sequential_puls(
        document, batch_size, 150, new_node_ratio=0.4, seed=7)

    network = SimulatedNetwork(latency=0.03, bandwidth=2_000_000)
    wires = []
    for index, pul in enumerate(puls):
        payload = pul_to_xml(pul)
        wires.append(payload)
        network.send("node{}".format(index), "executor",
                     _Sized(payload), kind="pul")
    print("{} PULs received, {} bytes total, virtual clock {:.3f}s"
          .format(len(wires), network.bytes_transferred, network.clock))
    # shipping the whole document back and forth would have cost:
    print("(shipping the document instead would cost {} bytes per trip)"
          .format(len(text.encode())))

    received = [pul_from_xml(wire) for wire in wires]

    # strategy 1: one streamed pass per PUL
    start = time.perf_counter()
    current = text
    for pul in received:
        current = events_to_xml(apply_streaming(
            parse_events(current), pul, check=False))
    sequential_time = time.perf_counter() - start

    # strategy 2: aggregate, then a single streamed pass
    start = time.perf_counter()
    combined = aggregate(received)
    batched = events_to_xml(apply_streaming(
        parse_events(text), combined, check=False))
    aggregated_time = time.perf_counter() - start
    assert batched == current, "the two strategies must agree"

    print("\nsequential passes: {:.3f}s".format(sequential_time))
    print("aggregate + one pass: {:.3f}s  ({} ops collapsed to {})"
          .format(aggregated_time, sum(len(p) for p in received),
                  len(combined)))
    print("speedup: {:.2f}x (grows with the number of PULs — Figure 6d)"
          .format(sequential_time / aggregated_time))


class _Sized:
    """Adapter giving plain strings the message interface."""

    def __init__(self, payload):
        self.payload = payload

    def size_bytes(self):
        return len(self.payload.encode("utf-8"))


def main_guard():
    main()


if __name__ == "__main__":
    main()
