"""Quickstart: produce, reason on, and execute PULs.

Walks the full pipeline on a small bibliography document:

1. parse a document and label it;
2. produce a PUL by evaluating an XQuery Update expression (no update is
   applied — this is the decoupled-producer behaviour);
3. reduce the PUL (collapse/override per Figure 2 of the paper) and show
   the canonical form;
4. execute it with both evaluators (in-memory and streaming) and check
   they agree byte-for-byte.

Run: ``python examples/quickstart.py``
"""

from repro import (
    apply_in_memory,
    apply_streaming,
    canonical_form,
    compile_pul,
    pul_to_xml,
    reduce_pul,
)
from repro.apply import events_to_xml, parse_events
from repro.labeling import ContainmentLabeling
from repro.xdm import parse_document, serialize

DOCUMENT = """\
<bibliography>
  <paper year="2011">
    <title>Dynamic Reasoning on XML Updates</title>
    <authors>
      <author>F. Cavalieri</author>
    </authors>
  </paper>
  <paper year="2009">
    <title>Semantics, Types and Effects for XML Updates</title>
    <authors><author>M. Benedikt</author></authors>
  </paper>
</bibliography>"""

QUERY = """
 insert node <author>G. Guerrini</author> as last into
     /bibliography/paper[1]/authors,
 insert node <author>M. Mesiti</author> as last into
     /bibliography/paper[1]/authors,
 rename node /bibliography/paper[1]/title as maintitle,
 replace value of node /bibliography/paper[2]/title/text()
     with "Semantics of XML Updates",
 insert node attribute venue {"EDBT"} into /bibliography/paper[1]
"""


def main():
    document = parse_document(DOCUMENT)
    labeling = ContainmentLabeling().build(document)

    # -- produce -----------------------------------------------------------
    pul = compile_pul(QUERY, document, labeling=labeling, origin="demo")
    print("Produced PUL ({} operations):".format(len(pul)))
    for op in pul:
        print("   ", op.describe())
    print("\nWire format:\n   ", pul_to_xml(pul)[:120], "...")

    # -- reason ------------------------------------------------------------
    reduced = reduce_pul(pul)
    print("\nReduced PUL ({} operations):".format(len(reduced)))
    for op in reduced:
        print("   ", op.describe())
    canonical = canonical_form(pul)
    print("\nCanonical form ({} operations):".format(len(canonical)))
    for op in canonical:
        print("   ", op.describe())

    # -- execute -----------------------------------------------------------
    text = serialize(document)
    in_memory = apply_in_memory(text, canonical)
    streamed = events_to_xml(apply_streaming(
        parse_events(text), canonical, fresh_start=len(document)))
    assert in_memory == streamed
    print("\nBoth evaluators agree. Result:\n")
    print(in_memory)


if __name__ == "__main__":
    main()
