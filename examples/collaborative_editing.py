"""Collaborative editing: parallel PULs, conflicts, policies.

Reproduces the check-out / check-in workflow of the paper's introduction:
an executor holds the authoritative article, three collaborators check it
out, each produces a PUL against the *same* base version, and the executor
integrates them. Some intentions clash — the conflicts are detected
(Figure 3 / Algorithm 1) and reconciled under the producers' policies
(Algorithm 3), mirroring the paper's Example 9; the failing all-demand-
order variant is shown too.

Run: ``python examples/collaborative_editing.py``
"""

from repro import ProducerPolicy
from repro.distributed import Executor, Producer, SimulatedNetwork
from repro.errors import ReconciliationError

ARTICLE = """\
<article>
  <title>Dynamic Reasoning on XML Updates</title>
  <abstract>PULs can be exchanged among nodes.</abstract>
  <authors>
    <author>F. Cavalieri</author>
  </authors>
  <status>draft</status>
</article>"""


def main():
    network = SimulatedNetwork(latency=0.02)
    executor = Executor(ARTICLE)
    executor.register_producer("giovanna", ProducerPolicy(
        preserve_insertion_order=True, preserve_inserted_data=True))
    executor.register_producer("marco", ProducerPolicy())
    executor.register_producer("federico", ProducerPolicy(
        preserve_inserted_data=True))

    producers = {name: Producer(name)
                 for name in ("giovanna", "marco", "federico")}
    for name, producer in producers.items():
        snapshot = executor.snapshot_for(name)
        network.send("executor", name, snapshot, kind="checkout")
        producer.checkout(snapshot)

    # everyone edits the same regions of the document
    edits = {
        "giovanna": """
            insert node <author>G. Guerrini</author>
                after /article/authors/author[1],
            replace value of node /article/status/text() with "submitted"
        """,
        "marco": """
            insert node <author>M. Mesiti</author>
                after /article/authors/author[1],
            replace value of node /article/status/text() with "camera-ready"
        """,
        "federico": """
            rename node /article/abstract as summary
        """,
    }
    messages = []
    for name, query in edits.items():
        pul = producers[name].produce(query)
        message = producers[name].message_for(pul)
        network.send(name, "executor", message)
        messages.append(message)

    version, conflicts = executor.execute_parallel(messages)
    print("Detected conflicts:")
    for conflict in conflicts:
        print("   ", conflict.describe())
    print("\nReconciled and executed as version", version)
    print("\nAuthoritative document now:\n")
    print(executor.text())
    print("\nNetwork summary:", network.summary())

    # a variant that cannot be reconciled: everyone demands order
    strict = Executor(ARTICLE)
    for name in producers:
        strict.register_producer(name, ProducerPolicy(
            preserve_insertion_order=True))
    strict_messages = []
    for name, query in edits.items():
        producer = Producer(name)
        producer.checkout(strict.snapshot_for(name))
        strict_messages.append(producer.message_for(
            producer.produce(edits[name])))
    try:
        strict.execute_parallel(strict_messages)
    except ReconciliationError as error:
        print("\nAll-producers-demand-order variant correctly fails:")
        print("   ", error)


if __name__ == "__main__":
    main()
