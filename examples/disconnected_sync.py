"""Disconnected execution: sequential PULs aggregated into one delta.

A producer checks out a catalogue, goes offline, and keeps editing its
local copy — each edit yields a PUL that it applies locally (new nodes get
identifiers from the producer's assigned id space, so later edits can
target them). On reconnection it ships the *aggregate* of the session
(Section 3.3) instead of the PUL sequence: the executor applies one PUL in
a single streamed pass, and the result is identical to replaying the whole
sequence.

Run: ``python examples/disconnected_sync.py``
"""

from repro.aggregation import aggregate
from repro.distributed import Executor, Producer, SimulatedNetwork
from repro.pul.serialize import pul_to_xml

CATALOGUE = """\
<catalogue>
  <section name="databases">
    <book><title>Principles of Data Integration</title></book>
  </section>
  <section name="systems"/>
</catalogue>"""

OFFLINE_EDITS = (
    # 1: add a book; its nodes get producer-assigned identifiers
    """insert node
         <book><title>XML Data Management</title></book>
       as last into /catalogue/section[@name = "databases"]""",
    # 2: edit *inside the book added by the previous PUL*
    """insert node <year>2011</year> as last into
         /catalogue/section[1]/book[2],
       replace value of node /catalogue/section[1]/book[2]/title/text()
         with "XML Data Management, 2nd ed." """,
    # 3: more edits, including on original nodes
    """rename node /catalogue/section[2] as area,
       insert node <book><title>Streaming XML</title></book>
         as first into /catalogue/section[1]""",
)


def main():
    network = SimulatedNetwork(latency=0.05, bandwidth=1_000_000)
    executor = Executor(CATALOGUE)
    executor.register_producer("laptop")
    producer = Producer("laptop")
    producer.checkout(network.send("executor", "laptop",
                                   executor.snapshot_for("laptop"),
                                   kind="checkout"))

    session = []
    for query in OFFLINE_EDITS:
        pul = producer.produce_and_apply(query)
        session.append(pul)
        print("offline edit -> PUL with {} ops".format(len(pul)))

    # option A: ship every PUL (three messages, three executor passes)
    naive_bytes = sum(len(pul_to_xml(p).encode()) for p in session)

    # option B: aggregate the session into one delta (Definition 13)
    delta = aggregate(session)
    message = producer.message_for(delta)
    network.send("laptop", "executor", message)
    print("\nsession of {} PULs aggregated into one delta of {} ops"
          .format(len(session), len(delta)))
    print("bytes shipped: {} (vs {} for the raw sequence)".format(
        message.size_bytes(), naive_bytes))

    executor.execute_sequential([message])
    print("\nexecutor document after one streamed pass:\n")
    print(executor.text())

    # the local copy and the authoritative copy converged
    from repro.xdm.compare import nodes_equal
    assert nodes_equal(executor.document.root, producer.document.root,
                       with_ids=True)
    print("\nlocal and authoritative copies converged (same node ids).")
    print("network summary:", network.summary())


if __name__ == "__main__":
    main()
