from setuptools import find_packages, setup

setup(
    name="repro-xquery-pul",
    version="0.3.0",
    description=(
        "Reproduction of 'Updating XML documents through PULs' "
        "(EDBT 2011): PUL reduction, aggregation, integration, a "
        "sharded parallel pipeline, and a resident multi-document "
        "update store with incremental relabeling"),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
