"""Property tests of Proposition 4: the aggregate is substitutable to the
sequential application, on randomly generated PUL chains."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import aggregate
from repro.pul.equivalence import sequential_obtainable_strings
from repro.pul.pul import PUL
from repro.pul.semantics import (
    ObtainableLimitExceeded,
    apply_pul,
    obtainable_set,
)
from repro.xdm.compare import canonical_string

from tests.strategies import applicable_puls, documents

_SETTINGS = dict(max_examples=50, deadline=None)


@settings(**_SETTINGS)
@given(st.data())
def test_aggregate_matches_deterministic_sequence(data):
    """Deterministic oracle: aggregate and sequence agree byte-for-byte
    under the deterministic tie-breaks when no ins↓ is involved."""
    document = data.draw(documents(max_depth=2, max_children=2))
    first = data.draw(applicable_puls(document, max_ops=4,
                                      stamp_ids=True, include_into=False))
    intermediate = document.copy()
    try:
        apply_pul(intermediate, first, preserve_ids=True)
    except Exception:
        return  # e.g. duplicate attribute collision — invalid premise
    if intermediate.root is None:
        return
    second = data.draw(applicable_puls(intermediate, max_ops=4,
                                       stamp_ids=True, include_into=False))
    try:
        combined = aggregate([first, second])
    except Exception:
        return
    sequential = intermediate
    try:
        apply_pul(sequential, second, preserve_ids=True)
    except Exception:
        return
    aggregated = document.copy()
    apply_pul(aggregated, combined, preserve_ids=True)
    key_seq = canonical_string(sequential.root, with_ids=True) \
        if sequential.root else ""
    key_agg = canonical_string(aggregated.root, with_ids=True) \
        if aggregated.root else ""
    assert key_agg == key_seq


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_aggregate_substitutable_with_into(data):
    """Proposition 4 proper: with ins↓ in play the aggregate is only
    substitutable — every aggregate outcome is a sequential outcome."""
    document = data.draw(documents(max_depth=2, max_children=2))
    first = data.draw(applicable_puls(document, max_ops=3,
                                      stamp_ids=True))
    intermediate = document.copy()
    try:
        apply_pul(intermediate, first, preserve_ids=True)
    except Exception:
        return
    if intermediate.root is None:
        return
    second = data.draw(applicable_puls(intermediate, max_ops=3,
                                       stamp_ids=True))
    try:
        combined = aggregate([first, second])
        agg_outcomes = set(obtainable_set(
            document, combined, limit=2000, with_ids=True,
            preserve_ids=True).keys())
        seq_outcomes = sequential_obtainable_strings(
            document, [first, second], limit=2000, with_ids=True,
            preserve_ids=True)
    except (ObtainableLimitExceeded, RuntimeError):
        return
    except Exception:
        return
    assert agg_outcomes <= seq_outcomes
