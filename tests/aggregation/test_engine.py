"""Unit tests for the aggregation rules (Figure 5) and Algorithm 2."""

import pytest

from repro.aggregation import aggregate
from repro.errors import NotApplicableError
from repro.pul.ops import (
    Delete,
    InsertAfter,
    InsertAttributes,
    InsertBefore,
    InsertIntoAsFirst,
    InsertIntoAsLast,
    Rename,
    ReplaceChildren,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.pul.semantics import apply_pul
from repro.xdm import parse_document, serialize
from repro.xdm.compare import canonical_string
from repro.xdm.node import Node
from repro.xdm.parser import parse_forest


def tree(text, first_id=None):
    """One parameter tree, ids stamped in document order when requested."""
    (root,) = parse_forest(text)
    if first_id is not None:
        for offset, node in enumerate(root.iter_subtree()):
            node.node_id = first_id + offset
    return root


def check_matches_sequence(xml, puls, **kwargs):
    """Aggregate ``puls`` and compare with the sequential application.

    Identity must be preserved for the original nodes and for parameter
    nodes that carry producer-assigned ids; fresh ids of *anonymous* new
    nodes legitimately differ between one combined application and the
    replayed sequence, so they are erased before comparing.
    """
    source = parse_document(xml)
    known = set(source.node_ids())
    for pul in puls:
        for op in pul:
            for tree in op.trees:
                for node in tree.iter_subtree():
                    if node.node_id is not None:
                        known.add(node.node_id)
    combined = aggregate(puls, **kwargs)
    sequential = source.copy()
    for pul in puls:
        apply_pul(sequential, pul, preserve_ids=True)
    aggregated = source.copy()
    apply_pul(aggregated, combined, preserve_ids=True)
    for document in (sequential, aggregated):
        if document.root is None:
            continue
        for node in document.root.iter_subtree():
            if node.node_id not in known:
                node.node_id = None
    key_seq = canonical_string(sequential.root, with_ids=True) \
        if sequential.root else ""
    key_agg = canonical_string(aggregated.root, with_ids=True) \
        if aggregated.root else ""
    assert key_agg == key_seq, (serialize(aggregated),
                                serialize(sequential))
    return combined


class TestWithinPulCollapse:
    def test_a1_a2_same_variant_merge(self):
        pul = PUL([InsertIntoAsLast(0, [tree("<p/>", 10)]),
                   InsertIntoAsLast(0, [tree("<q/>", 11)])])
        combined = check_matches_sequence("<a><b/></a>", [pul])
        assert len(combined) == 1
        assert combined[0].param_key() == "<p/><q/>"

    def test_a2_first_variant_reversed(self):
        pul = PUL([InsertIntoAsFirst(0, [tree("<p/>", 10)]),
                   InsertIntoAsFirst(0, [tree("<q/>", 11)])])
        combined = check_matches_sequence("<a><b/></a>", [pul])
        assert combined[0].param_key() == "<q/><p/>"


class TestCrossPulRules:
    def test_b3_rename_overridden(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([Rename(1, "first")]), PUL([Rename(1, "second")])])
        assert combined == PUL([Rename(1, "second")])

    def test_b3_replace_value(self):
        combined = check_matches_sequence(
            "<a>t</a>",
            [PUL([ReplaceValue(1, "one")]), PUL([ReplaceValue(1, "two")])])
        assert combined == PUL([ReplaceValue(1, "two")])

    def test_b3_replace_children(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([ReplaceChildren(0, "one")]),
             PUL([ReplaceChildren(0, "two")])])
        assert len(combined) == 1
        assert combined[0].param_key() == "two"

    def test_c4_insert_last_cumulates(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([InsertIntoAsLast(0, [tree("<p/>", 10)])]),
             PUL([InsertIntoAsLast(0, [tree("<q/>", 12)])])])
        assert len(combined) == 1
        assert combined[0].param_key() == "<p/><q/>"

    def test_c4_insert_before_cumulates(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([InsertBefore(1, [tree("<p/>", 10)])]),
             PUL([InsertBefore(1, [tree("<q/>", 12)])])])
        assert combined[0].param_key() == "<p/><q/>"

    def test_c5_insert_after_reverses(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([InsertAfter(1, [tree("<p/>", 10)])]),
             PUL([InsertAfter(1, [tree("<q/>", 12)])])])
        assert combined[0].param_key() == "<q/><p/>"

    def test_c5_insert_first_reverses(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([InsertIntoAsFirst(0, [tree("<p/>", 10)])]),
             PUL([InsertIntoAsFirst(0, [tree("<q/>", 12)])])])
        assert combined[0].param_key() == "<q/><p/>"

    def test_insa_both_kept(self):
        first = InsertAttributes(0, [Node.attribute("k1", "1")])
        second = InsertAttributes(0, [Node.attribute("k2", "2")])
        combined = check_matches_sequence(
            "<a/>", [PUL([first]), PUL([second])])
        assert len(combined) == 2


class TestRuleD6:
    def test_update_inside_inserted_tree(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([InsertIntoAsLast(1, [tree("<art><t>X</t></art>", 10)])]),
             PUL([ReplaceValue(12, "Y")])])
        assert len(combined) == 1
        assert "<t>Y</t>" in combined[0].param_key()

    def test_insert_into_inserted_tree(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([InsertIntoAsLast(1, [tree("<art/>", 10)])]),
             PUL([InsertIntoAsLast(10, [tree("<x/>", 20)])])])
        assert len(combined) == 1
        assert combined[0].param_key() == "<art><x/></art>"

    def test_delete_inside_inserted_tree(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([InsertIntoAsLast(1, [tree("<art><t>X</t></art>", 10)])]),
             PUL([Delete(11)])])
        assert combined[0].param_key() == "<art/>"

    def test_delete_entire_inserted_tree_drops_insert(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([InsertIntoAsLast(1, [tree("<art/>", 10)])]),
             PUL([Delete(10)])])
        assert len(combined) == 0

    def test_replace_root_of_inserted_tree(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([InsertIntoAsLast(1, [tree("<art/>", 10)])]),
             PUL([ReplaceNode(10, [tree("<neu/>", 20)])])])
        assert combined[0].param_key() == "<neu/>"

    def test_three_level_chain(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([InsertIntoAsLast(1, [tree("<l1/>", 10)])]),
             PUL([InsertIntoAsLast(10, [tree("<l2/>", 20)])]),
             PUL([InsertIntoAsLast(20, [tree("<l3>x</l3>", 30)])])])
        assert combined[0].param_key() == "<l1><l2><l3>x</l3></l2></l1>"

    def test_rename_inside_replacement_parameter(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([ReplaceNode(1, [tree("<z><w/></z>", 10)])]),
             PUL([Rename(11, "w2")])])
        assert combined[0].param_key() == "<z><w2/></z>"


class TestRepCExtension:
    def test_insert_last_after_repc(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([ReplaceChildren(0, "txt")]),
             PUL([InsertIntoAsLast(0, [tree("<p/>", 10)])])])
        assert len(combined) == 1
        (op,) = combined
        assert op.op_name == "replaceChildren"
        assert not op.strict
        assert op.param_key() == "txt<p/>"

    def test_insert_first_after_repc(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([ReplaceChildren(0, "txt")]),
             PUL([InsertIntoAsFirst(0, [tree("<p/>", 10)])])])
        (op,) = combined
        assert op.param_key() == "<p/>txt"

    def test_strict_mode_refuses(self):
        puls = [PUL([ReplaceChildren(0, "txt")]),
                PUL([InsertIntoAsLast(0, [tree("<p/>", 10)])])]
        with pytest.raises(NotApplicableError):
            aggregate(puls, generalized_repc=False)

    def test_later_repc_resets(self):
        combined = check_matches_sequence(
            "<a><b/></a>",
            [PUL([ReplaceChildren(0, "one")]),
             PUL([InsertIntoAsLast(0, [tree("<p/>", 10)])]),
             PUL([ReplaceChildren(0, "fresh")])])
        assert len(combined) == 1
        assert combined[0].param_key() == "fresh"


class TestMetadata:
    def test_labels_and_origin_carried(self):
        first = PUL([Rename(1, "x")], labels={1: "L"}, origin="alice")
        second = PUL([ReplaceValue(2, "y")], labels={2: "M"})
        combined = aggregate([first, second])
        assert combined.labels == {1: "L", 2: "M"}
        assert combined.origin == "alice"

    def test_empty_input(self):
        assert len(aggregate([])) == 0

    def test_single_pul_passthrough(self):
        pul = PUL([Rename(1, "x"), Delete(2)])
        assert aggregate([pul]) == pul
