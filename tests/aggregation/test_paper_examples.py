"""Example 8 of the paper, with the same explicit node identifiers."""

import pytest

from repro.aggregation import aggregate
from repro.pul.ops import (
    InsertIntoAsLast,
    Rename,
    ReplaceNode,
    ReplaceValue,
)
from repro.pul.pul import PUL
from repro.pul.semantics import apply_pul
from repro.xdm import parse_document
from repro.xdm.compare import canonical_string
from repro.xdm.parser import parse_forest

#: nodes 3 (an element), 8 (a text), 5 (an element) play the roles of the
#: example's 3, 10 and 5
DOC = "<lib><shelf><b1/><b2/></shelf><sec><t>x</t></sec><n>12</n></lib>"


def forest(text, ids):
    trees = parse_forest(text)
    it = iter(ids)
    for tree in trees:
        for node in tree.iter_subtree():
            node.node_id = next(it)
    return trees


@pytest.fixture
def example8():
    document = parse_document(DOC)
    d1 = PUL([InsertIntoAsLast(3, forest(
                  "<article><title>XML</title></article>", [24, 25, 26])),
              ReplaceValue(8, "13")])
    d2 = PUL([InsertIntoAsLast(24, forest(
                  "<author>G G</author><author>M M</author>",
                  [27, 28, 29, 30])),
              Rename(5, "title")])
    d3 = PUL([ReplaceNode(29, forest("<author>F C</author>", [31, 32])),
              Rename(5, "name"),
              ReplaceValue(26, "On XML")])
    return document, d1, d2, d3


class TestExample8:
    def test_two_pul_aggregation(self, example8):
        __, d1, d2, ___ = example8
        combined = aggregate([d1, d2])
        ops = {op.op_name: op for op in combined}
        assert len(combined) == 3
        assert ops["insertIntoAsLast"].param_key() == (
            "<article><title>XML</title><author>G G</author>"
            "<author>M M</author></article>")
        assert ops["replaceValue"].value == "13"
        assert ops["rename"].name == "title"

    def test_three_pul_aggregation(self, example8):
        __, d1, d2, d3 = example8
        combined = aggregate([d1, d2, d3])
        ops = {op.op_name: op for op in combined}
        assert len(combined) == 3
        # D6 applied twice: the text 26 renamed inside the parameter and
        # author 29 replaced by author 31
        assert ops["insertIntoAsLast"].param_key() == (
            "<article><title>On XML</title><author>G G</author>"
            "<author>F C</author></article>")
        # B3: the ren of d2 is overridden by the ren of d3
        assert ops["rename"].name == "name"

    def test_identifiers_inside_parameter(self, example8):
        __, d1, d2, d3 = example8
        combined = aggregate([d1, d2, d3])
        insert = next(op for op in combined
                      if op.op_name == "insertIntoAsLast")
        ids = [n.node_id for n in insert.trees[0].iter_subtree()]
        assert ids == [24, 25, 26, 27, 28, 31, 32]

    def test_proposition4_sequential_equivalence(self, example8):
        document, d1, d2, d3 = example8
        combined = aggregate([d1, d2, d3])
        sequential = document.copy()
        for pul in (d1, d2, d3):
            apply_pul(sequential, pul, preserve_ids=True)
        aggregated = document.copy()
        apply_pul(aggregated, combined, preserve_ids=True)
        assert canonical_string(aggregated.root, with_ids=True) == \
            canonical_string(sequential.root, with_ids=True)
