"""CLI tests (in-process, via main())."""

import io

import pytest

from repro.cli import main
from repro.pul.serialize import pul_from_xml

DOC = ("<bib><paper><title>T</title><authors><author>A</author>"
       "</authors></paper></bib>")


@pytest.fixture
def doc_path(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOC)
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def produce(doc_path, tmp_path, query, name="p.pul", origin=None):
    argv = ["produce", doc_path, query]
    if origin:
        argv += ["--origin", origin]
    code, output = run(argv)
    assert code == 0
    path = tmp_path / name
    path.write_text(output)
    return str(path)


class TestProduce:
    def test_produce_prints_pul(self, doc_path, tmp_path):
        code, output = run(["produce", doc_path,
                            "delete nodes //author"])
        assert code == 0
        pul = pul_from_xml(output.strip())
        assert len(pul) == 1
        assert pul.labels  # labels attached

    def test_origin_recorded(self, doc_path, tmp_path):
        code, output = run(["produce", doc_path, "delete nodes //author",
                            "--origin", "alice"])
        assert pul_from_xml(output.strip()).origin == "alice"

    def test_bad_query_fails_cleanly(self, doc_path):
        code, __ = run(["produce", doc_path, "explode /bib"])
        assert code == 2


class TestReduce:
    def test_reduce_collapses(self, doc_path, tmp_path):
        pul_path = produce(
            doc_path, tmp_path,
            "rename node //title as dead, "
            "replace node //title with <title>n</title>")
        code, output = run(["reduce", doc_path, pul_path])
        assert code == 0
        assert len(pul_from_xml(output.strip())) == 1

    def test_reduce_uses_pul_labels_without_document(self, doc_path,
                                                     tmp_path):
        pul_path = produce(
            doc_path, tmp_path,
            "rename node //title as dead, delete node //title")
        code, output = run(["reduce", pul_path])
        assert code == 0
        assert len(pul_from_xml(output.strip())) == 1

    def test_canonical_flag(self, doc_path, tmp_path):
        pul_path = produce(doc_path, tmp_path,
                           "insert node <x/> into //authors")
        code, output = run(["reduce", "--canonical", doc_path, pul_path])
        assert code == 0
        (op,) = pul_from_xml(output.strip())
        assert op.op_name == "insertIntoAsFirst"


class TestIntegrate:
    def test_conflicts_reported_with_exit_code(self, doc_path, tmp_path):
        p1 = produce(doc_path, tmp_path,
                     "rename node //title as a", name="p1.pul",
                     origin="alice")
        p2 = produce(doc_path, tmp_path,
                     "rename node //title as b", name="p2.pul",
                     origin="bob")
        code, output = run(["integrate", "--document", doc_path, p1, p2])
        assert code == 1  # conflicts present

    def test_reconcile(self, doc_path, tmp_path):
        p1 = produce(doc_path, tmp_path,
                     "rename node //title as a", name="p1.pul",
                     origin="alice")
        p2 = produce(doc_path, tmp_path,
                     "rename node //title as b", name="p2.pul",
                     origin="bob")
        code, output = run(["integrate", "--document", doc_path,
                            "--reconcile", p1, p2])
        assert code == 0
        assert len(pul_from_xml(output.strip())) == 1

    def test_policy_parsing(self, doc_path, tmp_path):
        p1 = produce(doc_path, tmp_path,
                     'replace value of node //title/text() with "mine"',
                     name="p1.pul", origin="alice")
        p2 = produce(doc_path, tmp_path,
                     'replace value of node //title/text() with "theirs"',
                     name="p2.pul", origin="bob")
        code, output = run(["integrate", "--document", doc_path,
                            "--reconcile", "--policy", "bob:inserted",
                            p1, p2])
        assert code == 0
        (op,) = pul_from_xml(output.strip())
        assert op.value == "theirs"


class TestAggregateApplyInvert:
    def test_aggregate(self, doc_path, tmp_path):
        p1 = produce(doc_path, tmp_path,
                     "insert node <y>1</y> as last into //paper",
                     name="p1.pul")
        p2 = produce(doc_path, tmp_path,
                     "insert node <z>2</z> as last into //paper",
                     name="p2.pul")
        code, output = run(["aggregate", p1, p2])
        assert code == 0
        # rule C4 cumulates the two same-anchor inserts into one operation
        (op,) = pul_from_xml(output.strip())
        assert len(op.trees) == 2

    def test_apply_streaming_and_inmemory_agree(self, doc_path, tmp_path):
        pul_path = produce(doc_path, tmp_path,
                           "rename node //title as maintitle")
        code_s, out_s = run(["apply", doc_path, pul_path])
        code_m, out_m = run(["apply", "--in-memory", doc_path, pul_path])
        assert code_s == code_m == 0
        assert out_s == out_m
        assert "<maintitle>" in out_s

    def test_invert_roundtrip(self, doc_path, tmp_path):
        pul_path = produce(doc_path, tmp_path, "delete nodes //author")
        code, forward_xml = run(["invert", "--forward", doc_path,
                                 pul_path])
        assert code == 0
        code, inverse_xml = run(["invert", doc_path, pul_path])
        assert code == 0
        inverse = pul_from_xml(inverse_xml.strip())
        assert len(inverse) == 1

    def test_missing_file(self, doc_path):
        code, __ = run(["apply", doc_path, "/nonexistent.pul"])
        assert code == 2


class TestStore:
    def test_serve_script(self, doc_path, tmp_path):
        pul_path = produce(doc_path, tmp_path,
                           "rename node //title as headline",
                           origin="alice")
        script = tmp_path / "session.txt"
        script.write_text(
            "open d1 {doc}\n"
            "submit d1 {pul} alice\n"
            "flush d1\n"
            "text d1\n"
            "quit\n".format(doc=doc_path, pul=pul_path))
        code, output = run(["store", "serve", "--backend", "serial",
                            "--script", str(script)])
        assert code == 0
        lines = output.splitlines()
        assert lines[0].startswith("ok opened d1")
        assert any("relabel=incremental" in line for line in lines)
        assert any("<headline>T</headline>" in line for line in lines)
        assert lines[-1] == "ok bye"

    def test_serve_reports_command_errors(self, tmp_path):
        script = tmp_path / "session.txt"
        script.write_text("flush nowhere\nquit\n")
        code, output = run(["store", "serve", "--backend", "serial",
                            "--script", str(script)])
        assert code == 0
        assert output.splitlines()[0].startswith("error")

    def test_snapshot_every_implies_snapshot_mode(self, doc_path,
                                                  tmp_path):
        import os

        pul_path = produce(doc_path, tmp_path,
                           "rename node //title as headline",
                           origin="alice")
        script = tmp_path / "session.txt"
        script.write_text(
            "open d1 {doc}\n"
            "submit d1 {pul} alice\n"
            "flush d1\n"
            "quit\n".format(doc=doc_path, pul=pul_path))
        wal_dir = tmp_path / "wal"
        code, __ = run(["store", "serve", "--backend", "serial",
                        "--wal-dir", str(wal_dir),
                        "--snapshot-every", "1",
                        "--script", str(script)])
        assert code == 0
        # the interval alone must buy compaction, not be dropped
        assert any(name.startswith("snapshot-")
                   for name in os.listdir(str(wal_dir)))

    def test_snapshot_every_requires_wal_dir(self):
        code, __ = run(["store", "serve", "--backend", "serial",
                        "--snapshot-every", "4",
                        "--script", "/dev/null"])
        assert code == 2

    def test_snapshot_every_rejects_non_snapshot_mode(self, tmp_path):
        code, __ = run(["store", "serve", "--backend", "serial",
                        "--wal-dir", str(tmp_path / "wal"),
                        "--durability", "log",
                        "--snapshot-every", "4",
                        "--script", "/dev/null"])
        assert code == 2

    def test_recover_refuses_missing_wal_dir(self, tmp_path):
        missing = tmp_path / "nonexistent"
        code, __ = run(["store", "recover", "--backend", "serial",
                        "--wal-dir", str(missing)])
        assert code == 2
        # and the typo'd path was not conjured into existence
        assert not missing.exists()

    def test_query_against_a_durability_directory(self, doc_path,
                                                  tmp_path):
        script = tmp_path / "session.txt"
        script.write_text("open d1 {doc}\nquit\n".format(doc=doc_path))
        wal_dir = str(tmp_path / "wal")
        code, __ = run(["store", "serve", "--backend", "serial",
                        "--wal-dir", wal_dir, "--script", str(script)])
        assert code == 0
        code, output = run(["store", "query", "--backend", "serial",
                            "--wal-dir", wal_dir, "d1", "//author"])
        assert code == 0
        assert "doc d1 version 0: 1 node(s)" in output
        assert "<author>A</author>" in output

    def test_query_explain_prints_the_plan(self, doc_path, tmp_path):
        script = tmp_path / "session.txt"
        script.write_text("open d1 {doc}\nquit\n".format(doc=doc_path))
        wal_dir = str(tmp_path / "wal")
        run(["store", "serve", "--backend", "serial",
             "--wal-dir", wal_dir, "--script", str(script)])
        code, output = run(["store", "query", "--backend", "serial",
                            "--wal-dir", wal_dir, "d1",
                            "//paper//author", "--explain"])
        assert code == 0
        assert "plan: indexed execution" in output
        assert output.count("index-scan") == 2
        assert "<author>" not in output    # explain carries no nodes

    def test_query_requires_a_store_location(self):
        code, __ = run(["store", "query", "d1", "//author"])
        assert code == 2

    def test_bench_reports_comparison(self):
        code, output = run(["store", "bench", "--backend", "serial",
                            "--scale", "0.01", "--rounds", "2",
                            "--ops", "6", "--clients", "2"])
        assert code == 0
        assert "resident-incremental" in output
        assert "parse+full-relabel" in output
        assert "byte-identical" in output
