"""End-to-end: N concurrent network clients against the stateless oracle.

Two layers:

* in-process — a :class:`StoreServer` on the test's event loop, eight
  :class:`AsyncStoreClient` sessions submitting interleaved XQuery
  updates and raw PULs, with every final document byte-compared against
  a :class:`StatelessBaseline` fed the same submissions;
* subprocess — ``repro store serve --listen`` on a durable store,
  eight concurrent clients, then SIGTERM with submissions still
  queued: the drain-first shutdown must push them into the write-ahead
  log, and the *recovered* store must be byte-identical to the oracle.
"""

import asyncio
import os
import signal
import subprocess
import sys

from repro.api import AsyncStoreClient, StoreServer
from repro.pul.ops import ReplaceValue
from repro.pul.pul import PUL
from repro.store import DocumentStore, StatelessBaseline
from repro.xdm.parser import parse_document

CLIENTS = 8
ROUNDS = 3

SHARED_DOC = "<shared>{}</shared>".format(
    "".join("<s{0}>v</s{0}>".format(i) for i in range(CLIENTS)))


def client_doc(index):
    return ("<doc><items/><meta><owner>c{}</owner></meta></doc>"
            .format(index))


def owner_text_id(doc_text):
    """Node id of the owner text node (ids are parse-deterministic, so
    the client can compute them locally from the text it opened)."""
    document = parse_document(doc_text)
    owner = next(n for n in document.nodes()
                 if n.is_element and n.name == "owner")
    return owner.children[0].node_id


def insert_expr(round_index):
    return ('insert node <item r="{}"/> as last into /doc/items'
            .format(round_index))


def owner_pul(text_id, round_index, origin):
    return PUL([ReplaceValue(text_id, "v{}".format(round_index))],
               origin=origin)


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestConcurrentClientsMatchBaseline:
    def test_eight_clients_interleaving_xquery_and_raw_puls(self):
        """Each client drives its own document through flushed rounds
        of server-compiled XQuery updates interleaved with locally
        produced PULs; all eight also hit one shared document whose
        batch coalesces across all eight identities."""
        final = {}

        async def client_session(server, index):
            host, port = server.tcp_address
            client = await AsyncStoreClient.connect(
                host=host, port=port, client="c{}".format(index))
            doc_id = "d{}".format(index)
            doc_text = client_doc(index)
            text_id = owner_text_id(doc_text)
            await client.open(doc_id, doc_text)
            for round_index in range(ROUNDS):
                await client.submit_xquery(doc_id,
                                           insert_expr(round_index))
                await client.submit(doc_id, owner_pul(
                    text_id, round_index, "c{}".format(index)))
                flushed = await client.flush(doc_id)
                assert flushed["version"] == round_index + 1
            await client.submit_xquery(
                "shared",
                'rename node /shared/s{0} as "t{0}"'.format(index))
            final[doc_id] = (await client.text(doc_id))["text"]
            await client.aclose()

        async def scenario():
            server = StoreServer(
                DocumentStore(workers=2, backend="thread"),
                host="127.0.0.1", port=0)
            async with server:
                opener = await AsyncStoreClient.connect(
                    host=server.tcp_address[0],
                    port=server.tcp_address[1], client="opener")
                await opener.open("shared", SHARED_DOC)
                await asyncio.gather(*[
                    client_session(server, index)
                    for index in range(CLIENTS)])
                flushed = await opener.flush("shared")
                # all eight identities coalesced into one batch
                assert flushed["clients"] == CLIENTS
                final["shared"] = (await opener.text("shared"))["text"]
                await opener.aclose()

        run(scenario())

        # the oracle: same submissions, same per-client order
        baseline = StatelessBaseline(measure_parse=False)
        for index in range(CLIENTS):
            doc_id = "d{}".format(index)
            doc_text = client_doc(index)
            text_id = owner_text_id(doc_text)
            baseline.open(doc_id, doc_text)
            for round_index in range(ROUNDS):
                from repro.xquery import compile_pul
                baseline.submit(doc_id, compile_pul(
                    insert_expr(round_index),
                    baseline.document(doc_id)),
                    client="c{}".format(index))
                baseline.submit(doc_id, owner_pul(
                    text_id, round_index, "c{}".format(index)),
                    client="c{}".format(index))
                baseline.flush(doc_id)
            assert final[doc_id] == baseline.text(doc_id), doc_id
        from repro.xquery import compile_pul
        baseline.open("shared", SHARED_DOC)
        for index in range(CLIENTS):
            baseline.submit("shared", compile_pul(
                'rename node /shared/s{0} as "t{0}"'.format(index),
                baseline.document("shared")),
                client="c{}".format(index))
        baseline.flush("shared")
        assert final["shared"] == baseline.text("shared")


class TestSigtermDrainRecovery:
    def test_sigterm_drains_and_recovery_matches_oracle(self, tmp_path):
        """The acceptance path: concurrent clients leave submissions
        *queued* when SIGTERM lands; the drain-first shutdown flushes
        them into the WAL, and the recovered store is byte-identical to
        the stateless oracle that saw every submission."""
        wal_dir = str(tmp_path / "wal")
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "store", "serve",
             "--listen", "127.0.0.1:0", "--backend", "thread",
             "--wal-dir", wal_dir, "--durability", "log"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            banner = process.stdout.readline().strip()
            assert banner.startswith("listening tcp "), banner
            port = int(banner.rsplit(":", 1)[1])

            async def client_session(index):
                client = await AsyncStoreClient.connect(
                    host="127.0.0.1", port=port,
                    client="c{}".format(index))
                doc_id = "d{}".format(index)
                doc_text = client_doc(index)
                text_id = owner_text_id(doc_text)
                await client.open(doc_id, doc_text)
                for round_index in range(ROUNDS):
                    await client.submit_xquery(doc_id,
                                               insert_expr(round_index))
                    await client.flush(doc_id)
                # the queued tail SIGTERM must not lose: one raw PUL
                # and one expression submission, never flushed
                await client.submit(doc_id, owner_pul(
                    text_id, 99, "c{}".format(index)))
                await client.submit_xquery(
                    doc_id, 'insert node <tail/> as last into /doc')
                await client.aclose()

            async def drive():
                await asyncio.gather(*[client_session(index)
                                       for index in range(CLIENTS)])
            asyncio.run(asyncio.wait_for(drive(), 120))

            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        from repro.xquery import compile_pul
        with DocumentStore(backend="serial", durability="log",
                           wal_dir=wal_dir) as recovered:
            assert recovered.recovery is not None
            baseline = StatelessBaseline(measure_parse=False)
            for index in range(CLIENTS):
                doc_id = "d{}".format(index)
                doc_text = client_doc(index)
                text_id = owner_text_id(doc_text)
                baseline.open(doc_id, doc_text)
                for round_index in range(ROUNDS):
                    baseline.submit(doc_id, compile_pul(
                        insert_expr(round_index),
                        baseline.document(doc_id)),
                        client="c{}".format(index))
                    baseline.flush(doc_id)
                baseline.submit(doc_id, owner_pul(
                    text_id, 99, "c{}".format(index)),
                    client="c{}".format(index))
                baseline.submit(doc_id, compile_pul(
                    'insert node <tail/> as last into /doc',
                    baseline.document(doc_id)),
                    client="c{}".format(index))
                baseline.flush(doc_id)   # the drain's flush
                assert recovered.text(doc_id) == \
                    baseline.text(doc_id), doc_id
                assert recovered.version(doc_id) == ROUNDS + 1
