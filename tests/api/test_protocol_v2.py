"""The protocol-v2 binary codec and the version negotiation matrix.

Three layers of guarantee:

* codec — every v1-shaped message (request / ok / error, with the full
  JSON value range: unicode, floats, unbounded ints, nesting) encodes
  to a v2 binary payload and decodes back to the *identical* dict, and
  malformed payloads only ever raise :class:`ProtocolError`;
* negotiation — a v1-only peer on either side of the connection lands
  on v1 JSON and keeps full functionality; two v2 peers switch after
  the hello response and never exchange a JSON frame again;
* end-to-end — a v1-only client and a v2 client driving one server
  produce stores byte-identical to the :class:`StatelessBaseline`
  oracle (the codec must not influence results, only their encoding).
"""

import asyncio
import json
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AsyncStoreClient, StoreClient, StoreServer, protocol
from repro.api.protocol import (
    OP_CODES,
    FrameDecoder,
    decode_payload,
    encode_frame,
)
from repro.errors import ProtocolError, RemoteOSError, UnknownNodeError
from repro.pul.ops import ReplaceValue
from repro.pul.pul import PUL
from repro.store import DocumentStore, StatelessBaseline
from repro.xdm.parser import parse_document
from repro.xquery import compile_pul

json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(-2**80, 2**80)          # past i64: the bigint escape
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10)

args_maps = st.dictionaries(st.text(max_size=8), json_values, max_size=4)

v2_messages = (
    st.builds(protocol.request,
              json_values,
              st.sampled_from(sorted(OP_CODES) + ["future-op"]),
              args_maps)
    | st.builds(protocol.ok_response, json_values, json_values)
    | st.builds(lambda rid, err: {"id": rid, "ok": False, "error": err},
                json_values, args_maps))


def v2_roundtrip(message):
    frame = encode_frame(message, version=2)
    return decode_payload(frame[protocol.HEADER_SIZE:], version=2)


class TestV2RoundTrip:
    @given(v2_messages)
    def test_any_message_roundtrips_identically(self, message):
        assert v2_roundtrip(message) == message

    @given(st.lists(v2_messages, max_size=6),
           st.lists(st.integers(0, 4096), max_size=8))
    def test_any_chunking_decodes_the_same_frames(self, objs, cuts):
        data = b"".join(encode_frame(obj, version=2) for obj in objs)
        decoder = FrameDecoder(version=2)
        decoded = []
        bounds = sorted({min(c, len(data)) for c in cuts}) + [len(data)]
        start = 0
        for bound in bounds:
            decoded.extend(decoder.feed(data[start:bound]))
            start = bound
        assert decoded == objs
        assert decoder.at_boundary()

    def test_table_op_packs_to_one_byte(self):
        message = protocol.request(1, "submit", {"doc_id": "d"})
        frame = encode_frame(message, version=2)
        assert OP_CODES["submit"] in frame
        assert b"submit" not in frame          # the name never travels
        assert v2_roundtrip(message) == message

    def test_unknown_op_travels_through_the_named_escape(self):
        message = protocol.request(1, "op-from-the-future", {"k": "v"})
        frame = encode_frame(message, version=2)
        assert b"op-from-the-future" in frame
        assert v2_roundtrip(message) == message

    def test_xml_payload_travels_as_raw_bytes(self):
        """The codec's point: no JSON escaping of document payloads —
        the XML bytes appear verbatim inside the binary frame."""
        xml = '<doc a="1">text &amp; "quotes" é</doc>'
        message = protocol.request(3, "open",
                                   {"doc_id": "d", "xml": xml})
        frame = encode_frame(message, version=2)
        assert xml.encode("utf-8") in frame
        json_frame = encode_frame(message, version=1)
        assert xml.encode("utf-8") not in json_frame   # v1 must escape
        assert v2_roundtrip(message) == message

    def test_empty_args_are_omitted_like_v1(self):
        message = {"id": 5, "op": "docs"}
        assert v2_roundtrip(message) == message
        assert "args" not in v2_roundtrip(
            {"id": 5, "op": "docs", "args": {}})

    def test_error_response_shape_survives(self):
        response = protocol.error_response(9, UnknownNodeError(42))
        assert v2_roundtrip(response) == response
        with pytest.raises(UnknownNodeError):
            protocol.parse_response(v2_roundtrip(response))


class TestV2Malformed:
    def decode(self, payload):
        return decode_payload(payload, version=2)

    def test_empty_payload(self):
        with pytest.raises(ProtocolError):
            self.decode(b"")

    def test_unknown_frame_kind(self):
        with pytest.raises(ProtocolError):
            self.decode(b"\x7f\x00")

    def test_unknown_type_tag(self):
        with pytest.raises(ProtocolError):
            self.decode(b"\x02\x00\x7f")      # ok frame, bad term tag

    def test_unknown_op_code(self):
        # request, id=None, op code far outside the table
        with pytest.raises(ProtocolError) as excinfo:
            self.decode(b"\x01\x00\xf0\x07\x00\x00\x00\x00")
        assert "op code" in str(excinfo.value)

    def test_trailing_bytes_are_rejected(self):
        frame = encode_frame({"id": 1, "op": "docs"}, version=2)
        with pytest.raises(ProtocolError) as excinfo:
            self.decode(frame[protocol.HEADER_SIZE:] + b"\x00")
        assert "trailing" in str(excinfo.value)

    def test_truncated_string_term(self):
        # str of announced length 100 with 1 byte present
        with pytest.raises(ProtocolError):
            self.decode(b"\x02\x00\x05\x00\x00\x00\x64x")

    def test_truncated_int_term(self):
        with pytest.raises(ProtocolError):
            self.decode(b"\x02\x00\x03\x00\x00")

    def test_list_count_beyond_payload(self):
        with pytest.raises(ProtocolError):
            self.decode(b"\x02\x00\x06\xff\xff\xff\xff")

    def test_map_count_beyond_payload(self):
        with pytest.raises(ProtocolError):
            self.decode(b"\x02\x00\x07\xff\xff\xff\xff")

    def test_non_map_request_args(self):
        # request, id=None, op "docs" (code 9), args = int
        bad = b"\x01\x00" + bytes([OP_CODES["docs"]]) + \
            b"\x03" + (0).to_bytes(8, "big")
        with pytest.raises(ProtocolError) as excinfo:
            self.decode(bad)
        assert "args" in str(excinfo.value)

    def test_invalid_utf8_in_string(self):
        with pytest.raises(ProtocolError):
            self.decode(b"\x02\x00\x05\x00\x00\x00\x02\xff\xfe")

    def test_non_string_map_keys_refused_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"id": 1, "ok": True,
                          "result": {1: "x"}}, version=2)

    def test_unencodable_value_refused(self):
        with pytest.raises(ProtocolError):
            encode_frame({"id": 1, "ok": True,
                          "result": object()}, version=2)

    def test_message_with_neither_op_nor_ok_refused(self):
        with pytest.raises(ProtocolError):
            encode_frame({"id": 1}, version=2)


class TestDecoderPerformance:
    def test_many_small_frames_in_one_chunk_stay_linear(self):
        """The satellite regression: 20k pipelined tiny frames arriving
        in one chunk must decode in linear time. The old decoder paid
        ``del buffer[:end]`` per frame — O(buffer) each, quadratic
        overall, seconds for this input."""
        count = 20_000
        chunk = b"".join(
            encode_frame(protocol.ok_response(i, None))
            for i in range(count))
        decoder = FrameDecoder()
        started = time.perf_counter()
        frames = decoder.feed(chunk)
        elapsed = time.perf_counter() - started
        assert len(frames) == count
        assert frames[-1] == {"id": count - 1, "ok": True,
                              "result": None}
        assert decoder.at_boundary()
        assert elapsed < 1.5, (
            "decoding {} small frames took {:.2f}s — the consumed-"
            "prefix handling has gone quadratic again".format(
                count, elapsed))

    def test_cursor_survives_torn_frames_between_feeds(self):
        frames = [protocol.ok_response(i, "x" * i) for i in range(64)]
        data = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        decoded = []
        step = 7
        for start in range(0, len(data), step):
            decoded.extend(decoder.feed(data[start:start + step]))
        assert decoded == frames
        assert decoder.at_boundary()

    def test_mid_stream_compaction_keeps_decoding(self):
        big = protocol.ok_response(1, "y" * (80 * 1024))
        tail = protocol.ok_response(2, "z")
        data = encode_frame(big) + encode_frame(tail)
        decoder = FrameDecoder()
        # feed the big frame plus half the tail: the consumed prefix
        # exceeds the compaction threshold while bytes are pending
        cut = len(encode_frame(big)) + 3
        first = decoder.feed(data[:cut])
        assert first == [big] and not decoder.at_boundary()
        assert decoder.feed(data[cut:]) == [tail]
        assert decoder.at_boundary()


class TestErrorCodeWire:
    def test_os_code_is_registered(self):
        from repro.errors import _CODE_REGISTRY
        assert {"os", "repro"} <= set(_CODE_REGISTRY)
        assert _CODE_REGISTRY["os"] is RemoteOSError

    def test_oserror_reconstructs_remote_os_error(self):
        response = protocol.error_response(
            4, OSError(28, "No space left on device"))
        assert response["error"]["code"] == "os"
        with pytest.raises(RemoteOSError) as excinfo:
            protocol.parse_response(response)
        assert "No space left" in str(excinfo.value)

    def test_every_server_emittable_code_roundtrips_under_v2(self):
        """error_response → v2 encode/decode → parse_response must
        reconstruct the exact class for every registered code."""
        from repro.errors import _CODE_REGISTRY
        for code, klass in _CODE_REGISTRY.items():
            error = {"code": code, "message": "m",
                     "details": {"k": 1}}
            decoded = v2_roundtrip({"id": 0, "ok": False,
                                    "error": error})
            with pytest.raises(klass) as excinfo:
                protocol.parse_response(decoded)
            assert type(excinfo.value) is klass, code


DOC = "<doc><items/><meta><owner>c</owner></meta></doc>"


def run(coro, timeout=60):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def make_server():
    return StoreServer(DocumentStore(workers=2, backend="serial"),
                       host="127.0.0.1", port=0)


class TestNegotiationMatrix:
    def test_default_peers_land_on_v2(self):
        async def scenario():
            async with make_server() as server:
                host, port = server.tcp_address
                client = await AsyncStoreClient.connect(host=host,
                                                        port=port)
                assert client.protocol_version == 2
                await client.open("d", DOC)
                assert (await client.docs()) == {"docs": ["d"]}
                await client.aclose()
        run(scenario())

    def test_v1_only_client_against_a_v2_server(self):
        async def scenario():
            async with make_server() as server:
                host, port = server.tcp_address
                client = await AsyncStoreClient.connect(
                    host=host, port=port, versions=(1,))
                assert client.protocol_version == 1
                await client.open("d", DOC)
                assert (await client.docs()) == {"docs": ["d"]}
                await client.aclose()
        run(scenario())

    def test_v2_client_against_a_v1_only_server(self, monkeypatch):
        # an old server: its negotiation only knows v1
        monkeypatch.setattr(protocol, "SUPPORTED_VERSIONS", (1,))
        async def scenario():
            async with make_server() as server:
                host, port = server.tcp_address
                client = await AsyncStoreClient.connect(host=host,
                                                        port=port)
                assert client.protocol_version == 1
                await client.open("d", DOC)
                assert (await client.docs()) == {"docs": ["d"]}
                await client.aclose()
        run(scenario())

    def test_sync_client_can_force_v1(self):
        async def scenario():
            async with make_server() as server:
                host, port = server.tcp_address

                def blocking_session():
                    with StoreClient.connect(host=host, port=port,
                                             versions=(1,)) as client:
                        assert client.protocol_version == 1
                        client.open("d", DOC)
                        return client.text("d")["text"]

                loop = asyncio.get_running_loop()
                text = await loop.run_in_executor(None,
                                                  blocking_session)
                assert "<owner>c</owner>" in text
        run(scenario())

    def test_v2_connection_frames_are_binary_after_hello(self):
        """Only the hello exchange is JSON; everything after rides the
        binary codec (checked at the client's own encoder)."""
        frame = encode_frame(protocol.request(2, "docs"), version=2)
        payload = frame[protocol.HEADER_SIZE:]
        with pytest.raises((ProtocolError, ValueError)):
            json.loads(payload.decode("utf-8", errors="strict"))


class TestCrossVersionEndToEnd:
    def test_mixed_version_clients_match_the_stateless_oracle(self):
        """A v1-only client and a v2 client drive sibling documents on
        one server; both final stores must be byte-identical to a
        :class:`StatelessBaseline` fed the same submissions — the
        codec may change the bytes on the wire, never the result."""
        rounds = 3
        final = {}

        def owner_text_id(doc_text):
            document = parse_document(doc_text)
            owner = next(n for n in document.nodes()
                         if n.is_element and n.name == "owner")
            return owner.children[0].node_id

        async def session(server, doc_id, versions):
            host, port = server.tcp_address
            client = await AsyncStoreClient.connect(
                host=host, port=port, client=doc_id,
                versions=versions)
            text_id = owner_text_id(DOC)
            await client.open(doc_id, DOC)
            for index in range(rounds):
                await client.submit_xquery(
                    doc_id,
                    'insert node <item r="{}"/> as last into '
                    '/doc/items'.format(index))
                await client.submit(doc_id, PUL(
                    [ReplaceValue(text_id, "v{}".format(index))],
                    origin=doc_id))
                flushed = await client.flush(doc_id)
                assert flushed["version"] == index + 1
            final[doc_id] = (await client.text(doc_id))["text"]
            await client.aclose()

        async def scenario():
            async with make_server() as server:
                await asyncio.gather(
                    session(server, "legacy", (1,)),
                    session(server, "binary",
                            protocol.SUPPORTED_VERSIONS))
        run(scenario())

        baseline = StatelessBaseline(measure_parse=False)
        for doc_id in ("legacy", "binary"):
            text_id = owner_text_id(DOC)
            baseline.open(doc_id, DOC)
            for index in range(rounds):
                baseline.submit(doc_id, compile_pul(
                    'insert node <item r="{}"/> as last into '
                    '/doc/items'.format(index),
                    baseline.document(doc_id)), client=doc_id)
                baseline.submit(doc_id, PUL(
                    [ReplaceValue(text_id, "v{}".format(index))],
                    origin=doc_id), client=doc_id)
                baseline.flush(doc_id)
            assert final[doc_id] == baseline.text(doc_id), doc_id
        # the two clients did identical work: identical results
        assert final["legacy"] == final["binary"]
