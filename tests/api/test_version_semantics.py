"""Version semantics of the read surface (satellite of the MVCC PR).

``query`` and ``text`` report *exactly* the version they walked: the
reader pins one published version, evaluates against it, and stamps the
result with that version — never the version of a batch that published
concurrently mid-walk. These tests nail the contract at the dispatcher
(the shape every transport serializes) and at the store.
"""

import threading

import repro.store.store as store_module
from repro.api.dispatch import StoreDispatcher
from repro.pul.ops import Rename
from repro.pul.pul import PUL
from repro.store import DocumentStore

DOC = ("<bib><paper><title>T1</title></paper>"
       "<note>n</note></bib>")


def _title_id(store, doc_id):
    return next(n.node_id for n in store.document(doc_id).nodes()
                if n.is_element and n.name == "title")


class TestDispatcherVersions:
    def test_text_carries_the_serialized_version(self):
        with DocumentStore(backend="serial") as store:
            dispatcher = StoreDispatcher(store)
            store.open("d", DOC)
            result = dispatcher.text("d")
            assert result["version"] == 0
            store.submit("d", PUL([Rename(_title_id(store, "d"), "t2")]))
            store.flush("d")
            result = dispatcher.text("d")
            assert result["version"] == 1
            assert "<t2>" in result["text"]

    def test_query_reports_the_version_it_walked(self):
        with DocumentStore(backend="serial") as store:
            dispatcher = StoreDispatcher(store)
            store.open("d", DOC)
            result = dispatcher.query("d", "/bib/paper/title")
            assert result["version"] == 0
            assert result["count"] == 1


class TestPinSemantics:
    def test_query_version_matches_its_result_under_a_racing_flush(
            self, monkeypatch):
        """A query that starts on version N keeps reporting N (with
        N's nodes) even when a flush publishes N+1 while the query's
        evaluation is still walking — the pinned version, not the
        latest one, is the query's world."""
        with DocumentStore(backend="serial") as store:
            store.open("d", DOC)
            store.submit("d", PUL([Rename(_title_id(store, "d"),
                                          "headline")]))

            in_walk = threading.Event()
            release = threading.Event()
            real_serialize = store_module.serialize_node

            def stalling_serialize(node):
                # the query result is rendered inside the pin window;
                # stall it so a flush can publish v1 mid-query
                in_walk.set()
                release.wait(10)
                return real_serialize(node)

            monkeypatch.setattr(store_module, "serialize_node",
                                stalling_serialize)

            results = []
            querier = threading.Thread(
                target=lambda: results.append(
                    store.query("d", "/bib/paper/title")),
                daemon=True)
            querier.start()
            assert in_walk.wait(10)
            monkeypatch.setattr(store_module, "serialize_node",
                                real_serialize)
            store.flush("d")
            assert store.version("d") == 1
            release.set()
            querier.join(10)
            assert not querier.is_alive()

            (result,) = results
            assert result["version"] == 0
            assert "<title>" in result["nodes"][0]

    def test_text_version_pair_is_consistent(self):
        with DocumentStore(backend="serial") as store:
            store.open("d", DOC)
            title = _title_id(store, "d")
            for i in range(3):
                text, version = store.text_version("d")
                assert version == i
                assert version == store.version("d")
                store.submit("d", PUL([Rename(title, "n{}".format(i))]))
                store.flush("d")
