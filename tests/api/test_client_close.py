"""One close contract across the client surface: idempotent close,
context managers, and a typed ``protocol`` error on use-after-close —
for the sync, async and cluster clients alike."""

import asyncio

import pytest

from repro.api.client import AsyncStoreClient, StoreClient
from repro.cluster import ClusterClient
from repro.errors import ProtocolError
from repro.store import DocumentStore
from tests.cluster.harness import ServerThread

DOC = "<doc><items/></doc>"


def run(coro, timeout=60):
    return asyncio.run(asyncio.wait_for(coro, timeout))


@pytest.fixture()
def node(tmp_path):
    store = DocumentStore(workers=1, backend="serial")
    with ServerThread(store) as server:
        yield server


def connect(node):
    host, port = node.address.rsplit(":", 1)
    return StoreClient.connect(host=host, port=int(port))


class TestStoreClient:
    def test_close_is_idempotent_and_observable(self, node):
        client = connect(node)
        assert not client.closed
        client.close()
        client.close()                   # second close is a no-op
        assert client.closed

    def test_use_after_close_is_typed_not_a_crash(self, node):
        client = connect(node)
        client.close()
        with pytest.raises(ProtocolError) as info:
            client.docs()
        assert "closed" in str(info.value)

    def test_context_manager_closes(self, node):
        with connect(node) as client:
            client.open("d", DOC)
        assert client.closed


class TestAsyncStoreClient:
    def test_aclose_is_idempotent_and_observable(self, node):
        async def scenario():
            host, port = node.address.rsplit(":", 1)
            client = await AsyncStoreClient.connect(host=host,
                                                    port=int(port))
            assert not client.closed
            await client.aclose()
            await client.aclose()
            assert client.closed
            with pytest.raises(ProtocolError) as info:
                await client.docs()
            assert "closed" in str(info.value)
        run(scenario())

    def test_async_context_manager_closes(self, node):
        async def scenario():
            host, port = node.address.rsplit(":", 1)
            async with await AsyncStoreClient.connect(
                    host=host, port=int(port)) as client:
                await client.open("d", DOC)
            assert client.closed
        run(scenario())


class TestClusterClient:
    def test_close_is_idempotent_and_typed_after(self, node):
        client = ClusterClient([{"leader": node.address,
                                 "replicas": [node.address]}])
        client.open("d", DOC)
        assert not client.closed
        client.close()
        client.close()
        assert client.closed
        with pytest.raises(ProtocolError) as info:
            client.text("d")
        assert "closed" in str(info.value)
        with pytest.raises(ProtocolError):
            client.open("d2", DOC)

    def test_context_manager_closes(self, node):
        with ClusterClient([{"leader": node.address,
                             "replicas": [node.address]}]) as client:
            client.open("d", DOC)
        assert client.closed


class TestSubscribeSurface:
    """The subscription generators ride the same connections and obey
    the same close semantics."""

    @pytest.fixture()
    def feed_node(self, tmp_path):
        store = DocumentStore(workers=1, backend="serial",
                              durability="log",
                              wal_dir=str(tmp_path / "wal"))
        store.enable_replication()
        with ServerThread(store) as server:
            yield server

    def test_sync_generator_streams_pages(self, feed_node):
        with connect(feed_node) as client:
            anchor = client.subscribe_once()["token"]
            client.open("d", DOC)
            client.submit_xquery(
                "d", 'insert node <x/> as last into /doc/items')
            client.flush("d")
            events = []
            for event in client.subscribe(from_token=anchor,
                                          wait_s=0.1):
                events.append(event)
                if len(events) == 2:
                    break
            assert [e["kind"] for e in events] == ["open", "batch"]

    def test_async_iterator_streams_pages(self, feed_node):
        async def scenario():
            host, port = feed_node.address.rsplit(":", 1)
            async with await AsyncStoreClient.connect(
                    host=host, port=int(port)) as client:
                anchor = (await client.subscribe_once())["token"]
                await client.open("d", DOC)
                await client.submit_xquery(
                    "d", 'insert node <x/> as last into /doc/items')
                await client.flush("d")
                events = []
                async for event in client.subscribe(
                        from_token=anchor, wait_s=0.1):
                    events.append(event)
                    if len(events) == 2:
                        break
                assert [e["kind"] for e in events] == \
                    ["open", "batch"]
        run(scenario())

    def test_subscription_filters_and_decode_pass_through(
            self, feed_node):
        with connect(feed_node) as client:
            anchor = client.subscribe_once()["token"]
            client.open("a", DOC)
            client.open("b", DOC)
            page = client.subscribe_once(from_token=anchor,
                                         doc_ids=["b"], decode=False)
            assert len(page["events"]) == 1
            assert page["events"][0]["record"]["doc"]["doc_id"] == "b"

    def test_unsubscribe_clears_named_subscribers(self, feed_node):
        with connect(feed_node) as client:
            client.subscribe_once(subscriber="s1")
            assert client.unsubscribe("s1")["forgotten"]
            assert not client.unsubscribe("s1")["forgotten"]

    def test_cluster_subscribe_streams_from_the_shard_leader(
            self, feed_node):
        with connect(feed_node) as direct:
            anchor = direct.subscribe_once()["token"]
        with ClusterClient([{"leader": feed_node.address,
                             "replicas": [feed_node.address]}]) \
                as client:
            client.open("d", DOC)
            client.submit_xquery(
                "d", 'insert node <x/> as last into /doc/items')
            client.flush("d")
            events = []
            for event in client.subscribe(["d"], from_token=anchor,
                                          wait_s=0.1):
                events.append(event)
                if len(events) == 2:
                    break
            assert [e["kind"] for e in events] == ["open", "batch"]
            assert all(e["doc_id"] == "d" for e in events)

    def test_cluster_subscription_must_not_span_shards(self, feed_node):
        other_store = DocumentStore(workers=1, backend="serial")
        with ServerThread(other_store) as other:
            shards = [{"leader": feed_node.address,
                       "replicas": [feed_node.address]},
                      {"leader": other.address,
                       "replicas": [other.address]}]
            self._assert_spanning_refused(shards)

    def _assert_spanning_refused(self, shards):
        from repro.errors import ClusterError

        with ClusterClient(shards) as client:
            ring = client.ring
            # find two ids living on different shards
            by_shard = {}
            for index in range(64):
                doc_id = "doc{}".format(index)
                by_shard.setdefault(ring.lookup(doc_id), doc_id)
                if len(by_shard) == 2:
                    break
            assert len(by_shard) == 2
            with pytest.raises(ClusterError) as info:
                next(iter(client.subscribe(list(by_shard.values()))))
            assert "one subscription per shard" in str(info.value)
